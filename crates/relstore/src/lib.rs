#![warn(missing_docs)]
// The shredding backs the SQL query path end to end; a panic here
// would take down whole server requests, so the escape hatches are
// denied exactly as in the other serving-path crates.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # relstore — a relational shredding of an [`xmldb::Document`]
//!
//! The SQL translation backend (see `docs/BACKENDS.md`) evaluates over
//! *tables*, not over the node arena. This crate derives those tables
//! from any finalized document, reusing the pre/post orders the
//! structural index already computed:
//!
//! - **`node(pre, post, parent_pre, kind, label_id)`** — one row per
//!   node, stored columnar and ordered by `pre`, so the row index *is*
//!   the pre rank and every subtree is the contiguous row interval
//!   `[pre, extent(pre)]`. The derived `extent` column (largest pre in
//!   the subtree) makes interval-containment joins two integer
//!   comparisons.
//! - **`value(pre, text)`** — one row per text or attribute node,
//!   ordered by `pre`. Element atomization is a range scan of this
//!   table (a containment join against `node`), mirroring the engine's
//!   atomization semantics exactly (see [`Shredding::atomize`]).
//! - **label dictionary + per-label postings** — `label_id ↔ name`, and
//!   for each label the sorted list of pres carrying it: the relational
//!   analog of the arena's label index, giving `O(log n)` subtree label
//!   counts via two binary searches.
//!
//! Node-level updates keep the shredding in step with the document: a
//! value-only commit (no inserts or deletes) patches the `value` and
//! `label_id` columns in place ([`Shredding::successor`]), everything
//! structural rebuilds from the successor document.

use std::collections::HashMap;
use xmldb::{Document, NodeKind, UpdateStats};

/// `parent_pre` of the root row (no parent).
pub const NIL_PRE: u32 = u32::MAX;

/// Node kind column value (mirrors [`xmldb::NodeKind`], kept separate
/// so the table layout is self-contained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    /// An element row.
    Element,
    /// An attribute row (carries a `value` row).
    Attribute,
    /// A text row (carries a `value` row).
    Text,
}

impl From<NodeKind> for RelKind {
    fn from(k: NodeKind) -> RelKind {
        match k {
            NodeKind::Element => RelKind::Element,
            NodeKind::Attribute => RelKind::Attribute,
            NodeKind::Text => RelKind::Text,
        }
    }
}

/// How the current table contents were produced (observable so tests
/// and metrics can tell a patch from a rebuild).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Full scan of a document.
    Fresh,
    /// In-place column patch from an update's deltas.
    Patched,
}

/// Summary counters of a shredding (cheap to compute, used by tests
/// and the explain output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShredStats {
    /// Rows of the `node` table (== document nodes).
    pub rows: usize,
    /// Rows of the `value` table (text + attribute nodes).
    pub value_rows: usize,
    /// Distinct labels in the dictionary.
    pub labels: usize,
    /// How the tables were last produced.
    pub build: BuildKind,
}

/// The shredded document: columnar interval tables plus the label
/// dictionary. Immutable after construction (updates produce a
/// successor), so it shares freely across threads.
#[derive(Debug, Clone)]
pub struct Shredding {
    // --- node table (row index == pre rank) -------------------------
    post: Vec<u32>,
    parent_pre: Vec<u32>,
    kind: Vec<RelKind>,
    label_id: Vec<u32>,
    /// Largest pre inside the subtree rooted at the row (inclusive):
    /// the subtree of row `p` is exactly rows `p..=extent[p]`.
    extent: Vec<u32>,
    // --- value table (sorted by pre) --------------------------------
    value_pre: Vec<u32>,
    value_text: Vec<String>,
    // --- label dictionary + postings --------------------------------
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// Per-label sorted pre lists.
    postings: Vec<Vec<u32>>,
    build: BuildKind,
}

impl Shredding {
    /// Shred a finalized document into the relational tables: one pass
    /// over the pre order, O(n).
    pub fn build(doc: &Document) -> Shredding {
        let n = doc.len();
        let mut s = Shredding {
            post: Vec::with_capacity(n),
            parent_pre: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            label_id: Vec::with_capacity(n),
            extent: (0..n as u32).collect(),
            value_pre: Vec::new(),
            value_text: Vec::new(),
            labels: Vec::new(),
            label_ids: HashMap::new(),
            postings: Vec::new(),
            build: BuildKind::Fresh,
        };
        for pre in 0..n as u32 {
            let Some(id) = doc.node_at_pre(pre) else {
                // Unreachable on a finalized document: every rank below
                // `len` resolves. Keep the row aligned regardless.
                s.post.push(pre);
                s.parent_pre.push(NIL_PRE);
                s.kind.push(RelKind::Element);
                let gap = s.intern("#gap");
                s.label_id.push(gap);
                continue;
            };
            s.post.push(doc.post(id));
            s.parent_pre
                .push(doc.parent(id).map(|p| doc.pre(p)).unwrap_or(NIL_PRE));
            let kind = RelKind::from(doc.kind(id));
            s.kind.push(kind);
            let lid = s.intern(doc.label(id));
            s.label_id.push(lid);
            if matches!(kind, RelKind::Text | RelKind::Attribute) {
                s.value_pre.push(pre);
                s.value_text
                    .push(doc.value(id).unwrap_or_default().to_owned());
            }
        }
        // Postings: pres ascend, so each label's list is born sorted.
        s.postings = vec![Vec::new(); s.labels.len()];
        for (pre, &lid) in s.label_id.iter().enumerate() {
            if let Some(p) = s.postings.get_mut(lid as usize) {
                p.push(pre as u32);
            }
        }
        // Extents: fold each row into its parent, highest pre first —
        // all descendants of a row have larger pres, so by the time a
        // row is folded its own extent is final.
        for i in (0..n).rev() {
            let p = s.parent_pre[i];
            if p != NIL_PRE {
                let e = s.extent[i];
                if let Some(pe) = s.extent.get_mut(p as usize) {
                    if e > *pe {
                        *pe = e;
                    }
                }
            }
        }
        s
    }

    /// The shredding of the successor document of a node-level update.
    ///
    /// When the commit changed no structure (no inserts, no deletes —
    /// value replacements and renames only), node identities and the
    /// pre/post orders are unchanged, so only two columns can differ:
    /// the tables are **patched in place** — `value.text` and
    /// `label_id` are refreshed from the successor document, postings
    /// are rebuilt only when a label actually moved, and the
    /// structural columns (`post`, `parent_pre`, `extent`, `kind`) are
    /// carried over untouched. Anything structural (or a
    /// [`xmldb::CommitStrategy::Rebuild`] commit) falls back to a full
    /// [`Shredding::build`].
    pub fn successor(&self, doc: &Document, stats: &UpdateStats) -> Shredding {
        let structural = matches!(stats.strategy, xmldb::CommitStrategy::Rebuild)
            || stats.inserted > 0
            || stats.deleted > 0
            || doc.len() != self.post.len();
        if structural {
            return Shredding::build(doc);
        }
        let mut s = self.clone();
        s.build = BuildKind::Patched;
        let mut vrow = 0usize;
        let mut labels_moved = false;
        for pre in 0..s.post.len() as u32 {
            let Some(id) = doc.node_at_pre(pre) else {
                continue;
            };
            let lid = s.intern(doc.label(id));
            let i = pre as usize;
            if s.label_id[i] != lid {
                s.label_id[i] = lid;
                labels_moved = true;
            }
            if matches!(s.kind[i], RelKind::Text | RelKind::Attribute) {
                // Value rows align with the text/attr scan order.
                if s.value_pre.get(vrow) == Some(&pre) {
                    let text = doc.value(id).unwrap_or_default();
                    if s.value_text[vrow] != text {
                        text.clone_into(&mut s.value_text[vrow]);
                    }
                    vrow += 1;
                }
            }
        }
        if labels_moved {
            s.postings = vec![Vec::new(); s.labels.len()];
            for (pre, &lid) in s.label_id.iter().enumerate() {
                if let Some(p) = s.postings.get_mut(lid as usize) {
                    p.push(pre as u32);
                }
            }
        } else if s.postings.len() < s.labels.len() {
            s.postings.resize(s.labels.len(), Vec::new());
        }
        s
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_owned());
        self.label_ids.insert(label.to_owned(), id);
        id
    }

    // ------------------------------------------------------------------
    // Table accessors
    // ------------------------------------------------------------------

    /// Rows of the `node` table.
    pub fn len(&self) -> usize {
        self.post.len()
    }

    /// True when the document was empty.
    pub fn is_empty(&self) -> bool {
        self.post.is_empty()
    }

    /// Summary counters.
    pub fn stats(&self) -> ShredStats {
        ShredStats {
            rows: self.post.len(),
            value_rows: self.value_pre.len(),
            labels: self.labels.len(),
            build: self.build,
        }
    }

    /// How the tables were last produced.
    pub fn build_kind(&self) -> BuildKind {
        self.build
    }

    /// `post` of the row at `pre` (0 when out of range).
    pub fn post(&self, pre: u32) -> u32 {
        self.post.get(pre as usize).copied().unwrap_or(0)
    }

    /// `parent_pre` of the row at `pre` ([`NIL_PRE`] for the root or
    /// out-of-range rows).
    pub fn parent_pre(&self, pre: u32) -> u32 {
        self.parent_pre
            .get(pre as usize)
            .copied()
            .unwrap_or(NIL_PRE)
    }

    /// Kind of the row at `pre`.
    pub fn kind(&self, pre: u32) -> RelKind {
        self.kind
            .get(pre as usize)
            .copied()
            .unwrap_or(RelKind::Element)
    }

    /// Largest pre inside the subtree of the row at `pre` (the subtree
    /// is rows `pre..=extent(pre)`).
    pub fn extent(&self, pre: u32) -> u32 {
        self.extent.get(pre as usize).copied().unwrap_or(pre)
    }

    /// Label id of the row at `pre`.
    pub fn label_id(&self, pre: u32) -> u32 {
        self.label_id.get(pre as usize).copied().unwrap_or(0)
    }

    /// Label name of the row at `pre`.
    pub fn label_of(&self, pre: u32) -> &str {
        self.label_name(self.label_id(pre))
    }

    /// Name of a label id (empty for unknown ids).
    pub fn label_name(&self, id: u32) -> &str {
        self.labels
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Dictionary lookup: label name → id.
    pub fn lookup_label(&self, name: &str) -> Option<u32> {
        self.label_ids.get(name).copied()
    }

    /// The sorted pres carrying `label_id` (empty for unknown ids).
    pub fn postings(&self, label_id: u32) -> &[u32] {
        self.postings
            .get(label_id as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of rows carrying `label` anywhere in the document.
    pub fn label_count(&self, label: &str) -> usize {
        self.lookup_label(label)
            .map(|id| self.postings(id).len())
            .unwrap_or(0)
    }

    /// Rows of the `value` table.
    pub fn value_rows(&self) -> usize {
        self.value_pre.len()
    }

    /// The `value.text` of the row at `pre`, when that row carries one
    /// (text and attribute rows do, element rows do not).
    pub fn text_of(&self, pre: u32) -> Option<&str> {
        let i = self.value_pre.partition_point(|&p| p < pre);
        if self.value_pre.get(i) == Some(&pre) {
            self.value_text.get(i).map(String::as_str)
        } else {
            None
        }
    }

    /// All labels in the dictionary, in first-seen (document) order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    // ------------------------------------------------------------------
    // Interval predicates (the join machinery of the SQL executor)
    // ------------------------------------------------------------------

    /// Containment: is the row at `inner` inside the subtree of the row
    /// at `outer`, the row itself included? Two integer comparisons on
    /// the interval columns.
    pub fn contains_or_self(&self, outer: u32, inner: u32) -> bool {
        outer <= inner && inner <= self.extent(outer)
    }

    /// Lowest common ancestor of two rows, by walking `parent_pre`
    /// links from `a` until the interval contains `b`. O(depth).
    pub fn lca(&self, a: u32, b: u32) -> u32 {
        let mut x = a;
        loop {
            if self.contains_or_self(x, b) {
                return x;
            }
            let p = self.parent_pre(x);
            if p == NIL_PRE {
                return x;
            }
            x = p;
        }
    }

    /// The child of `anc` on the path down to `desc`; `None` when `anc`
    /// is not a proper ancestor. O(depth of `desc`).
    pub fn child_toward(&self, anc: u32, desc: u32) -> Option<u32> {
        if anc == desc || !self.contains_or_self(anc, desc) {
            return None;
        }
        let mut cur = desc;
        loop {
            let p = self.parent_pre(cur);
            if p == anc {
                return Some(cur);
            }
            if p == NIL_PRE {
                return None;
            }
            cur = p;
        }
    }

    /// Count of rows with `label_id` inside the subtree of `root`
    /// (inclusive): two binary searches over the label's postings.
    pub fn count_label_in_subtree(&self, label_id: u32, root: u32) -> usize {
        let p = self.postings(label_id);
        let hi = self.extent(root);
        let start = p.partition_point(|&pre| pre < root);
        let end = p.partition_point(|&pre| pre <= hi);
        end - start
    }

    /// The MLCA meaningfulness predicate of the Schema-Free XQuery
    /// `mqf()`, evaluated purely over the shredded tables (parent-link
    /// walks plus postings probes — no arena access). Matches
    /// `xquery::mlca::meaningfully_related` on every pair.
    pub fn meaningfully_related(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        let c = self.lca(a, b);
        if let Some(cb) = self.child_toward(c, b) {
            if self.count_label_in_subtree(self.label_id(a), cb) > 0 {
                return false;
            }
        }
        if let Some(ca) = self.child_toward(c, a) {
            if self.count_label_in_subtree(self.label_id(b), ca) > 0 {
                return false;
            }
        }
        true
    }

    /// Pairwise [`Shredding::meaningfully_related`] over a whole set.
    pub fn set_meaningfully_related(&self, rows: &[u32]) -> bool {
        for (i, &a) in rows.iter().enumerate() {
            for &b in rows.get(i + 1..).unwrap_or(&[]) {
                if !self.meaningfully_related(a, b) {
                    return false;
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Atomization (the engine's semantics, over the value table)
    // ------------------------------------------------------------------

    /// The atomized string value of the row at `pre`, with exactly the
    /// engine's semantics: text and attribute rows yield their own
    /// `value.text`; an element with non-whitespace *direct* text
    /// yields that text trimmed (mixed content); any other element
    /// yields the concatenation of every text row in its subtree, in
    /// pre order, untrimmed. Implemented as range scans of the
    /// pre-sorted `value` table — a containment join.
    pub fn atomize(&self, pre: u32) -> String {
        match self.kind(pre) {
            RelKind::Text | RelKind::Attribute => self.text_of(pre).unwrap_or("").to_owned(),
            RelKind::Element => {
                let lo = self.value_pre.partition_point(|&p| p <= pre);
                let hi = self.value_pre.partition_point(|&p| p <= self.extent(pre));
                // Direct text: value rows in the subtree range whose
                // parent is this row.
                let mut direct = String::new();
                for i in lo..hi {
                    let vp = self.value_pre[i];
                    if self.parent_pre(vp) == pre && self.kind(vp) == RelKind::Text {
                        direct.push_str(&self.value_text[i]);
                    }
                }
                if !direct.trim().is_empty() {
                    return direct.trim().to_owned();
                }
                // Whole-subtree string value: every text row in range.
                let mut out = String::new();
                for i in lo..hi {
                    if self.kind(self.value_pre[i]) == RelKind::Text {
                        out.push_str(&self.value_text[i]);
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Document {
        Document::parse_str(xml).unwrap()
    }

    #[test]
    fn build_matches_arena_oracle() {
        let d = doc("<bib><book id=\"1\"><title>A</title><price>10</price></book><book><title>B</title></book></bib>");
        let s = Shredding::build(&d);
        assert_eq!(s.len(), d.len());
        for pre in 0..d.len() as u32 {
            let id = d.node_at_pre(pre).unwrap();
            assert_eq!(s.post(pre), d.post(id), "post at {pre}");
            assert_eq!(
                s.parent_pre(pre),
                d.parent(id).map(|p| d.pre(p)).unwrap_or(NIL_PRE),
                "parent at {pre}"
            );
            assert_eq!(s.label_of(pre), d.label(id), "label at {pre}");
            assert_eq!(s.atomize(pre), d.atom_value(id).as_ref(), "atom at {pre}");
        }
        assert_eq!(s.label_count("book"), 2);
        assert_eq!(s.label_count("title"), 2);
        assert_eq!(s.label_count("nope"), 0);
    }

    #[test]
    fn extents_cover_subtrees() {
        let d = doc("<a><b><c/><d/></b><e/></a>");
        let s = Shredding::build(&d);
        // root subtree covers everything
        assert_eq!(s.extent(0), s.len() as u32 - 1);
        for pre in 0..s.len() as u32 {
            for q in 0..s.len() as u32 {
                let id = d.node_at_pre(pre).unwrap();
                let qid = d.node_at_pre(q).unwrap();
                let oracle = d.pre(id) <= d.pre(qid) && d.post(qid) <= d.post(id);
                assert_eq!(s.contains_or_self(pre, q), oracle, "{pre} contains {q}");
            }
        }
    }

    #[test]
    fn mixed_content_atomizes_to_trimmed_direct_text() {
        let d = doc("<r><year>2000 <movie><title>T</title></movie></year></r>");
        let s = Shredding::build(&d);
        let year = d.nodes_labeled("year")[0];
        assert_eq!(s.atomize(d.pre(year)), "2000");
        assert_eq!(s.atomize(d.pre(year)), d.atom_value(year).as_ref());
    }

    #[test]
    fn element_without_direct_text_concatenates_subtree() {
        let d = doc("<r><book><title>T</title><author>A</author></book></r>");
        let s = Shredding::build(&d);
        let book = d.nodes_labeled("book")[0];
        assert_eq!(s.atomize(d.pre(book)), "TA");
    }

    #[test]
    fn mlca_matches_engine_oracle() {
        let d = xmldb::datasets::movies::movies();
        let s = Shredding::build(&d);
        for a in 0..d.len() as u32 {
            for b in 0..d.len() as u32 {
                let (ia, ib) = (d.node_at_pre(a).unwrap(), d.node_at_pre(b).unwrap());
                assert_eq!(
                    s.meaningfully_related(a, b),
                    xquery::mlca::meaningfully_related(&d, ia, ib),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn value_patch_updates_in_place() {
        let d = doc("<bib><book><title>Old</title><price>10</price></book></bib>");
        let s = Shredding::build(&d);
        let mut tx = d.begin_update().unwrap();
        let title = d.nodes_labeled("title")[0];
        let title_text = d
            .children(title)
            .find(|&c| d.kind(c) == NodeKind::Text)
            .unwrap();
        tx.apply(&xmldb::Edit::ReplaceValue {
            target: title_text,
            value: "New".into(),
        })
        .unwrap();
        let (next, stats) = tx.commit();
        let s2 = s.successor(&next, &stats);
        assert_eq!(s2.build_kind(), BuildKind::Patched);
        let title = next.nodes_labeled("title")[0];
        assert_eq!(s2.atomize(next.pre(title)), "New");
        // Structure untouched, and equal to a fresh build.
        let fresh = Shredding::build(&next);
        for pre in 0..s2.len() as u32 {
            assert_eq!(s2.post(pre), fresh.post(pre));
            assert_eq!(s2.atomize(pre), fresh.atomize(pre));
            assert_eq!(s2.label_of(pre), fresh.label_of(pre));
        }
    }

    #[test]
    fn structural_update_rebuilds() {
        let d = doc("<bib><book><title>A</title></book></bib>");
        let s = Shredding::build(&d);
        let mut tx = d.begin_update().unwrap();
        let book = d.nodes_labeled("book")[0];
        tx.apply(&xmldb::Edit::InsertChild {
            parent: book,
            node: xmldb::NewNode::Leaf {
                label: "year".into(),
                text: "2001".into(),
            },
        })
        .unwrap();
        let (next, stats) = tx.commit();
        let s2 = s.successor(&next, &stats);
        assert_eq!(s2.build_kind(), BuildKind::Fresh);
        assert_eq!(s2.len(), next.len());
        assert_eq!(s2.label_count("year"), 1);
    }
}
