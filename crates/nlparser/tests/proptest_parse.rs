//! Property tests for the dependency parser: robustness over arbitrary
//! input, invariants of produced trees, and stability of the golden
//! query class under lexical perturbation.

use nlparser::lexicon;
use nlparser::{parse, DepRel, Pos};
use proptest::prelude::*;

/// Would the tagger see this word as an ordinary common noun?
fn is_plain_noun(w: &str) -> bool {
    !(lexicon::is_command_verb(w)
        || lexicon::is_copula(w)
        || lexicon::is_auxiliary(w)
        || lexicon::is_article(w)
        || lexicon::is_quantifier(w)
        || lexicon::is_preposition(w)
        || lexicon::is_pronoun(w)
        || lexicon::is_subordinator(w)
        || lexicon::is_adjective(w)
        || lexicon::is_wh_word(w)
        || lexicon::is_clause_verb(w)
        || lexicon::is_participle(w)
        || w == "and"
        || w == "or"
        || w == "not"
        || w == "no"
        || w == "me")
}

proptest! {
    /// Arbitrary (printable) input never panics the pipeline.
    #[test]
    fn parse_never_panics(input in "[ -~]{0,120}") {
        if let Ok(tree) = parse(&input) {
            prop_assert!(tree.check_invariants().is_ok(), "{}", tree.outline());
        }
    }

    /// Arbitrary unicode never panics the tokenizer/tagger.
    #[test]
    fn parse_never_panics_unicode(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// The canonical query frame accepts any *plain-noun* pair: the
    /// tree always has the command as root and both nouns integrated
    /// (no dangling content words). Words that collide with lexicon
    /// categories or the participle heuristic ("…ed") are excluded —
    /// they legitimately parse differently.
    #[test]
    fn simple_frame_always_integrates(
        n1 in "[a-z]{2,10}".prop_filter("plain noun", |w| is_plain_noun(w)),
        n2 in "[a-z]{2,10}".prop_filter("plain noun", |w| is_plain_noun(w)),
    ) {
        let q = format!("Return the {n1} of every {n2}.");
        let tree = parse(&q).expect("frame parses");
        prop_assert!(tree.check_invariants().is_ok());
        prop_assert_eq!(tree.node(tree.root()).lemma.as_str(), "return");
        // No dangling non-marker nodes.
        for r in tree.refs() {
            let n = tree.node(r);
            if n.rel == DepRel::Dangling {
                prop_assert!(
                    !matches!(n.pos, Pos::Noun | Pos::Proper | Pos::Quoted | Pos::Number),
                    "content word dangles: {} in\n{}",
                    n.word,
                    tree.outline()
                );
            }
        }
    }

    /// Quoted values always surface as a single Quoted node with the
    /// exact text.
    #[test]
    fn quoted_values_preserved(value in "[a-zA-Z0-9 ]{1,20}") {
        let q = format!("Find all titles that contain \"{value}\".");
        let tree = parse(&q).expect("parses");
        let hit = tree
            .refs()
            .find(|&r| tree.node(r).pos == Pos::Quoted)
            .expect("quoted node");
        prop_assert_eq!(&tree.node(hit).word, &value);
    }

    /// Noise injection keeps trees structurally valid for any random
    /// stream.
    #[test]
    fn noise_preserves_invariants(r1 in any::<u64>(), r2 in any::<u64>()) {
        let mut tree = parse(
            "Return the title and the authors of every book published by \
             Addison-Wesley after 1991.",
        )
        .expect("parses");
        let cfg = nlparser::noise::NoiseConfig { corruption_rate: 1.0 };
        let _ = nlparser::noise::maybe_corrupt(&mut tree, &cfg, r1, r2);
        prop_assert!(tree.check_invariants().is_ok());
    }
}
