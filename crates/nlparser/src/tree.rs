//! The dependency tree produced by the parser.

use std::fmt;

/// Index of a node in a [`DepTree`].
pub type NodeRef = usize;

/// Part-of-speech / node category.
///
/// Coarser than a treebank tag set: this is exactly the granularity the
/// NaLIX classifier needs to assign token types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pos {
    /// Main verb (imperative command verbs and clause verbs).
    Verb,
    /// Past participle used as a post-modifier ("directed", "published").
    Participle,
    /// Auxiliary / copular verb used as helper ("has directed").
    Aux,
    /// Common noun.
    Noun,
    /// Proper noun (possibly multi-word, merged: "Ron Howard").
    Proper,
    /// A quoted string value.
    Quoted,
    /// A number.
    Number,
    /// Adjective.
    Adj,
    /// Determiner/article.
    Det,
    /// Quantifier ("every", "each", "all", "any", "some").
    Quant,
    /// Preposition.
    Prep,
    /// Pronoun.
    Pronoun,
    /// Coordinating conjunction ("and", "or").
    Conj,
    /// Wh-word ("what", "which", "who").
    Wh,
    /// Negation ("not").
    Neg,
    /// A merged multi-word operator phrase ("the same as",
    /// "greater than", "at least"), including copular fusions
    /// ("be the same as").
    OpPhrase,
    /// A merged multi-word function phrase ("the number of",
    /// "the total number of").
    FuncPhrase,
    /// A merged ordering phrase ("sorted by", "in alphabetical order").
    OrderPhrase,
    /// Relativizer / subordinator ("that", "which", "who", "where",
    /// "whose") when introducing a clause.
    Subord,
    /// Anything unrecognised (drives the NaLIX "unknown term" feedback).
    Unknown,
}

/// Grammatical relation of a node to its head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepRel {
    /// The tree root.
    Root,
    /// Direct object of a verb.
    Obj,
    /// Clause subject.
    Subj,
    /// Predicate / complement (right side of an operator or copula).
    Pred,
    /// Generic modifier (pre-modifying noun/adjective).
    Mod,
    /// Determiner or quantifier attachment.
    Det,
    /// Prepositional attachment (the preposition itself).
    Prep,
    /// Complement of a preposition.
    PComp,
    /// Participial post-modifier.
    Part,
    /// Relative / subordinate clause root.
    Rel,
    /// Conjunct (second and later "and"-coordinated phrases).
    Conj,
    /// Disjunct (second and later "or"-coordinated phrases).
    ConjOr,
    /// Apposition ("director **Ron Howard**").
    Appos,
    /// Argument of a function phrase ("the number of **movies**").
    FArg,
    /// Ordering phrase attachment.
    Order,
    /// Negation attachment.
    Neg,
    /// Unintegrated material (kept so validation can report it).
    Dangling,
}

/// A node of the dependency tree.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// Surface text (original casing, multi-word for merged phrases and
    /// quoted values — quotes stripped).
    pub word: String,
    /// Normalised form: lower-cased, lemmatised head word for nouns and
    /// verbs, canonical phrase for merged phrases ("be the same as").
    pub lemma: String,
    /// Category.
    pub pos: Pos,
    /// Head node; `None` for the root.
    pub head: Option<NodeRef>,
    /// Relation to the head.
    pub rel: DepRel,
    /// Children in sentence order.
    pub children: Vec<NodeRef>,
    /// Position of the node's first word in the sentence (0-based),
    /// used by NaLIX's attachment rule (paper Def. 7, "follows in the
    /// original sentence").
    pub order: usize,
}

/// A dependency tree.
#[derive(Debug, Clone)]
pub struct DepTree {
    nodes: Vec<DepNode>,
    root: NodeRef,
}

impl DepTree {
    /// Build from parts. `nodes[root]` must have `head == None`.
    pub fn new(nodes: Vec<DepNode>, root: NodeRef) -> Self {
        debug_assert!(nodes[root].head.is_none());
        DepTree { nodes, root }
    }

    /// The root node reference.
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, r: NodeRef) -> &DepNode {
        &self.nodes[r]
    }

    /// Mutably borrow a node (used by the noise model).
    pub fn node_mut(&mut self, r: NodeRef) -> &mut DepNode {
        &mut self.nodes[r]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never produced by the parser).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node references in sentence order.
    pub fn refs(&self) -> impl Iterator<Item = NodeRef> {
        0..self.nodes.len()
    }

    /// Children of `r`, in sentence order.
    pub fn children(&self, r: NodeRef) -> &[NodeRef] {
        &self.nodes[r].children
    }

    /// Reattach `child` under `new_head`, preserving sentence order in
    /// the child lists. Panics if this would create a cycle.
    pub fn reattach(&mut self, child: NodeRef, new_head: NodeRef) {
        assert!(child != new_head, "cannot attach a node to itself");
        // Cycle check: new_head must not be a descendant of child.
        let mut cur = Some(new_head);
        while let Some(c) = cur {
            assert!(c != child, "reattach would create a cycle");
            cur = self.nodes[c].head;
        }
        if let Some(old) = self.nodes[child].head {
            self.nodes[old].children.retain(|&c| c != child);
        }
        self.nodes[child].head = Some(new_head);
        let order = self.nodes[child].order;
        let pos = self.nodes[new_head]
            .children
            .iter()
            .position(|&c| self.nodes[c].order > order)
            .unwrap_or(self.nodes[new_head].children.len());
        self.nodes[new_head].children.insert(pos, child);
    }

    /// Render an indented outline (for debugging and golden tests).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.outline_node(self.root, 0, &mut out);
        out
    }

    fn outline_node(&self, r: NodeRef, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let n = &self.nodes[r];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{} [{:?}/{:?}]", n.word, n.pos, n.rel);
        for &c in &n.children {
            self.outline_node(c, depth + 1, out);
        }
    }

    /// Check structural invariants (each non-root has a head, children
    /// lists are consistent, no cycles). Used by property tests and the
    /// noise model.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            match n.head {
                None if i != self.root => return Err(format!("non-root node {i} has no head")),
                Some(h) if !self.nodes[h].children.contains(&i) => {
                    return Err(format!("node {i} missing from head {h}'s children"));
                }
                _ => {}
            }
            for &c in &n.children {
                if self.nodes[c].head != Some(i) {
                    return Err(format!("child {c} of {i} has wrong head"));
                }
            }
        }
        // Cycle check by walking up from every node.
        for i in 0..self.nodes.len() {
            let mut seen = 0usize;
            let mut cur = Some(i);
            while let Some(c) = cur {
                seen += 1;
                if seen > self.nodes.len() {
                    return Err(format!("cycle reachable from node {i}"));
                }
                cur = self.nodes[c].head;
            }
        }
        Ok(())
    }
}

impl fmt::Display for DepTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.outline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DepTree {
        // return -> movie -> title
        let nodes = vec![
            DepNode {
                word: "Return".into(),
                lemma: "return".into(),
                pos: Pos::Verb,
                head: None,
                rel: DepRel::Root,
                children: vec![1],
                order: 0,
            },
            DepNode {
                word: "movie".into(),
                lemma: "movie".into(),
                pos: Pos::Noun,
                head: Some(0),
                rel: DepRel::Obj,
                children: vec![2],
                order: 1,
            },
            DepNode {
                word: "title".into(),
                lemma: "title".into(),
                pos: Pos::Noun,
                head: Some(1),
                rel: DepRel::Mod,
                children: vec![],
                order: 2,
            },
        ];
        DepTree::new(nodes, 0)
    }

    #[test]
    fn invariants_hold_on_valid_tree() {
        assert!(tiny().check_invariants().is_ok());
    }

    #[test]
    fn reattach_moves_child() {
        let mut t = tiny();
        t.reattach(2, 0);
        assert_eq!(t.node(2).head, Some(0));
        assert!(t.children(0).contains(&2));
        assert!(!t.children(1).contains(&2));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn reattach_keeps_sentence_order() {
        let mut t = tiny();
        t.reattach(2, 0);
        // children of root: movie (order 1), title (order 2)
        assert_eq!(t.children(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn reattach_rejects_cycles() {
        let mut t = tiny();
        t.reattach(1, 2); // movie under its own descendant
    }

    #[test]
    fn outline_renders_nesting() {
        let o = tiny().outline();
        assert!(o.contains("Return"));
        assert!(o.contains("  movie"));
        assert!(o.contains("    title"));
    }
}
