//! The dependency grammar: a cursor-based recursive-descent parser over
//! the tagged token stream.
//!
//! The grammar is specialised to query English (see the crate docs). Its
//! output conventions — what attaches to what — were chosen so that the
//! NaLIX classifier reproduces the paper's published parse trees
//! (Figures 2, 3 and 10) exactly:
//!
//! - the imperative verb (or wh-word) is the root;
//! - object noun phrases attach to the root; conjuncts chain off the
//!   first conjunct;
//! - `of`/`by`/`with`/… prepositions attach to the nearest preceding
//!   noun head, their complement NP below them;
//! - participial post-modifiers ("directed") attach to the noun, the
//!   `by`-phrase and any trailing comparative preposition ("after
//!   1991") attach to the participle;
//! - a *where*-clause attaches to the **most recent noun-phrase head**
//!   (this is visible in the paper's Figure 3, where the operator token
//!   hangs under `movie`);
//! - a copular predicate becomes a single operator node ("is the same
//!   as" → lemma `be the same as`) whose children are the subject and
//!   object heads.
//!
//! Unintegrable tokens are attached with [`DepRel::Dangling`] rather
//! than dropped, so NaLIX validation can point at them in its feedback.

use crate::tag::{tag, Tagged, Word};
use crate::tokenize::{tokenize, TokenizeError};
use crate::tree::{DepNode, DepRel, DepTree, NodeRef, Pos};
use std::fmt;

/// A parse failure (the sentence is outside the grammar entirely; most
/// problematic sentences still parse, with `Dangling` nodes, so that
/// NaLIX can produce targeted feedback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// Description.
    pub message: String,
    /// Word position where parsing stopped making progress.
    pub position: usize,
}

impl fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse query (near word {}): {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseFailure {}

impl From<TokenizeError> for ParseFailure {
    fn from(e: TokenizeError) -> Self {
        ParseFailure {
            message: e.message,
            position: 0,
        }
    }
}

/// Fuse a multi-sentence query into one sentence by turning follow-up
/// statements into *where*-clauses: "Return all books. The publisher of
/// the book is Springer." becomes "Return all books, where the
/// publisher of the book is Springer." — the paper lists multi-sentence
/// queries as future work; this normalisation implements the common
/// statement-after-command form.
///
/// A period only splits when followed by a capitalised determiner or
/// quantifier ("The", "Each", …), so abbreviations ("W. Richard
/// Stevens") survive.
pub fn normalize_multi_sentence(text: &str) -> String {
    const CONTINUERS: [&str; 6] = ["The", "Each", "Every", "All", "Its", "Their"];
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '.' {
            // Look ahead: whitespace then a continuer word.
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            let word: String = chars[j..]
                .iter()
                .take_while(|c| c.is_alphabetic())
                .collect();
            if j > i + 1 && CONTINUERS.contains(&word.as_str()) {
                out.push_str(", where ");
                // lower-case the continuer so it reads as one sentence
                out.push_str(&word.to_lowercase());
                i = j + word.len();
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Parse a sentence (or a multi-sentence query — see
/// [`normalize_multi_sentence`]) into a dependency tree.
pub fn parse(sentence: &str) -> Result<DepTree, ParseFailure> {
    let out = parse_inner(sentence);
    obs::global().add(
        match out {
            Ok(_) => obs::Counter::ParsedSentences,
            Err(_) => obs::Counter::ParseFailures,
        },
        1,
    );
    out
}

fn parse_inner(sentence: &str) -> Result<DepTree, ParseFailure> {
    let sentence = normalize_multi_sentence(sentence);
    let raw = tokenize(&sentence)?;
    if raw.is_empty() {
        return Err(ParseFailure {
            message: "empty query".into(),
            position: 0,
        });
    }
    let tagged = tag(&raw);
    Parser::new(tagged).parse()
}

struct Parser {
    toks: Vec<Tagged>,
    i: usize,
    nodes: Vec<DepNode>,
    /// Most recently completed noun-phrase head (attachment site for
    /// where-clauses).
    last_np_head: Option<NodeRef>,
}

impl Parser {
    fn new(toks: Vec<Tagged>) -> Self {
        Parser {
            toks,
            i: 0,
            nodes: Vec::new(),
            last_np_head: None,
        }
    }

    // -- cursor helpers ---------------------------------------------------

    fn peek_word(&self) -> Option<&Word> {
        match self.toks.get(self.i) {
            Some(Tagged::Word(w)) => Some(w),
            _ => None,
        }
    }

    fn peek_word_at(&self, k: usize) -> Option<&Word> {
        match self.toks.get(self.i + k) {
            Some(Tagged::Word(w)) => Some(w),
            _ => None,
        }
    }

    fn at_comma(&self) -> bool {
        matches!(self.toks.get(self.i), Some(Tagged::Comma(_)))
    }

    fn eat_comma(&mut self) -> bool {
        if self.at_comma() {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Consume the next word token. Errors (instead of indexing out of
    /// bounds or hitting a comma) when the grammar expected a word the
    /// sentence does not supply — e.g. a dangling conjunction at the end
    /// of the question.
    fn bump(&mut self) -> Result<Word, ParseFailure> {
        let w = match self.toks.get(self.i) {
            Some(Tagged::Word(w)) => w.clone(),
            Some(Tagged::Comma(p)) => {
                return Err(ParseFailure {
                    message: "expected a word, found a comma".into(),
                    position: *p,
                })
            }
            None => {
                return Err(ParseFailure {
                    message: "the question ends where another word was expected".into(),
                    position: self.toks.len(),
                })
            }
        };
        self.i += 1;
        Ok(w)
    }

    fn done(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn position(&self) -> usize {
        match self.toks.get(self.i) {
            Some(Tagged::Word(w)) => w.position,
            Some(Tagged::Comma(p)) => *p,
            // End of input: one past the last token, so the reported
            // word index stays a sensible number.
            None => self.toks.len(),
        }
    }

    // -- node construction -------------------------------------------------

    fn add(&mut self, w: &Word, head: Option<NodeRef>, rel: DepRel) -> NodeRef {
        let id = self.nodes.len();
        self.nodes.push(DepNode {
            word: w.text.clone(),
            lemma: w.lemma.clone(),
            pos: w.pos,
            head,
            rel,
            children: Vec::new(),
            order: w.position,
        });
        if let Some(h) = head {
            self.nodes[h].children.push(id);
        }
        id
    }

    fn attach(&mut self, child: NodeRef, head: NodeRef, rel: DepRel) {
        self.nodes[child].head = Some(head);
        self.nodes[child].rel = rel;
        self.nodes[head].children.push(child);
    }

    // -- grammar ------------------------------------------------------------

    fn parse(mut self) -> Result<DepTree, ParseFailure> {
        // Optional "For each X," prefix.
        let mut prefix_np: Option<NodeRef> = None;
        if let Some(w) = self.peek_word() {
            if w.pos == Pos::Prep && w.lemma == "for" && self.peek_word_at(1).is_some() {
                self.i += 1;
                prefix_np = Some(self.parse_np()?);
                self.eat_comma();
            }
        }

        let root = match self.peek_word() {
            Some(w) if w.pos == Pos::Verb => {
                let w = self.bump()?;
                self.add(&w, None, DepRel::Root)
            }
            Some(w) if w.pos == Pos::Wh => {
                let w = self.bump()?;
                let root = self.add(&w, None, DepRel::Root);
                // Copula after the wh-word is a helper ("What is …").
                if self.peek_word().is_some_and(|w| w.pos == Pos::Aux) {
                    let aux = self.bump()?;
                    self.add(&aux, Some(root), DepRel::Dangling);
                }
                root
            }
            Some(w) => {
                return Err(ParseFailure {
                    message: format!(
                        "a query must begin with a command verb (e.g. \"Return\", \"Find\") \
                         or a wh-word; found `{}`",
                        w.text
                    ),
                    position: w.position,
                })
            }
            None => {
                return Err(ParseFailure {
                    message: "a query must begin with a command verb or a wh-word".into(),
                    position: self.position(),
                })
            }
        };

        if let Some(p) = prefix_np {
            self.attach(p, root, DepRel::Obj);
        }

        // "Show me ..." — discard-level pronoun.
        if self
            .peek_word()
            .is_some_and(|w| w.pos == Pos::Pronoun && w.lemma == "me")
        {
            let w = self.bump()?;
            self.add(&w, Some(root), DepRel::Dangling);
        }

        // Object noun-phrase list.
        if self.at_np_start() {
            self.parse_np_list(root, DepRel::Obj)?;
        }

        // Trailing clauses.
        loop {
            let had_comma = self.eat_comma();
            if self.done() {
                break;
            }
            let Some(w) = self.peek_word() else {
                continue; // another comma
            };
            match w.pos {
                Pos::Subord if w.lemma == "where" => {
                    self.i += 1;
                    let site = self.last_np_head.unwrap_or(root);
                    let clause = self.parse_clause()?;
                    self.attach(clause, site, DepRel::Rel);
                }
                Pos::OrderPhrase => {
                    let w = self.bump()?;
                    let ob = self.add(&w, Some(root), DepRel::Order);
                    if self.at_np_start() {
                        let np = self.parse_np()?;
                        self.attach(np, ob, DepRel::PComp);
                    }
                }
                Pos::Conj if had_comma => {
                    // ", and NP" continuation of the object list.
                    self.i += 1;
                    if self.at_np_start() {
                        let np = self.parse_np()?;
                        self.attach(np, root, DepRel::Obj);
                        continue;
                    }
                    break;
                }
                _ if had_comma && self.at_np_start() => {
                    // ", NP" — a further object conjunct.
                    let np = self.parse_np()?;
                    self.attach(np, root, DepRel::Obj);
                }
                _ => break,
            }
        }

        // Whatever could not be integrated dangles under the root so the
        // NaLIX validator can name it in feedback.
        while !self.done() {
            if self.eat_comma() {
                continue;
            }
            let w = self.bump()?;
            self.add(&w, Some(root), DepRel::Dangling);
        }

        let tree = DepTree::new(self.nodes, root);
        debug_assert!(tree.check_invariants().is_ok());
        Ok(tree)
    }

    fn at_np_start(&self) -> bool {
        matches!(
            self.peek_word().map(|w| w.pos),
            Some(
                Pos::Det
                    | Pos::Quant
                    | Pos::Adj
                    | Pos::Noun
                    | Pos::Proper
                    | Pos::Quoted
                    | Pos::Number
                    | Pos::FuncPhrase
                    | Pos::Pronoun
            )
        )
    }

    /// Parse `NP (("and"|"or"|",") NP)*`, attaching the first conjunct to
    /// `site` with `rel` and later conjuncts to the first conjunct.
    fn parse_np_list(&mut self, site: NodeRef, rel: DepRel) -> Result<NodeRef, ParseFailure> {
        let first = self.parse_np()?;
        self.attach(first, site, rel);
        loop {
            // "and NP" / "or NP"
            if self.peek_word().is_some_and(|w| w.pos == Pos::Conj) {
                let conj_word = self.bump()?;
                if !self.at_np_start() {
                    // dangling conjunction
                    self.add(&conj_word, Some(first), DepRel::Dangling);
                    break;
                }
                // Coordination attachment: "and" coordinates the list
                // heads ("the title AND the authors of every book"),
                // while "or" offers an alternative for the *nearest*
                // noun phrase ("every book OR article", "by \"A\" or
                // \"B\"").
                if conj_word.lemma == "or" {
                    let site = self.last_np_head.unwrap_or(first);
                    let next = self.parse_np()?;
                    self.attach(next, site, DepRel::ConjOr);
                } else {
                    let next = self.parse_np()?;
                    self.attach(next, first, DepRel::Conj);
                }
                continue;
            }
            // ", NP" only when clearly a list continuation (comma followed
            // by an NP and then by "and"/"or" or another comma).
            if self.at_comma() {
                if let Some(w) = self.peek_word_at(1) {
                    if matches!(
                        w.pos,
                        Pos::Det | Pos::Noun | Pos::Adj | Pos::FuncPhrase | Pos::Quant
                    ) && w.lemma != "where"
                    {
                        // Lookahead: avoid swallowing a where-clause or
                        // order phrase.
                        let save = self.i;
                        self.i += 1;
                        if self.at_np_start() {
                            let next = self.parse_np()?;
                            self.attach(next, first, DepRel::Conj);
                            continue;
                        }
                        self.i = save;
                    }
                }
            }
            break;
        }
        Ok(first)
    }

    /// Parse one noun phrase; returns its head node (unattached — the
    /// caller attaches it).
    fn parse_np(&mut self) -> Result<NodeRef, ParseFailure> {
        // Leading markers.
        let mut pending: Vec<(Word, DepRel)> = Vec::new();
        loop {
            match self.peek_word().map(|w| (w.pos, w.lemma.clone())) {
                Some((Pos::Det, _)) => {
                    let w = self.bump()?;
                    pending.push((w, DepRel::Det));
                }
                Some((Pos::Quant, _)) => {
                    let w = self.bump()?;
                    pending.push((w, DepRel::Det));
                }
                Some((Pos::Pronoun, _)) => {
                    let w = self.bump()?;
                    pending.push((w, DepRel::Det));
                }
                _ => break,
            }
        }

        // Function phrase head: "the number of" + NP.
        if self.peek_word().is_some_and(|w| w.pos == Pos::FuncPhrase) {
            let w = self.bump()?;
            let fp = self.add(&w, None, DepRel::Dangling);
            for (m, rel) in pending {
                let mref = self.add(&m, None, DepRel::Dangling);
                self.attach(mref, fp, rel);
            }
            let inner = self.parse_np()?;
            self.attach(inner, fp, DepRel::FArg);
            return Ok(fp);
        }

        // Pre-modifier run ending in the head.
        let mut run: Vec<Word> = Vec::new();
        loop {
            match self.peek_word().map(|w| w.pos) {
                Some(Pos::Adj | Pos::Noun | Pos::Number) => run.push(self.bump()?),
                Some(Pos::Proper | Pos::Quoted) => {
                    run.push(self.bump()?);
                    break; // values end a run
                }
                _ => break,
            }
        }
        if run.is_empty() {
            return Err(ParseFailure {
                message: "expected a noun phrase".into(),
                position: self.position(),
            });
        }

        // Head selection: last noun if present; a trailing value after a
        // noun is an apposition ("director Ron Howard").
        let (head_idx, appos_idx) = {
            let last = run.len() - 1;
            let last_is_value = matches!(run[last].pos, Pos::Proper | Pos::Quoted);
            if last_is_value && run.len() >= 2 && run[last - 1].pos == Pos::Noun {
                (last - 1, Some(last))
            } else if last_is_value {
                (last, None)
            } else {
                // last noun-ish in the run
                let idx = run.iter().rposition(|w| w.pos == Pos::Noun).unwrap_or(last);
                (idx, None)
            }
        };
        let mut head_word = run[head_idx].clone();
        // A noun phrase with no noun: the trailing adjective is being
        // used nominally ("the last of the author" — `last` is an
        // element name in bib.xml). Promote it.
        if head_word.pos == Pos::Adj {
            head_word.pos = Pos::Noun;
            head_word.lemma = crate::lexicon::lemmatize_noun(&head_word.text);
        }
        let head = self.add(&head_word, None, DepRel::Dangling);
        for (m, rel) in pending {
            let mref = self.add(&m, None, DepRel::Dangling);
            self.attach(mref, head, rel);
        }
        for (k, w) in run.iter().enumerate() {
            if k == head_idx {
                continue;
            }
            if Some(k) == appos_idx {
                let a = self.add(w, None, DepRel::Dangling);
                self.attach(a, head, DepRel::Appos);
            } else {
                let m = self.add(w, None, DepRel::Dangling);
                self.attach(m, head, DepRel::Mod);
            }
        }

        // Post-modifiers — but not on value heads: a proper noun, quoted
        // string or number is terminal ("published by Addison-Wesley
        // after 1991" must attach "after" to the participle, not to the
        // publisher value).
        if !matches!(head_word.pos, Pos::Proper | Pos::Quoted | Pos::Number) {
            self.parse_postmods(head)?;
        }
        // The where-clause attachment site is the NP head most recent in
        // *sentence order* (paper Figure 3: the operator hangs under
        // `movie`, the innermost NP) — so an outer NP must not overwrite
        // a later inner one.
        let later = self
            .last_np_head
            .is_none_or(|prev| self.nodes[prev].order < self.nodes[head].order);
        if later {
            self.last_np_head = Some(head);
        }
        Ok(head)
    }

    #[allow(clippy::while_let_loop)] // `while let` would hold the peek borrow across mutations
    fn parse_postmods(&mut self, head: NodeRef) -> Result<(), ParseFailure> {
        loop {
            let Some(w) = self.peek_word() else { break };
            match w.pos {
                Pos::Prep => {
                    // Attach preposition to the head; complement below.
                    let w = self.bump()?;
                    let p = self.add(&w, None, DepRel::Dangling);
                    self.attach(p, head, DepRel::Prep);
                    // "as has Ron Howard" — auxiliary inside a stranded
                    // comparative; consume it as a dangling helper.
                    if self.peek_word().is_some_and(|x| x.pos == Pos::Aux) {
                        let aux = self.bump()?;
                        self.add(&aux, Some(p), DepRel::Dangling);
                    }
                    if self.at_np_start() {
                        let inner = self.parse_np()?;
                        self.attach(inner, p, DepRel::PComp);
                    }
                }
                Pos::OpPhrase => {
                    // "year greater than 1991" directly on a noun.
                    let w = self.bump()?;
                    let op = self.add(&w, None, DepRel::Dangling);
                    self.attach(op, head, DepRel::Prep);
                    if self.at_np_start() {
                        let inner = self.parse_np()?;
                        self.attach(inner, op, DepRel::PComp);
                    }
                }
                Pos::Participle => {
                    let w = self.bump()?;
                    let part = self.add(&w, None, DepRel::Dangling);
                    self.attach(part, head, DepRel::Part);
                    // The by-phrase and trailing comparatives hang off
                    // the participle.
                    loop {
                        let Some(x) = self.peek_word() else { break };
                        if x.pos == Pos::Prep || x.pos == Pos::OpPhrase {
                            let xw = self.bump()?;
                            let p = self.add(&xw, None, DepRel::Dangling);
                            self.attach(p, part, DepRel::Prep);
                            if self.at_np_start() {
                                let inner = self.parse_np()?;
                                self.attach(inner, p, DepRel::PComp);
                            }
                        } else {
                            break;
                        }
                    }
                }
                Pos::Subord if w.lemma != "where" => {
                    // Relative clause.
                    let sub = self.bump()?;
                    let clause = self.parse_rel_clause(head, &sub)?;
                    if let Some(c) = clause {
                        self.attach(c, head, DepRel::Rel);
                    }
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Relative clause after `that`/`who`/`which`/`whose`. Returns the
    /// clause root (unattached), or `None` when the relativizer had no
    /// parseable clause (the relativizer then dangles).
    fn parse_rel_clause(
        &mut self,
        head: NodeRef,
        sub: &Word,
    ) -> Result<Option<NodeRef>, ParseFailure> {
        if sub.lemma == "whose" {
            // "whose name contains X" — full clause with its own subject.
            let clause = self.parse_clause()?;
            return Ok(Some(clause));
        }
        // "that/who (aux) (not) VERB …" — subject is the modified head.
        let mut aux: Option<Word> = None;
        if self.peek_word().is_some_and(|w| w.pos == Pos::Aux) {
            aux = Some(self.bump()?);
        }
        // Negation precedes the verb: "that does NOT contain …".
        let mut neg: Option<Word> = None;
        if self.peek_word().is_some_and(|w| w.pos == Pos::Neg) {
            neg = Some(self.bump()?);
        }
        match self.peek_word().map(|w| w.pos) {
            Some(Pos::Verb | Pos::Participle | Pos::OpPhrase) => {
                let v = self.bump()?;
                let vref = self.add(&v, None, DepRel::Dangling);
                if let Some(a) = aux {
                    let aref = self.add(&a, None, DepRel::Dangling);
                    self.attach(aref, vref, DepRel::Dangling);
                }
                if let Some(n) = neg {
                    let nref = self.add(&n, None, DepRel::Dangling);
                    self.attach(nref, vref, DepRel::Neg);
                }
                // Object.
                if self.at_np_start() {
                    let obj = self.parse_np()?;
                    self.attach(obj, vref, DepRel::Obj);
                } else if self.peek_word().is_some_and(|w| w.pos == Pos::Prep) {
                    // "who has directed as many movies as …"
                    self.parse_postmods(vref)?;
                }
                Ok(Some(vref))
            }
            _ => {
                if let Some(a) = aux {
                    // The auxiliary is the main verb: "book that has an
                    // author".
                    let vref = self.add(&a, None, DepRel::Dangling);
                    if let Some(n) = neg {
                        let nref = self.add(&n, None, DepRel::Dangling);
                        self.attach(nref, vref, DepRel::Neg);
                    }
                    if self.at_np_start() {
                        let obj = self.parse_np()?;
                        self.attach(obj, vref, DepRel::Obj);
                    }
                    return Ok(Some(vref));
                }
                // No clause verb: the relativizer (and any stray
                // negation) dangles for feedback.
                let s = self.add(sub, None, DepRel::Dangling);
                self.attach(s, head, DepRel::Dangling);
                if let Some(n) = neg {
                    let nref = self.add(&n, None, DepRel::Dangling);
                    self.attach(nref, head, DepRel::Dangling);
                }
                Ok(None)
            }
        }
    }

    /// A full clause with explicit subject: `NP (copula|verb) …`.
    /// Returns the clause root: an operator/verb node whose children are
    /// the subject head and the predicate head.
    fn parse_clause(&mut self) -> Result<NodeRef, ParseFailure> {
        let subj = self.parse_np()?;
        // The verb group.
        let mut aux: Option<Word> = None;
        let mut neg = false;
        if self.peek_word().is_some_and(|w| w.pos == Pos::Aux) {
            aux = Some(self.bump()?);
        }
        if self.peek_word().is_some_and(|w| w.pos == Pos::Neg) {
            self.i += 1;
            neg = true;
        }
        let op: NodeRef = match self.peek_word().map(|w| w.pos) {
            Some(Pos::OpPhrase) => {
                let mut w = self.bump()?;
                if let Some(a) = &aux {
                    // Fold the copula in: "is the same as" → OT
                    // "be the same as" (paper Figure 2, node 6).
                    if a.lemma == "be" {
                        w.text = format!("{} {}", a.text, w.text);
                        w.lemma = format!("be {}", w.lemma);
                        w.position = a.position;
                    }
                }
                self.add(&w, None, DepRel::Dangling)
            }
            Some(Pos::Verb | Pos::Participle) => {
                let w = self.bump()?;
                let vref = self.add(&w, None, DepRel::Dangling);
                if let Some(a) = aux {
                    let aref = self.add(&a, None, DepRel::Dangling);
                    self.attach(aref, vref, DepRel::Dangling);
                }
                vref
            }
            _ => match aux {
                // Bare copula or main-verb "have": "the director … is Ron
                // Howard", "each book has an author".
                Some(a) => self.add(&a, None, DepRel::Dangling),
                None => {
                    return Err(ParseFailure {
                        message: "expected a verb in the clause".into(),
                        position: self.position(),
                    })
                }
            },
        };
        self.attach(subj, op, DepRel::Subj);
        if neg {
            let w = Word {
                text: "not".into(),
                lemma: "not".into(),
                pos: Pos::Neg,
                position: self.nodes[op].order,
            };
            let nref = self.add(&w, None, DepRel::Dangling);
            self.attach(nref, op, DepRel::Neg);
        }
        // Predicate, possibly coordinated: "… is \"A\" or \"B\"".
        if self.at_np_start() {
            let pred = self.parse_np()?;
            self.attach(pred, op, DepRel::Pred);
            while self.peek_word().is_some_and(|w| w.pos == Pos::Conj) {
                let conj_word = self.bump()?;
                if !self.at_np_start() {
                    self.add(&conj_word, Some(op), DepRel::Dangling);
                    break;
                }
                let rel = if conj_word.lemma == "or" {
                    DepRel::ConjOr
                } else {
                    DepRel::Conj
                };
                let next = self.parse_np()?;
                self.attach(next, pred, rel);
            }
        } else if self.peek_word().is_some_and(|w| w.pos == Pos::Prep) {
            self.parse_postmods(op)?;
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Find the unique node with the given lemma.
    fn by_lemma(t: &DepTree, lemma: &str) -> NodeRef {
        let hits: Vec<_> = t.refs().filter(|&r| t.node(r).lemma == lemma).collect();
        assert_eq!(hits.len(), 1, "lemma `{lemma}` not unique: {}", t.outline());
        hits[0]
    }

    fn head_lemma(t: &DepTree, r: NodeRef) -> String {
        t.node(t.node(r).head.expect("has head")).lemma.clone()
    }

    #[test]
    fn simple_imperative() {
        let t = parse("Return the title of each movie.").unwrap();
        assert_eq!(t.node(t.root()).lemma, "return");
        let title = by_lemma(&t, "title");
        assert_eq!(head_lemma(&t, title), "return");
        let of = by_lemma(&t, "of");
        assert_eq!(head_lemma(&t, of), "title");
        let movie = by_lemma(&t, "movie");
        assert_eq!(head_lemma(&t, movie), "of");
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn quantifier_attaches_to_noun() {
        let t = parse("Return every director.").unwrap();
        let every = by_lemma(&t, "every");
        assert_eq!(head_lemma(&t, every), "director");
        assert_eq!(t.node(every).rel, DepRel::Det);
    }

    #[test]
    fn participial_postmodifier() {
        let t = parse("Find all the movies directed by Ron Howard.").unwrap();
        let directed = by_lemma(&t, "directed");
        assert_eq!(head_lemma(&t, directed), "movie");
        let by = by_lemma(&t, "by");
        assert_eq!(head_lemma(&t, by), "directed");
        let rh = by_lemma(&t, "Ron Howard");
        assert_eq!(head_lemma(&t, rh), "by");
        assert_eq!(t.node(rh).pos, Pos::Proper);
    }

    #[test]
    fn apposition() {
        let t = parse("Find all the movies directed by director Ron Howard.").unwrap();
        let rh = by_lemma(&t, "Ron Howard");
        assert_eq!(head_lemma(&t, rh), "director");
        assert_eq!(t.node(rh).rel, DepRel::Appos);
    }

    #[test]
    fn where_clause_attaches_to_last_np_head() {
        // Paper Figure 3: the operator hangs under `movie`.
        let t = parse(
            "Return the directors of movies, where the title of each movie \
             is the same as the title of a book.",
        )
        .unwrap();
        let op = by_lemma(&t, "be the same as");
        // site = "movies" (the most recent NP head of the main clause)
        let site = t.node(op).head.unwrap();
        assert_eq!(t.node(site).lemma, "movie");
        // operator has subject and predicate children (two titles)
        let kids = t.children(op);
        let titles: Vec<_> = kids
            .iter()
            .filter(|&&k| t.node(k).lemma == "title")
            .collect();
        assert_eq!(titles.len(), 2, "{}", t.outline());
    }

    #[test]
    fn query2_shape_matches_figure2() {
        let t = parse(
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        )
        .unwrap();
        let op = by_lemma(&t, "be the same as");
        // OT under the object "director"
        let site = t.node(op).head.unwrap();
        assert_eq!(t.node(site).lemma, "director");
        assert_eq!(head_lemma(&t, site), "return");
        // OT has two FuncPhrase children
        let fps: Vec<_> = t
            .children(op)
            .iter()
            .filter(|&&k| t.node(k).pos == Pos::FuncPhrase)
            .copied()
            .collect();
        assert_eq!(fps.len(), 2, "{}", t.outline());
        // each FuncPhrase dominates a movie
        for fp in fps {
            let kids = t.children(fp);
            assert!(
                kids.iter().any(|&k| t.node(k).lemma == "movie"),
                "{}",
                t.outline()
            );
        }
        // "Ron Howard" sits under the second by-phrase
        let rh = by_lemma(&t, "Ron Howard");
        assert_eq!(head_lemma(&t, rh), "by");
    }

    #[test]
    fn copula_value_predicate() {
        let t = parse(
            "Return the total number of movies, where the director of each movie \
             is Ron Howard.",
        )
        .unwrap();
        let be = by_lemma(&t, "be");
        let kids = t.children(be);
        assert!(kids.iter().any(|&k| t.node(k).lemma == "director"));
        assert!(kids.iter().any(|&k| t.node(k).lemma == "Ron Howard"));
        let fp = by_lemma(&t, "the total number of");
        assert_eq!(head_lemma(&t, fp), "return");
    }

    #[test]
    fn conjoined_objects() {
        let t = parse("Return the title and the authors of each book.").unwrap();
        let title = by_lemma(&t, "title");
        let author = by_lemma(&t, "author");
        assert_eq!(head_lemma(&t, title), "return");
        assert_eq!(head_lemma(&t, author), "title");
        assert_eq!(t.node(author).rel, DepRel::Conj);
        // "of each book" attaches to the nearest head: authors
        let of = by_lemma(&t, "of");
        assert_eq!(head_lemma(&t, of), "author");
    }

    #[test]
    fn published_after_year() {
        let t = parse("Return the title of every book published by Addison-Wesley after 1991.")
            .unwrap();
        let published = by_lemma(&t, "published");
        assert_eq!(head_lemma(&t, published), "book");
        let after = by_lemma(&t, "after");
        assert_eq!(head_lemma(&t, after), "published");
        let year = by_lemma(&t, "1991");
        assert_eq!(head_lemma(&t, year), "after");
        let aw = by_lemma(&t, "Addison-Wesley");
        assert_eq!(head_lemma(&t, aw), "by");
    }

    #[test]
    fn sorted_by_attaches_to_root() {
        let t = parse("Return the title of every book, sorted by title.").unwrap();
        let ob = t
            .refs()
            .find(|&r| t.node(r).pos == Pos::OrderPhrase)
            .unwrap();
        assert_eq!(head_lemma(&t, ob), "return");
        let kids = t.children(ob);
        assert_eq!(kids.len(), 1);
        assert_eq!(t.node(kids[0]).lemma, "title");
    }

    #[test]
    fn relative_clause_contain() {
        let t = parse("Find all titles that contain \"XML\".").unwrap();
        let contain = by_lemma(&t, "contain");
        assert_eq!(head_lemma(&t, contain), "title");
        let v = by_lemma(&t, "XML");
        assert_eq!(head_lemma(&t, v), "contain");
        assert_eq!(t.node(v).pos, Pos::Quoted);
    }

    #[test]
    fn relative_clause_have() {
        let t = parse("Return the title of each book that has an author.").unwrap();
        let have = by_lemma(&t, "have");
        assert_eq!(head_lemma(&t, have), "book");
        let author = by_lemma(&t, "author");
        assert_eq!(head_lemma(&t, author), "have");
    }

    #[test]
    fn with_postmodifier() {
        let t = parse("Return the book with the lowest price.").unwrap();
        let with = by_lemma(&t, "with");
        assert_eq!(head_lemma(&t, with), "book");
        let price = by_lemma(&t, "price");
        assert_eq!(head_lemma(&t, price), "with");
        let lowest = by_lemma(&t, "lowest");
        assert_eq!(head_lemma(&t, lowest), "price");
    }

    #[test]
    fn lowest_price_for_each_book() {
        let t = parse("Return the lowest price for each book.").unwrap();
        let price = by_lemma(&t, "price");
        assert_eq!(head_lemma(&t, price), "return");
        let for_ = by_lemma(&t, "for");
        assert_eq!(head_lemma(&t, for_), "price");
        let book = by_lemma(&t, "book");
        assert_eq!(head_lemma(&t, book), "for");
    }

    #[test]
    fn query1_as_many_as_parses_with_as_nodes() {
        // Paper Query 1: invalid for NaLIX (unknown term "as"), but it
        // must still PARSE so validation can point at "as".
        let t = parse("Return every director who has directed as many movies as has Ron Howard.")
            .unwrap();
        let as_nodes: Vec<_> = t.refs().filter(|&r| t.node(r).lemma == "as").collect();
        assert!(!as_nodes.is_empty(), "{}", t.outline());
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn wh_question() {
        let t = parse("What is the title of each book?").unwrap();
        assert_eq!(t.node(t.root()).pos, Pos::Wh);
        let title = by_lemma(&t, "title");
        assert_eq!(head_lemma(&t, title), "what");
    }

    #[test]
    fn for_each_prefix() {
        let t =
            parse("For each author, return the author and the titles of all books of the author.")
                .unwrap();
        assert_eq!(t.node(t.root()).lemma, "return");
        // the prefix NP attaches under the root
        let kids = t.children(t.root());
        assert!(kids.iter().any(|&k| t.node(k).lemma == "author"));
    }

    #[test]
    fn pronoun_becomes_marker() {
        let t = parse("Return all books and their titles.").unwrap();
        let their = by_lemma(&t, "their");
        assert_eq!(t.node(their).pos, Pos::Pronoun);
        assert_eq!(head_lemma(&t, their), "title");
    }

    #[test]
    fn negated_clause() {
        let t = parse(
            "Return the title of each book, where the publisher of the book is not \"Springer\".",
        )
        .unwrap();
        let be = by_lemma(&t, "be");
        let kids = t.children(be);
        assert!(kids.iter().any(|&k| t.node(k).pos == Pos::Neg));
    }

    #[test]
    fn clause_with_operator_phrase() {
        let t =
            parse("Return every book, where the year of the book is greater than 1991.").unwrap();
        let op = by_lemma(&t, "be greater than");
        let kids = t.children(op);
        assert!(kids.iter().any(|&k| t.node(k).lemma == "year"));
        assert!(kids.iter().any(|&k| t.node(k).lemma == "1991"));
    }

    #[test]
    fn clause_with_count_comparison() {
        let t = parse("Return every book, where the number of authors of the book is at least 1.")
            .unwrap();
        let op = by_lemma(&t, "be at least");
        let kids = t.children(op);
        assert!(kids.iter().any(|&k| t.node(k).pos == Pos::FuncPhrase));
        assert!(kids.iter().any(|&k| t.node(k).lemma == "1"));
    }

    #[test]
    fn or_attaches_to_nearest_np() {
        let t = parse("Return the title of every book or article.").unwrap();
        let article = by_lemma(&t, "article");
        assert_eq!(head_lemma(&t, article), "book");
        assert_eq!(t.node(article).rel, DepRel::ConjOr);
    }

    #[test]
    fn or_in_value_predicate() {
        let t =
            parse("Return every book, where the publisher of the book is \"A\" or \"B\".").unwrap();
        let b = by_lemma(&t, "B");
        assert_eq!(head_lemma(&t, b), "A");
        assert_eq!(t.node(b).rel, DepRel::ConjOr);
    }

    #[test]
    fn multi_sentence_fuses_to_where() {
        assert_eq!(
            normalize_multi_sentence("Return all books. The publisher of the book is Springer."),
            "Return all books, where the publisher of the book is Springer."
        );
        // abbreviations survive
        assert_eq!(
            normalize_multi_sentence("Find books by W. Richard Stevens."),
            "Find books by W. Richard Stevens."
        );
        let t = parse("Return all books. The publisher of the book is Springer.").unwrap();
        assert!(t.refs().any(|r| t.node(r).lemma == "be"));
    }

    #[test]
    fn rejects_non_query_sentences() {
        assert!(parse("The movies are great.").is_err());
        assert!(parse("").is_err());
        assert!(parse("of by with").is_err());
    }

    #[test]
    fn garbage_tail_dangles() {
        let t = parse("Return all books blargh zzz.").unwrap();
        // "blargh"/"zzz" are tagged as nouns and absorbed into NP
        // structure or dangle; invariants must hold either way.
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn invariants_on_all_golden_sentences() {
        let sentences = [
            "Return every director, where the number of movies directed by the director is the same as the number of movies directed by Ron Howard.",
            "Return the directors of movies, where the title of each movie is the same as the title of a book.",
            "Return every director who has directed as many movies as has Ron Howard.",
            "Return the lowest price for each book.",
            "Return the book with the lowest price.",
            "Return the total number of movies, where the director of each movie is Ron Howard.",
            "Find all the movies directed by director Ron Howard.",
            "Return the year and title of every book published by Addison-Wesley after 1991.",
            "Return the title and the authors of every book.",
            "Find all titles that contain \"XML\".",
            "Return the title of every book, sorted by title.",
        ];
        for s in sentences {
            let t = parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{s}: {e}\n{}", t.outline()));
        }
    }
}
