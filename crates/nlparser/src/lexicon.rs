//! Word lists, phrase tables, and a light lemmatiser.
//!
//! These are the *parser's* linguistic tables — which words are verbs,
//! prepositions, determiners, and which word sequences form a single
//! phrase node. They are distinct from NaLIX's token-classification enum
//! sets (crate `nalix`, module `vocab`), which decide what a node *means
//! for translation*; this module only decides tree shape.

/// Imperative command verbs that can root a query sentence.
pub const COMMAND_VERBS: [&str; 9] = [
    "return", "find", "list", "show", "display", "give", "get", "retrieve", "tell",
];

/// Wh-words that can root a question.
pub const WH_WORDS: [&str; 4] = ["what", "which", "who", "how"];

/// Copular verb forms.
pub const COPULAS: [&str; 5] = ["is", "are", "was", "were", "be"];

/// Auxiliary verbs (when followed by another verb).
pub const AUXILIARIES: [&str; 7] = ["has", "have", "had", "does", "do", "did", "can"];

/// Clause verbs we recognise beyond the copulas: content verbs that can
/// head a relative or subordinate clause.
pub const CLAUSE_VERBS: [&str; 10] = [
    "contain",
    "contains",
    "contained",
    "include",
    "includes",
    "included",
    "has",
    "have",
    "start",
    "end",
];

/// Past participles that post-modify nouns ("movies directed by X").
/// Open class — any -ed form is accepted too; these are the irregular
/// and domain-frequent ones.
pub const PARTICIPLES: [&str; 10] = [
    "directed",
    "written",
    "published",
    "edited",
    "authored",
    "made",
    "produced",
    "released",
    "sold",
    "printed",
];

/// Determiners / articles.
pub const ARTICLES: [&str; 3] = ["the", "a", "an"];

/// Quantifiers.
pub const QUANTIFIERS: [&str; 5] = ["every", "each", "all", "any", "some"];

/// Prepositions the grammar attaches.
pub const PREPOSITIONS: [&str; 14] = [
    "of", "by", "in", "on", "for", "with", "from", "at", "to", "about", "after", "before", "as",
    "than",
];

/// Pronouns (classified PM by NaLIX, warned about — except the
/// first-person "me"/"us" of "show me …", which is vacuous).
pub const PRONOUNS: [&str; 14] = [
    "it", "its", "they", "them", "their", "he", "she", "his", "her", "this", "these", "those",
    "me", "us",
];

/// Relativizers / subordinators that open a clause.
pub const SUBORDINATORS: [&str; 5] = ["that", "which", "who", "where", "whose"];

/// Adjectives the grammar knows (superlatives that become NaLIX FTs,
/// plus ordinary ones).
pub const ADJECTIVES: [&str; 22] = [
    "lowest",
    "highest",
    "smallest",
    "largest",
    "greatest",
    "least",
    "cheapest",
    "most",
    "fewest",
    "earliest",
    "latest",
    "minimum",
    "maximum",
    "total",
    "average",
    "same",
    "first",
    "second",
    "last",
    "new",
    "alphabetical",
    "different",
];

/// Multi-word phrases merged into a single node before parsing, with the
/// canonical lemma of the merged node. Longest match wins. All phrases
/// are matched case-insensitively.
pub const PHRASES: [(&str, &str, PhraseKind); 24] = [
    ("the number of", "the number of", PhraseKind::Func),
    (
        "the total number of",
        "the total number of",
        PhraseKind::Func,
    ),
    ("the same as", "the same as", PhraseKind::Op),
    ("equal to", "equal to", PhraseKind::Op),
    ("greater than", "greater than", PhraseKind::Op),
    ("more than", "more than", PhraseKind::Op),
    ("larger than", "larger than", PhraseKind::Op),
    ("less than", "less than", PhraseKind::Op),
    ("fewer than", "fewer than", PhraseKind::Op),
    ("smaller than", "smaller than", PhraseKind::Op),
    ("at least", "at least", PhraseKind::Op),
    ("at most", "at most", PhraseKind::Op),
    ("later than", "later than", PhraseKind::Op),
    ("earlier than", "earlier than", PhraseKind::Op),
    ("starts with", "start with", PhraseKind::Op),
    ("start with", "start with", PhraseKind::Op),
    ("ends with", "end with", PhraseKind::Op),
    ("end with", "end with", PhraseKind::Op),
    ("sorted by", "sorted by", PhraseKind::Order),
    ("ordered by", "sorted by", PhraseKind::Order),
    (
        "in alphabetical order",
        "in alphabetical order",
        PhraseKind::Order,
    ),
    ("in order of", "sorted by", PhraseKind::Order),
    (
        "in ascending order",
        "in alphabetical order",
        PhraseKind::Order,
    ),
    (
        "in descending order",
        "in descending order",
        PhraseKind::Order,
    ),
];

/// Kind of a merged phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhraseKind {
    /// Comparison operator phrase.
    Op,
    /// Aggregate function phrase.
    Func,
    /// Ordering phrase.
    Order,
}

/// Irregular plural → singular map; regular plurals are handled by
/// suffix stripping in [`lemmatize_noun`].
pub const IRREGULAR_PLURALS: [(&str, &str); 10] = [
    ("children", "child"),
    ("people", "person"),
    ("men", "man"),
    ("women", "woman"),
    ("indices", "index"),
    ("series", "series"),
    // -ie nouns the "ies → y" rule would mangle
    ("movies", "movie"),
    ("cookies", "cookie"),
    ("calories", "calorie"),
    ("prices", "price"),
];

/// Singularise a noun.
pub fn lemmatize_noun(word: &str) -> String {
    let w = word.to_lowercase();
    for (pl, sg) in IRREGULAR_PLURALS {
        if w == pl {
            return sg.to_owned();
        }
    }
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    for suffix in ["ses", "xes", "zes", "ches", "shes"] {
        if let Some(stem) = w.strip_suffix("es") {
            if w.ends_with(suffix) {
                return stem.to_owned();
            }
        }
    }
    if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && w.len() > 2 {
        return w[..w.len() - 1].to_owned();
    }
    w
}

/// Base form of a verb (covers the forms the grammar meets).
pub fn lemmatize_verb(word: &str) -> String {
    let w = word.to_lowercase();
    match w.as_str() {
        "is" | "are" | "was" | "were" | "been" | "being" => return "be".to_owned(),
        "has" | "had" => return "have".to_owned(),
        "does" | "did" => return "do".to_owned(),
        "contains" | "contained" | "containing" => return "contain".to_owned(),
        "includes" | "included" | "including" => return "include".to_owned(),
        _ => {}
    }
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = w.strip_suffix("es") {
        if stem.ends_with('h') || stem.ends_with('s') || stem.ends_with('x') {
            return stem.to_owned();
        }
    }
    if w.ends_with('s') && !w.ends_with("ss") && w.len() > 2 {
        return w[..w.len() - 1].to_owned();
    }
    w
}

fn contains(set: &[&str], w: &str) -> bool {
    set.contains(&w)
}

/// Is `w` (lower-case) a command verb?
pub fn is_command_verb(w: &str) -> bool {
    contains(&COMMAND_VERBS, w)
}

/// Is `w` a copula form?
pub fn is_copula(w: &str) -> bool {
    contains(&COPULAS, w)
}

/// Is `w` an auxiliary?
pub fn is_auxiliary(w: &str) -> bool {
    contains(&AUXILIARIES, w)
}

/// Is `w` an article?
pub fn is_article(w: &str) -> bool {
    contains(&ARTICLES, w)
}

/// Is `w` a quantifier?
pub fn is_quantifier(w: &str) -> bool {
    contains(&QUANTIFIERS, w)
}

/// Is `w` a preposition?
pub fn is_preposition(w: &str) -> bool {
    contains(&PREPOSITIONS, w)
}

/// Is `w` a pronoun?
pub fn is_pronoun(w: &str) -> bool {
    contains(&PRONOUNS, w)
}

/// Is `w` a subordinator?
pub fn is_subordinator(w: &str) -> bool {
    contains(&SUBORDINATORS, w)
}

/// Is `w` a known adjective?
pub fn is_adjective(w: &str) -> bool {
    contains(&ADJECTIVES, w)
}

/// Is `w` a wh-word?
pub fn is_wh_word(w: &str) -> bool {
    contains(&WH_WORDS, w)
}

/// Is `w` a known participle, or shaped like one (-ed form of length ≥ 4)?
pub fn is_participle(w: &str) -> bool {
    contains(&PARTICIPLES, w) || (w.ends_with("ed") && w.len() >= 4)
}

/// Is `w` a clause verb (can head a relative / subordinate clause)?
pub fn is_clause_verb(w: &str) -> bool {
    contains(&CLAUSE_VERBS, w)
}

/// Number words the tagger rewrites to digits (`Pos::Number`).
pub const NUMBER_WORDS: [(&str, &str); 10] = [
    ("one", "1"),
    ("two", "2"),
    ("three", "3"),
    ("four", "4"),
    ("five", "5"),
    ("six", "6"),
    ("seven", "7"),
    ("eight", "8"),
    ("nine", "9"),
    ("ten", "10"),
];

/// Does `lower` (a lowercased word) tag identically regardless of its
/// surface capitalisation, in *any* sentence position?
///
/// True for every closed-class word the tagger looks up lowercased
/// before its proper-noun rule fires. Unknown capitalised words tag as
/// `Pos::Proper` when non-initial, so their case is meaning-bearing —
/// callers normalising case (e.g. the nalix translation-cache key) must
/// leave such words alone. Wh-words are deliberately absent: they tag
/// specially only sentence-initially, and a non-initial "What" falls
/// through to the proper-noun rule.
pub fn tags_case_insensitively(lower: &str) -> bool {
    NUMBER_WORDS.iter().any(|(w, _)| *w == lower)
        || is_command_verb(lower)
        || is_copula(lower)
        || is_auxiliary(lower)
        || lower == "not"
        || lower == "no"
        || is_article(lower)
        || is_quantifier(lower)
        || lower == "and"
        || lower == "or"
        || is_subordinator(lower)
        || is_preposition(lower)
        || is_pronoun(lower)
        || is_adjective(lower)
        || is_clause_verb(lower)
        || is_participle(lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noun_lemmas() {
        assert_eq!(lemmatize_noun("movies"), "movie");
        assert_eq!(lemmatize_noun("titles"), "title");
        assert_eq!(lemmatize_noun("libraries"), "library");
        assert_eq!(lemmatize_noun("boxes"), "box");
        assert_eq!(lemmatize_noun("children"), "child");
        assert_eq!(lemmatize_noun("class"), "class");
        assert_eq!(lemmatize_noun("book"), "book");
        assert_eq!(lemmatize_noun("Movies"), "movie");
        assert_eq!(lemmatize_noun("prices"), "price");
    }

    #[test]
    fn verb_lemmas() {
        assert_eq!(lemmatize_verb("is"), "be");
        assert_eq!(lemmatize_verb("are"), "be");
        assert_eq!(lemmatize_verb("has"), "have");
        assert_eq!(lemmatize_verb("contains"), "contain");
        assert_eq!(lemmatize_verb("directs"), "direct");
        assert_eq!(lemmatize_verb("return"), "return");
    }

    #[test]
    fn membership_predicates() {
        assert!(is_command_verb("return"));
        assert!(!is_command_verb("movie"));
        assert!(is_copula("is"));
        assert!(is_quantifier("every"));
        assert!(is_article("the"));
        assert!(is_preposition("of"));
        assert!(is_pronoun("their"));
        assert!(is_subordinator("where"));
        assert!(is_adjective("lowest"));
        assert!(is_wh_word("what"));
    }

    #[test]
    fn participle_shape_heuristic() {
        assert!(is_participle("directed"));
        assert!(is_participle("written"));
        assert!(is_participle("composed")); // via -ed heuristic
        assert!(!is_participle("red")); // too short
    }

    #[test]
    fn phrase_table_has_no_duplicate_surfaces() {
        let mut seen = std::collections::HashSet::new();
        for (surface, _, _) in PHRASES {
            assert!(seen.insert(surface), "duplicate phrase `{surface}`");
        }
    }
}
