//! Seeded parse-error injection.
//!
//! Minipar — the parser the paper uses — "achieves about 88% precision
//! and 80% recall with respect to dependency relations" (paper footnote
//! 9), and the paper's Table 7 attributes part of NaLIX's residual
//! error to such mis-parses (e.g. a conjunct wrongly attached, so a
//! requested element is dropped from the result). Our rule-based parser
//! is deterministic, so to reproduce that error population the user
//! study injects *attachment corruptions*: with a configured
//! probability, one randomly chosen non-root node is re-attached to a
//! different plausible head (its grandparent or an "aunt" node), which
//! is precisely the failure mode the paper describes for Minipar
//! ("wrongly determined that only 'book' and 'title' depended on
//! 'List'").

use crate::tree::{DepRel, DepTree, NodeRef};

/// A deterministic corruption decision driven by an external random
/// stream (the caller supplies uniformly random `u64`s; the user-study
/// crate feeds these from its seeded `rand` RNG so experiments are
/// reproducible).
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability that a parse gets corrupted at all.
    pub corruption_rate: f64,
}

impl Default for NoiseConfig {
    /// Calibrated so that the *surviving* mis-parses — corruptions that
    /// still pass NaLIX validation — land near the paper's observed
    /// share (8 of 120 correctly-specified queries ≈ 7%). Many injected
    /// corruptions are caught by validation and merely cost the user an
    /// iteration, so the raw rate is higher than 7%.
    fn default() -> Self {
        NoiseConfig {
            corruption_rate: 0.18,
        }
    }
}

/// Outcome of a corruption attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseOutcome {
    /// The tree was left intact.
    Clean,
    /// The node was re-attached to a different head.
    Corrupted {
        /// Which node moved.
        node: NodeRef,
        /// Its new head.
        new_head: NodeRef,
    },
}

/// Candidate nodes whose attachment can plausibly be corrupted: any
/// non-root node whose grandparent exists (so we can lift it) — this is
/// the "attached too high" error Minipar makes with conjunctions and
/// long post-modifier chains.
fn candidates(tree: &DepTree) -> Vec<(NodeRef, NodeRef)> {
    let mut out = Vec::new();
    for r in tree.refs() {
        let n = tree.node(r);
        // Don't move markers; moving content nodes (nouns, values,
        // phrases) is what changes query semantics.
        if matches!(
            n.rel,
            DepRel::Det | DepRel::Neg | DepRel::Root | DepRel::Dangling
        ) {
            continue;
        }
        if let Some(h) = n.head {
            if let Some(gh) = tree.node(h).head {
                out.push((r, gh));
            }
        }
    }
    out
}

/// Possibly corrupt `tree`. `r1` decides *whether* (compare against
/// `cfg.corruption_rate`), `r2` decides *which* candidate. Both are
/// uniform random `u64`s from the caller's seeded stream.
pub fn maybe_corrupt(tree: &mut DepTree, cfg: &NoiseConfig, r1: u64, r2: u64) -> NoiseOutcome {
    let p = r1 as f64 / u64::MAX as f64;
    if p >= cfg.corruption_rate {
        return NoiseOutcome::Clean;
    }
    let cands = candidates(tree);
    if cands.is_empty() {
        return NoiseOutcome::Clean;
    }
    let (node, new_head) = cands[(r2 % cands.len() as u64) as usize];
    tree.reattach(node, new_head);
    debug_assert!(tree.check_invariants().is_ok());
    NoiseOutcome::Corrupted { node, new_head }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sample() -> DepTree {
        parse("Return the title and the authors of every book.").unwrap()
    }

    #[test]
    fn zero_rate_never_corrupts() {
        let mut t = sample();
        let cfg = NoiseConfig {
            corruption_rate: 0.0,
        };
        for r in 0..100u64 {
            assert_eq!(
                maybe_corrupt(&mut t, &cfg, r.wrapping_mul(0x9E3779B9), r),
                NoiseOutcome::Clean
            );
        }
    }

    #[test]
    fn full_rate_always_corrupts_when_possible() {
        let cfg = NoiseConfig {
            corruption_rate: 1.0,
        };
        let mut t = sample();
        let out = maybe_corrupt(&mut t, &cfg, 0, 3);
        assert!(matches!(out, NoiseOutcome::Corrupted { .. }));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn corruption_changes_structure() {
        let cfg = NoiseConfig {
            corruption_rate: 1.0,
        };
        let clean = sample();
        let mut t = sample();
        let out = maybe_corrupt(&mut t, &cfg, 0, 1);
        if let NoiseOutcome::Corrupted { node, .. } = out {
            assert_ne!(clean.node(node).head, t.node(node).head);
        } else {
            panic!("expected corruption");
        }
    }

    #[test]
    fn corrupted_tree_keeps_invariants_for_many_choices() {
        let cfg = NoiseConfig {
            corruption_rate: 1.0,
        };
        for r2 in 0..50u64 {
            let mut t = sample();
            maybe_corrupt(&mut t, &cfg, 0, r2);
            assert!(t.check_invariants().is_ok(), "r2={r2}");
        }
    }

    #[test]
    fn single_node_trees_stay_clean() {
        let mut t = parse("Return books").unwrap();
        // Few candidates; may or may not corrupt, but must not panic.
        let cfg = NoiseConfig {
            corruption_rate: 1.0,
        };
        let _ = maybe_corrupt(&mut t, &cfg, 0, 0);
        assert!(t.check_invariants().is_ok());
    }
}
