//! Sentence tokenisation.
//!
//! Splits a query sentence into word tokens, keeping quoted strings
//! ("Ron Howard", 'XML') as single tokens, recognising numbers, and
//! recording each token's position for the attachment rule (Def. 7).

use std::fmt;

/// Raw token kinds, before POS tagging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawKind {
    /// An ordinary word.
    Word,
    /// A quoted string (quotes stripped).
    Quoted,
    /// A number.
    Number,
    /// A comma (clause separator; other punctuation is dropped).
    Comma,
}

/// A raw token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawToken {
    /// Surface text (quotes stripped for `Quoted`).
    pub text: String,
    /// Token kind.
    pub kind: RawKind,
    /// Word index in the sentence (commas share the index of the next
    /// word so merged phrases stay contiguous).
    pub position: usize,
}

impl fmt::Display for RawToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RawKind::Quoted => write!(f, "\"{}\"", self.text),
            _ => f.write_str(&self.text),
        }
    }
}

/// Errors from tokenisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizeError {
    /// Description.
    pub message: String,
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tokenize error: {}", self.message)
    }
}

impl std::error::Error for TokenizeError {}

/// Tokenise a sentence.
pub fn tokenize(input: &str) -> Result<Vec<RawToken>, TokenizeError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut position = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            // All Unicode whitespace (NBSP, ideographic space, …), not
            // just the ASCII four: pasted questions carry these often.
            _ if c.is_whitespace() => i += 1,
            '"' | '\u{201C}' | '\u{2018}' => {
                let close = match c {
                    '"' => '"',
                    '\u{201C}' => '\u{201D}',
                    _ => '\u{2019}',
                };
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != close {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(TokenizeError {
                        message: "unterminated quotation".into(),
                    });
                }
                out.push(RawToken {
                    text: chars[start..j].iter().collect(),
                    kind: RawKind::Quoted,
                    position,
                });
                position += 1;
                i = j + 1;
            }
            '\'' => {
                // Single quote: a quoted value only when it does not look
                // like an apostrophe inside a word (we are before a word
                // character run here only when at word start).
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(TokenizeError {
                        message: "unterminated quotation".into(),
                    });
                }
                out.push(RawToken {
                    text: chars[start..j].iter().collect(),
                    kind: RawKind::Quoted,
                    position,
                });
                position += 1;
                i = j + 1;
            }
            ',' => {
                out.push(RawToken {
                    text: ",".into(),
                    kind: RawKind::Comma,
                    position,
                });
                i += 1;
            }
            '.' | '?' | '!' | ';' | ':' => i += 1, // sentence punctuation dropped
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    j += 1;
                }
                // Trailing period is sentence punctuation, not decimal.
                let mut text: String = chars[start..j].iter().collect();
                while text.ends_with('.') {
                    text.pop();
                    j -= 1;
                    // Put the period back for the outer loop to drop.
                }
                out.push(RawToken {
                    text,
                    kind: RawKind::Number,
                    position,
                });
                position += 1;
                i = j.max(start + 1);
            }
            _ if c.is_alphabetic() => {
                let start = i;
                let mut j = i;
                // An apostrophe (straight or typographic, U+2019) stays
                // inside a word only when flanked by letters: O'Reilly,
                // O’Reilly.
                while j < chars.len()
                    && (chars[j].is_alphanumeric()
                        || chars[j] == '-'
                        || chars[j] == '_'
                        || ((chars[j] == '\'' || chars[j] == '\u{2019}')
                            && j + 1 < chars.len()
                            && chars[j + 1].is_alphabetic()))
                {
                    j += 1;
                }
                out.push(RawToken {
                    // Typographic apostrophes normalise to ASCII so
                    // lexicon lookups and value matches see one form.
                    text: chars[start..j]
                        .iter()
                        .map(|&ch| if ch == '\u{2019}' { '\'' } else { ch })
                        .collect(),
                    kind: RawKind::Word,
                    position,
                });
                position += 1;
                i = j;
            }
            other => {
                return Err(TokenizeError {
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    let reg = obs::global();
    reg.add(obs::Counter::TokenizerCalls, 1);
    reg.add(obs::Counter::Tokens, out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(input: &str) -> Vec<String> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn splits_simple_sentence() {
        assert_eq!(
            words("Return the title of each movie."),
            vec!["Return", "the", "title", "of", "each", "movie"]
        );
    }

    #[test]
    fn keeps_quoted_strings_whole() {
        let t = tokenize("Find movies directed by \"Ron Howard\".").unwrap();
        let q = t.iter().find(|t| t.kind == RawKind::Quoted).unwrap();
        assert_eq!(q.text, "Ron Howard");
    }

    #[test]
    fn single_quotes_work() {
        let t = tokenize("titles that contain 'XML'").unwrap();
        let q = t.iter().find(|t| t.kind == RawKind::Quoted).unwrap();
        assert_eq!(q.text, "XML");
    }

    #[test]
    fn curly_quotes_work() {
        let t = tokenize("movies by \u{201C}Ron Howard\u{201D}").unwrap();
        let q = t.iter().find(|t| t.kind == RawKind::Quoted).unwrap();
        assert_eq!(q.text, "Ron Howard");
    }

    #[test]
    fn numbers_are_tokens() {
        let t = tokenize("published after 1991.").unwrap();
        let n = t.iter().find(|t| t.kind == RawKind::Number).unwrap();
        assert_eq!(n.text, "1991");
    }

    #[test]
    fn decimal_numbers() {
        let t = tokenize("price less than 65.95").unwrap();
        let n = t.iter().find(|t| t.kind == RawKind::Number).unwrap();
        assert_eq!(n.text, "65.95");
    }

    #[test]
    fn hyphenated_words_stay_whole() {
        assert_eq!(
            words("published by Addison-Wesley"),
            vec!["published", "by", "Addison-Wesley"]
        );
    }

    #[test]
    fn apostrophes_inside_words() {
        assert_eq!(words("O'Reilly books"), vec!["O'Reilly", "books"]);
    }

    #[test]
    fn unicode_whitespace_separates() {
        assert_eq!(
            words("find\u{00A0}all\u{2009}the\u{3000}movies"),
            vec!["find", "all", "the", "movies"]
        );
    }

    #[test]
    fn curly_apostrophe_stays_in_word_and_normalises() {
        assert_eq!(words("O\u{2019}Reilly books"), vec!["O'Reilly", "books"]);
    }

    #[test]
    fn stray_symbol_is_an_error_not_a_panic() {
        assert!(tokenize("movies \u{2026} by year").is_err());
    }

    #[test]
    fn commas_are_kept() {
        let t = tokenize("Return every director, where it works").unwrap();
        assert!(t.iter().any(|t| t.kind == RawKind::Comma));
    }

    #[test]
    fn positions_increase() {
        let t = tokenize("Return the title").unwrap();
        let p: Vec<usize> = t.iter().map(|t| t.position).collect();
        assert_eq!(p, vec![0, 1, 2]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(tokenize("find \"Ron").is_err());
    }
}
