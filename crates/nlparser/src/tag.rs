//! POS tagging, multi-word phrase merging, and proper-noun merging.
//!
//! Output is the linear sequence the dependency grammar consumes: each
//! element is either a tagged (possibly multi-word) token or a comma.

use crate::lexicon::{self, PhraseKind, PHRASES};
use crate::tokenize::{RawKind, RawToken};
use crate::tree::Pos;

/// A tagged token ready for parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Word {
    /// Surface text (original casing; multi-word for merged phrases,
    /// merged proper nouns and quoted strings).
    pub text: String,
    /// Normalised lemma (lower-case; singular for nouns, base form for
    /// verbs, canonical phrase for merged phrases, digit string for
    /// number words).
    pub lemma: String,
    /// Category.
    pub pos: Pos,
    /// Position of the first underlying word in the sentence.
    pub position: usize,
}

/// One element of the tagged stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Tagged {
    /// A token.
    Word(Word),
    /// A comma at the given position.
    Comma(usize),
}

use crate::lexicon::NUMBER_WORDS;

/// Tag a raw token stream.
pub fn tag(raw: &[RawToken]) -> Vec<Tagged> {
    let merged = merge_phrases(raw);
    let tagged = tag_tokens(&merged);
    merge_proper_runs(tagged)
}

/// Intermediate item after phrase merging.
#[derive(Debug, Clone)]
enum Merged {
    Raw(RawToken),
    Phrase {
        surface: String,
        lemma: String,
        kind: PhraseKind,
        position: usize,
    },
}

fn merge_phrases(raw: &[RawToken]) -> Vec<Merged> {
    // Longest-first phrase table.
    let mut table: Vec<(Vec<String>, &str, PhraseKind)> = PHRASES
        .iter()
        .map(|(surface, lemma, kind)| {
            (
                surface.split(' ').map(str::to_owned).collect(),
                *lemma,
                *kind,
            )
        })
        .collect();
    table.sort_by_key(|(ws, _, _)| std::cmp::Reverse(ws.len()));

    let mut out = Vec::new();
    let mut i = 0;
    'outer: while i < raw.len() {
        if raw[i].kind == RawKind::Word {
            for (words, lemma, kind) in &table {
                if i + words.len() <= raw.len() {
                    let matches = words.iter().enumerate().all(|(k, w)| {
                        raw[i + k].kind == RawKind::Word && raw[i + k].text.to_lowercase() == *w
                    });
                    if matches {
                        let surface = raw[i..i + words.len()]
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect::<Vec<_>>()
                            .join(" ");
                        out.push(Merged::Phrase {
                            surface,
                            lemma: (*lemma).to_owned(),
                            kind: *kind,
                            position: raw[i].position,
                        });
                        i += words.len();
                        continue 'outer;
                    }
                }
            }
        }
        out.push(Merged::Raw(raw[i].clone()));
        i += 1;
    }
    out
}

fn tag_tokens(merged: &[Merged]) -> Vec<Tagged> {
    let mut out = Vec::new();
    for (idx, m) in merged.iter().enumerate() {
        match m {
            Merged::Phrase {
                surface,
                lemma,
                kind,
                position,
            } => {
                let pos = match kind {
                    PhraseKind::Op => Pos::OpPhrase,
                    PhraseKind::Func => Pos::FuncPhrase,
                    PhraseKind::Order => Pos::OrderPhrase,
                };
                out.push(Tagged::Word(Word {
                    text: surface.clone(),
                    lemma: lemma.clone(),
                    pos,
                    position: *position,
                }));
            }
            Merged::Raw(t) => match t.kind {
                RawKind::Comma => out.push(Tagged::Comma(t.position)),
                RawKind::Quoted => out.push(Tagged::Word(Word {
                    text: t.text.clone(),
                    lemma: t.text.clone(),
                    pos: Pos::Quoted,
                    position: t.position,
                })),
                RawKind::Number => out.push(Tagged::Word(Word {
                    text: t.text.clone(),
                    lemma: t.text.clone(),
                    pos: Pos::Number,
                    position: t.position,
                })),
                RawKind::Word => {
                    let is_first = idx == 0;
                    out.push(Tagged::Word(tag_word(&t.text, t.position, is_first)));
                }
            },
        }
    }
    out
}

fn tag_word(text: &str, position: usize, sentence_initial: bool) -> Word {
    let lower = text.to_lowercase();
    let mk = |pos: Pos, lemma: String| Word {
        text: text.to_owned(),
        lemma,
        pos,
        position,
    };
    if let Some((_, digits)) = NUMBER_WORDS.iter().find(|(w, _)| *w == lower) {
        return mk(Pos::Number, (*digits).to_owned());
    }
    if sentence_initial && lexicon::is_wh_word(&lower) {
        return mk(Pos::Wh, lower);
    }
    if sentence_initial && lexicon::is_command_verb(&lower) {
        return mk(Pos::Verb, lexicon::lemmatize_verb(&lower));
    }
    if lexicon::is_copula(&lower) || lexicon::is_auxiliary(&lower) {
        return mk(Pos::Aux, lexicon::lemmatize_verb(&lower));
    }
    if lower == "not" || lower == "no" {
        return mk(Pos::Neg, "not".to_owned());
    }
    if lexicon::is_article(&lower) {
        return mk(Pos::Det, lower);
    }
    if lexicon::is_quantifier(&lower) {
        return mk(Pos::Quant, lower);
    }
    if lower == "and" || lower == "or" {
        return mk(Pos::Conj, lower);
    }
    if lexicon::is_subordinator(&lower) {
        return mk(Pos::Subord, lower);
    }
    if lexicon::is_preposition(&lower) {
        return mk(Pos::Prep, lower);
    }
    if lexicon::is_pronoun(&lower) {
        return mk(Pos::Pronoun, lower);
    }
    if lexicon::is_adjective(&lower) {
        return mk(Pos::Adj, lower);
    }
    if lexicon::is_clause_verb(&lower) {
        return mk(Pos::Verb, lexicon::lemmatize_verb(&lower));
    }
    if lexicon::is_command_verb(&lower) {
        return mk(Pos::Verb, lexicon::lemmatize_verb(&lower));
    }
    if lexicon::is_participle(&lower) {
        return mk(Pos::Participle, lower);
    }
    // Capitalised non-initial unknown word: proper noun.
    if !sentence_initial && text.chars().next().is_some_and(char::is_uppercase) {
        return mk(Pos::Proper, text.to_owned());
    }
    // Everything else is a common noun.
    mk(Pos::Noun, lexicon::lemmatize_noun(&lower))
}

fn merge_proper_runs(tagged: Vec<Tagged>) -> Vec<Tagged> {
    let mut out: Vec<Tagged> = Vec::with_capacity(tagged.len());
    for t in tagged {
        if let Tagged::Word(w) = &t {
            if w.pos == Pos::Proper {
                if let Some(Tagged::Word(prev)) = out.last_mut() {
                    if prev.pos == Pos::Proper {
                        prev.text.push(' ');
                        prev.text.push_str(&w.text);
                        prev.lemma = prev.text.clone();
                        continue;
                    }
                }
            }
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn tag_str(s: &str) -> Vec<Tagged> {
        tag(&tokenize(s).unwrap())
    }

    fn word_at(tags: &[Tagged], i: usize) -> &Word {
        match &tags[i] {
            Tagged::Word(w) => w,
            Tagged::Comma(_) => panic!("comma at {i}"),
        }
    }

    #[test]
    fn tags_imperative() {
        let t = tag_str("Return the title of each movie");
        assert_eq!(word_at(&t, 0).pos, Pos::Verb);
        assert_eq!(word_at(&t, 0).lemma, "return");
        assert_eq!(word_at(&t, 1).pos, Pos::Det);
        assert_eq!(word_at(&t, 2).pos, Pos::Noun);
        assert_eq!(word_at(&t, 3).pos, Pos::Prep);
        assert_eq!(word_at(&t, 4).pos, Pos::Quant);
        assert_eq!(word_at(&t, 5).lemma, "movie");
    }

    #[test]
    fn merges_function_phrase() {
        let t = tag_str("the number of movies");
        assert_eq!(word_at(&t, 0).pos, Pos::FuncPhrase);
        assert_eq!(word_at(&t, 0).lemma, "the number of");
        assert_eq!(word_at(&t, 1).lemma, "movie");
    }

    #[test]
    fn longest_phrase_wins() {
        let t = tag_str("the total number of movies");
        assert_eq!(word_at(&t, 0).lemma, "the total number of");
    }

    #[test]
    fn merges_operator_phrase() {
        let t = tag_str("is the same as");
        assert_eq!(word_at(&t, 0).pos, Pos::Aux);
        assert_eq!(word_at(&t, 1).pos, Pos::OpPhrase);
        assert_eq!(word_at(&t, 1).lemma, "the same as");
    }

    #[test]
    fn merges_proper_noun_runs() {
        let t = tag_str("directed by Ron Howard");
        let last = word_at(&t, 2);
        assert_eq!(last.pos, Pos::Proper);
        assert_eq!(last.text, "Ron Howard");
    }

    #[test]
    fn quoted_values_stay_quoted() {
        let t = tag_str("contains \"Gone with the Wind\"");
        let q = word_at(&t, 1);
        assert_eq!(q.pos, Pos::Quoted);
        assert_eq!(q.text, "Gone with the Wind");
    }

    #[test]
    fn number_words_become_digits() {
        let t = tag_str("at least one author");
        assert_eq!(word_at(&t, 0).pos, Pos::OpPhrase);
        assert_eq!(word_at(&t, 1).pos, Pos::Number);
        assert_eq!(word_at(&t, 1).lemma, "1");
    }

    #[test]
    fn wh_word_initial() {
        let t = tag_str("What is the title");
        assert_eq!(word_at(&t, 0).pos, Pos::Wh);
    }

    #[test]
    fn who_is_subordinator_mid_sentence() {
        let t = tag_str("Return every director who directed movies");
        let w = t
            .iter()
            .filter_map(|t| match t {
                Tagged::Word(w) => Some(w),
                _ => None,
            })
            .find(|w| w.lemma == "who")
            .unwrap();
        assert_eq!(w.pos, Pos::Subord);
    }

    #[test]
    fn participles_detected() {
        let t = tag_str("movies directed by someone");
        assert_eq!(word_at(&t, 1).pos, Pos::Participle);
    }

    #[test]
    fn nouns_are_lemmatised() {
        let t = tag_str("Return all titles");
        assert_eq!(word_at(&t, 2).lemma, "title");
    }

    #[test]
    fn ordering_phrases() {
        let t = tag_str("sorted by title");
        assert_eq!(word_at(&t, 0).pos, Pos::OrderPhrase);
        let t = tag_str("in alphabetical order");
        assert_eq!(word_at(&t, 0).pos, Pos::OrderPhrase);
    }

    #[test]
    fn negation() {
        let t = tag_str("is not the same as");
        assert_eq!(word_at(&t, 1).pos, Pos::Neg);
    }

    #[test]
    fn commas_preserved() {
        let t = tag_str("Return every director, where movies exist");
        assert!(t.iter().any(|x| matches!(x, Tagged::Comma(_))));
    }

    #[test]
    fn addison_wesley_is_proper() {
        let t = tag_str("published by Addison-Wesley");
        assert_eq!(word_at(&t, 2).pos, Pos::Proper);
        assert_eq!(word_at(&t, 2).text, "Addison-Wesley");
    }
}
