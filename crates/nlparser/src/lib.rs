#![warn(missing_docs)]
// First stage of the NL→answer path: any input string — multibyte,
// truncated, adversarial — must come back as `Ok(tree)` or a
// `ParseFailure` naming the offending word, never a panic (paper
// Sec. 4: every failure produces reformulation feedback).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # nlparser — a dependency parser for database-query English
//!
//! This crate is the **Minipar substitute** of the NaLIX reproduction.
//! The paper feeds every user query through the Minipar dependency
//! parser and consumes only the resulting *dependency tree*; NaLIX's own
//! contribution begins at token classification. Minipar is closed-source
//! and unavailable, so we implement a rule-based dependency parser
//! specialised to the query-English the paper's evaluation exercises:
//!
//! - imperatives ("Return …", "Find …", "List …") and wh-questions;
//! - noun phrases with determiners, quantifiers, pre-modifiers,
//!   appositions ("director Ron Howard"), and quoted or proper-noun
//!   values;
//! - prepositional attachment ("the title **of** each movie");
//! - participial post-modifiers ("movies **directed by** Ron Howard",
//!   "books **published by** Addison-Wesley **after** 1991");
//! - relative clauses ("titles **that contain** 'XML'", "books **that
//!   have** an author");
//! - subordinate *where*-clauses with copular and comparative predicates
//!   ("…, where the number of movies directed by the director **is the
//!   same as** the number of movies directed by Ron Howard");
//! - coordination ("the title **and** the authors");
//! - sorting phrases ("**sorted by** title", "**in alphabetical
//!   order**").
//!
//! Multi-word operator and function phrases ("the same as", "the number
//! of", "greater than", "at least") are merged into single tree nodes up
//! front — Minipar leaves them as separate word nodes and NaLIX's
//! classifier re-assembles them; merging earlier is equivalent and far
//! simpler, and the classified trees come out identical to the paper's
//! Figures 2, 3 and 10 (asserted by golden tests in crate `nalix`).
//!
//! The [`noise`] module injects seeded attachment errors to reproduce
//! Minipar's imperfect accuracy (~88% precision / ~80% recall on
//! dependencies, paper footnote 9) for the Table 7 experiment.
//!
//! ```
//! use nlparser::parse;
//!
//! let tree = parse("Return the title of each movie.").unwrap();
//! let root = tree.root();
//! assert_eq!(tree.node(root).lemma, "return");
//! ```
//!
//! ## Observability
//!
//! [`tokenize`](tokenize::tokenize) and [`parse`](parse::parse) record
//! token/sentence counters to the process-wide
//! [`obs::global`] registry (this crate takes no registry parameter):
//! `tokens`, `tokenizer_calls`, `parsed_sentences`, `parse_failures`.
//! See `docs/OBSERVABILITY.md` in the repository root for the catalog.

pub mod lexicon;
pub mod noise;
pub mod parse;
pub mod tag;
pub mod tokenize;
pub mod tree;

pub use parse::{parse, ParseFailure};
pub use tree::{DepNode, DepRel, DepTree, NodeRef, Pos};
