//! Property tests for the study harness: the simulated participant's
//! bookkeeping must be consistent for any seed, and the metric
//! aggregation must stay within bounds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use userstudy::tasks::{TaskId, ALL_TASKS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seed, a NaLIX task run satisfies the structural
    /// invariants: the best index is in range, iterations equal the
    /// best index, time respects the cap, scores are in [0,1], and the
    /// run ends either passed or exhausted.
    #[test]
    fn task_run_invariants(seed in any::<u64>()) {
        let doc = xmldb::datasets::dblp::generate(&xmldb::datasets::dblp::DblpConfig::small());
        let nalix = nalix::Nalix::new(doc.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = userstudy::participant::Profile::sample(&mut rng);
        let noise = nlparser::noise::NoiseConfig { corruption_rate: 0.2 };
        for tid in [TaskId::Q1, TaskId::Q8, TaskId::Q10] {
            let task = tid.task();
            let run = userstudy::participant::run_nalix_task(
                &nalix,
                &task,
                &userstudy::phrasings::nl_pool(tid),
                &profile,
                &noise,
                &mut rng,
            );
            prop_assert!(!run.attempts.is_empty());
            prop_assert!(run.best < run.attempts.len());
            prop_assert_eq!(run.iterations, run.best);
            prop_assert!(run.total_time_s <= userstudy::participant::TIME_LIMIT_S + 1e-9);
            for a in &run.attempts {
                prop_assert!((0.0..=1.0).contains(&a.score.precision));
                prop_assert!((0.0..=1.0).contains(&a.score.recall));
                if !a.accepted {
                    prop_assert_eq!(a.score.precision, 0.0);
                }
            }
            // the run stops at the first passing attempt: no earlier
            // attempt may pass
            for a in &run.attempts[..run.attempts.len() - 1] {
                prop_assert!(
                    a.score.harmonic() < userstudy::participant::PASS_HM,
                    "{}", tid.label()
                );
            }
        }
    }

    /// Keyword runs share the invariants (and never reject).
    #[test]
    fn keyword_run_invariants(seed in any::<u64>()) {
        let doc = xmldb::datasets::dblp::generate(&xmldb::datasets::dblp::DblpConfig::small());
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = userstudy::participant::Profile::sample(&mut rng);
        for tid in ALL_TASKS {
            let task = tid.task();
            let run = userstudy::participant::run_keyword_task(
                &doc,
                &task,
                &userstudy::phrasings::keyword_pool(tid),
                &profile,
                &mut rng,
            );
            prop_assert!(!run.attempts.is_empty());
            prop_assert!(run.attempts.iter().all(|a| a.accepted));
            prop_assert!(run.best < run.attempts.len());
        }
    }

    /// Latin-square task orders are permutations for any participant
    /// index.
    #[test]
    fn latin_orders_are_permutations(p in 0usize..1000) {
        let mut o = userstudy::latin::task_order(p, 9);
        o.sort_unstable();
        prop_assert_eq!(o, (0..9).collect::<Vec<_>>());
    }
}
