//! The full experiment: 18 participants × 9 tasks × 2 interfaces,
//! Latin-square ordered, producing the paper's Figure 11, Figure 12 and
//! Table 7.

use crate::latin::task_order;
use crate::participant::{run_keyword_task, run_nalix_task, Profile, TaskRun};
use crate::phrasings::{keyword_pool, nl_pool, PoolKind};
use crate::tasks::{TaskId, ALL_TASKS};
use nalix::Nalix;
use nlparser::noise::NoiseConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xmldb::datasets::dblp::DblpConfig;
use xmldb::Document;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of participants (paper: 18).
    pub participants: usize,
    /// Master seed: equal seeds give byte-identical results.
    pub seed: u64,
    /// Corpus generator configuration.
    pub corpus: DblpConfig,
    /// Minipar error model.
    pub noise: NoiseConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            participants: 18,
            seed: 2006,
            corpus: DblpConfig::default(),
            noise: NoiseConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// A quick configuration for tests (small corpus, fewer people).
    pub fn quick() -> Self {
        ExperimentConfig {
            participants: 4,
            seed: 2006,
            corpus: DblpConfig::small(),
            noise: NoiseConfig::default(),
        }
    }
}

/// One row of Figure 11 (per task).
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Task.
    pub task: TaskId,
    /// Mean seconds to the best accepted query.
    pub avg_time_s: f64,
    /// Standard error of the mean time.
    pub se_time_s: f64,
    /// Mean number of iterations (0 = accepted first try).
    pub avg_iterations: f64,
    /// Standard error of the mean iterations.
    pub se_iterations: f64,
    /// Max iterations any participant needed.
    pub max_iterations: usize,
    /// Min iterations any participant needed.
    pub min_iterations: usize,
}

/// One row of Figure 12 (per task).
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Task.
    pub task: TaskId,
    /// NaLIX mean precision.
    pub nalix_p: f64,
    /// NaLIX mean recall.
    pub nalix_r: f64,
    /// Keyword-interface mean precision.
    pub keyword_p: f64,
    /// Keyword-interface mean recall.
    pub keyword_r: f64,
}

/// One row of Table 7.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Row label.
    pub label: &'static str,
    /// Mean precision over the row's query population.
    pub avg_precision: f64,
    /// Mean recall.
    pub avg_recall: f64,
    /// Population size.
    pub total_queries: usize,
}

/// All experiment outputs, plus raw runs for further analysis.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Figure 11 rows, in task order.
    pub fig11: Vec<Fig11Row>,
    /// Figure 12 rows, in task order.
    pub fig12: Vec<Fig12Row>,
    /// Table 7 rows: all / correctly specified / specified and parsed.
    pub table7: Vec<Table7Row>,
    /// Raw NaLIX runs, indexed `[participant][task-slot]`.
    pub nalix_runs: Vec<Vec<(TaskId, TaskRun)>>,
    /// Raw keyword runs.
    pub keyword_runs: Vec<Vec<(TaskId, TaskRun)>>,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_err(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

/// Run the whole study.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResults {
    let doc: Document = xmldb::datasets::dblp::generate(&cfg.corpus);
    // Record into the process-wide registry so the fig11/fig12 bins can
    // print a per-stage breakdown of the whole study afterwards.
    let nalix = Nalix::with_metrics(doc.clone(), nalix::obs::global_handle());

    let mut nalix_runs: Vec<Vec<(TaskId, TaskRun)>> = Vec::new();
    let mut keyword_runs: Vec<Vec<(TaskId, TaskRun)>> = Vec::new();

    for p in 0..cfg.participants {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(p as u64 * 7919));
        let profile = Profile::sample(&mut rng);
        let order = task_order(p, ALL_TASKS.len());
        // Within-subject: interface-block order alternates per
        // participant (random assignment in the paper).
        let mut nblock = Vec::new();
        let mut kblock = Vec::new();
        for &slot in &order {
            let tid = ALL_TASKS[slot];
            let task = tid.task();
            let nrun = run_nalix_task(&nalix, &task, &nl_pool(tid), &profile, &cfg.noise, &mut rng);
            nblock.push((tid, nrun));
            let krun = run_keyword_task(&doc, &task, &keyword_pool(tid), &profile, &mut rng);
            kblock.push((tid, krun));
        }
        nalix_runs.push(nblock);
        keyword_runs.push(kblock);
    }

    // ---- Figure 11 ----
    let mut fig11 = Vec::new();
    for tid in ALL_TASKS {
        let mut times = Vec::new();
        let mut iters = Vec::new();
        for pruns in &nalix_runs {
            for (t, run) in pruns {
                if *t == tid {
                    times.push(run.total_time_s);
                    iters.push(run.iterations as f64);
                }
            }
        }
        fig11.push(Fig11Row {
            task: tid,
            avg_time_s: mean(&times),
            se_time_s: std_err(&times),
            avg_iterations: mean(&iters),
            se_iterations: std_err(&iters),
            max_iterations: iters.iter().map(|&x| x as usize).max().unwrap_or(0),
            min_iterations: iters.iter().map(|&x| x as usize).min().unwrap_or(0),
        });
    }

    // ---- Figure 12 ----
    let mut fig12 = Vec::new();
    for tid in ALL_TASKS {
        let collect = |runs: &Vec<Vec<(TaskId, TaskRun)>>| -> (Vec<f64>, Vec<f64>) {
            let mut ps = Vec::new();
            let mut rs = Vec::new();
            for pruns in runs {
                for (t, run) in pruns {
                    if *t == tid {
                        let s = run.best_score();
                        ps.push(s.precision);
                        rs.push(s.recall);
                    }
                }
            }
            (ps, rs)
        };
        let (np, nr) = collect(&nalix_runs);
        let (kp, kr) = collect(&keyword_runs);
        fig12.push(Fig12Row {
            task: tid,
            nalix_p: mean(&np),
            nalix_r: mean(&nr),
            keyword_p: mean(&kp),
            keyword_r: mean(&kr),
        });
    }

    // ---- Table 7 ----
    // Population: the final (best) NaLIX query of every task run.
    let mut all_p = Vec::new();
    let mut all_r = Vec::new();
    let mut spec_p = Vec::new();
    let mut spec_r = Vec::new();
    let mut parsed_p = Vec::new();
    let mut parsed_r = Vec::new();
    for pruns in &nalix_runs {
        for (_, run) in pruns {
            let Some(best) = run.attempts.get(run.best) else {
                continue;
            };
            let s = best.score;
            all_p.push(s.precision);
            all_r.push(s.recall);
            let specified_correctly = best.kind == Some(PoolKind::Good);
            if specified_correctly {
                spec_p.push(s.precision);
                spec_r.push(s.recall);
                if !best.corrupted {
                    parsed_p.push(s.precision);
                    parsed_r.push(s.recall);
                }
            }
        }
    }
    let table7 = vec![
        Table7Row {
            label: "all queries",
            avg_precision: mean(&all_p),
            avg_recall: mean(&all_r),
            total_queries: all_p.len(),
        },
        Table7Row {
            label: "all queries specified correctly",
            avg_precision: mean(&spec_p),
            avg_recall: mean(&spec_r),
            total_queries: spec_p.len(),
        },
        Table7Row {
            label: "all queries specified and parsed correctly",
            avg_precision: mean(&parsed_p),
            avg_recall: mean(&parsed_r),
            total_queries: parsed_p.len(),
        },
    ];

    ExperimentResults {
        fig11,
        fig12,
        table7,
        nalix_runs,
        keyword_runs,
    }
}

impl ExperimentResults {
    /// Overall NaLIX precision/recall (the Fig. 12 caption numbers).
    pub fn overall_nalix(&self) -> (f64, f64) {
        let row = &self.table7[0];
        (row.avg_precision, row.avg_recall)
    }

    /// Simulated post-experiment satisfaction, 1–5.
    ///
    /// The paper reports "the average participants' level of
    /// satisfaction with NaLIX was 4.11 on a scale of 1 to 5". We model
    /// satisfaction as a linear penalty on the two frustrations the
    /// protocol can produce — revision effort and time — starting from
    /// a delighted 5: `5 − 0.8·(mean iterations) − (mean time − 50s)/60`,
    /// clamped to [1, 5]. The coefficients are a documented modelling
    /// choice, not a measurement.
    pub fn satisfaction(&self) -> f64 {
        let per_participant: Vec<f64> = self
            .nalix_runs
            .iter()
            .map(|runs| {
                let n = runs.len() as f64;
                let it = runs.iter().map(|(_, r)| r.iterations as f64).sum::<f64>() / n;
                let t = runs.iter().map(|(_, r)| r.total_time_s).sum::<f64>() / n;
                (5.0 - 0.8 * it - (t - 50.0).max(0.0) / 60.0).clamp(1.0, 5.0)
            })
            .collect();
        mean(&per_participant)
    }

    /// Mean iterations over all tasks.
    pub fn overall_iterations(&self) -> f64 {
        mean(
            &self
                .fig11
                .iter()
                .map(|r| r.avg_iterations)
                .collect::<Vec<_>>(),
        )
    }

    /// Render the three outputs as text tables (used by the bench
    /// binaries and EXPERIMENTS.md).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 11 — time and iterations per task (NaLIX, {} participants)",
            self.nalix_runs.len()
        );
        let _ = writeln!(
            out,
            "{:<5} {:>10} {:>8} {:>8} {:>6} {:>6}",
            "task", "avg time", "±se", "avg it", "max", "min"
        );
        for r in &self.fig11 {
            let _ = writeln!(
                out,
                "{:<5} {:>9.1}s {:>7.1} {:>8.2} {:>6} {:>6}",
                r.task.label(),
                r.avg_time_s,
                r.se_time_s,
                r.avg_iterations,
                r.max_iterations,
                r.min_iterations
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Figure 12 — precision / recall per task");
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>8} {:>8} {:>8}",
            "task", "NaLIX P", "NaLIX R", "kw P", "kw R"
        );
        for r in &self.fig12 {
            let _ = writeln!(
                out,
                "{:<5} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                r.task.label(),
                100.0 * r.nalix_p,
                100.0 * r.nalix_r,
                100.0 * r.keyword_p,
                100.0 * r.keyword_r
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Table 7 — average precision and recall");
        let _ = writeln!(
            out,
            "{:<45} {:>10} {:>10} {:>8}",
            "", "avg.prec", "avg.recall", "queries"
        );
        for r in &self.table7 {
            let _ = writeln!(
                out,
                "{:<45} {:>9.1}% {:>9.1}% {:>8}",
                r.label,
                100.0 * r.avg_precision,
                100.0 * r.avg_recall,
                r.total_queries
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared quick run — running the full study is the expensive
    /// part, so the assertions below share it.
    fn shared() -> &'static ExperimentResults {
        static CELL: OnceLock<ExperimentResults> = OnceLock::new();
        CELL.get_or_init(|| run_experiment(&ExperimentConfig::quick()))
    }

    #[test]
    fn quick_experiment_runs_deterministically() {
        let again = run_experiment(&ExperimentConfig::quick());
        assert_eq!(shared().render(), again.render());
    }

    #[test]
    fn quick_experiment_shapes() {
        let r = shared();
        assert_eq!(r.fig11.len(), 9);
        assert_eq!(r.fig12.len(), 9);
        assert_eq!(r.table7.len(), 3);
        assert_eq!(
            r.table7[0].total_queries,
            ExperimentConfig::quick().participants * 9
        );
        // population shrinks down the table
        assert!(r.table7[1].total_queries <= r.table7[0].total_queries);
        assert!(r.table7[2].total_queries <= r.table7[1].total_queries);
    }

    #[test]
    fn nalix_beats_keyword_on_every_task() {
        // Keyword search may legitimately *tie* on pure string-lookup
        // tasks (Q9); it must never win, and must lose clearly on
        // average (the paper's headline claim).
        let mut strict_wins = 0;
        for row in &shared().fig12 {
            let n = (row.nalix_p + row.nalix_r) / 2.0;
            let k = (row.keyword_p + row.keyword_r) / 2.0;
            assert!(
                n >= k - 1e-9,
                "{}: keyword must not beat NaLIX ({:.2} vs {:.2})",
                row.task.label(),
                n,
                k
            );
            if n > k + 0.05 {
                strict_wins += 1;
            }
        }
        assert!(strict_wins >= 5, "NaLIX should clearly win most tasks");
    }

    #[test]
    fn table7_monotone_quality() {
        let r = shared();
        // Filtering out mis-specified queries must not lower quality…
        assert!(r.table7[1].avg_precision >= r.table7[0].avg_precision - 1e-9);
        assert!(r.table7[1].avg_recall >= r.table7[0].avg_recall - 1e-9);
        // …and the fully-clean population must still beat "all
        // queries". Between rows 2 and 3 small wiggles are expected —
        // the paper's own Table 7 has recall dropping 97.8% → 97.6% —
        // because removing harmless mis-parses (that still scored 1.0)
        // can lower a near-ceiling mean.
        assert!(r.table7[2].avg_precision >= r.table7[0].avg_precision - 1e-9);
        assert!(r.table7[2].avg_recall >= r.table7[0].avg_recall - 1e-9);
        assert!((r.table7[2].avg_precision - r.table7[1].avg_precision).abs() <= 0.05);
        assert!((r.table7[2].avg_recall - r.table7[1].avg_recall).abs() <= 0.05);
    }

    #[test]
    fn different_seeds_differ() {
        let b = run_experiment(&ExperimentConfig {
            seed: 99,
            ..ExperimentConfig::quick()
        });
        assert_ne!(shared().render(), b.render());
    }

    #[test]
    fn satisfaction_is_in_scale_and_high() {
        let s = shared().satisfaction();
        assert!((1.0..=5.0).contains(&s));
        // the paper reports 4.11; the shape claim is "clearly satisfied"
        assert!(s >= 3.5, "satisfaction {s:.2}");
    }

    #[test]
    fn seconds_are_in_the_papers_band() {
        for row in &shared().fig11 {
            assert!(
                row.avg_time_s >= 40.0 && row.avg_time_s <= 300.0,
                "{}: {:.1}s",
                row.task.label(),
                row.avg_time_s
            );
        }
    }
}
