//! Orthogonal Latin squares for task ordering.
//!
//! "Within each block, each participant was asked to accomplish 9
//! search tasks in a random order determined by a pair of orthogonal 9
//! by 9 Latin Squares" (Sec. 5.1). For odd order n, the cyclic squares
//! `L_a[i][j] = (a·i + j) mod n` with `gcd(a, n) = gcd(b, n) =
//! gcd(a−b, n) = 1` are mutually orthogonal; for n = 9 we use a = 1,
//! b = 2.

/// An n×n Latin square: `rows[i][j]` is the task index for participant
/// slot `i` at position `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatinSquare {
    /// Order.
    pub n: usize,
    /// Row-major cells.
    pub rows: Vec<Vec<usize>>,
}

impl LatinSquare {
    /// The cyclic square `L[i][j] = (a·i + j) mod n`. Latin whenever
    /// `gcd(a, n) = 1`.
    pub fn cyclic(n: usize, a: usize) -> LatinSquare {
        let rows = (0..n)
            .map(|i| (0..n).map(|j| (a * i + j) % n).collect())
            .collect();
        LatinSquare { n, rows }
    }

    /// Is this a valid Latin square (each symbol once per row and
    /// column)?
    pub fn is_latin(&self) -> bool {
        let full: Vec<bool> = vec![true; self.n];
        for i in 0..self.n {
            let mut row = vec![false; self.n];
            let mut col = vec![false; self.n];
            for j in 0..self.n {
                row[self.rows[i][j]] = true;
                col[self.rows[j][i]] = true;
            }
            if row != full || col != full {
                return false;
            }
        }
        true
    }

    /// Are `self` and `other` orthogonal (all (a,b) cell pairs
    /// distinct)?
    pub fn orthogonal_to(&self, other: &LatinSquare) -> bool {
        if self.n != other.n {
            return false;
        }
        let mut seen = vec![false; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                let key = self.rows[i][j] * self.n + other.rows[i][j];
                if seen[key] {
                    return false;
                }
                seen[key] = true;
            }
        }
        true
    }
}

/// The task order for participant `p` over `n` tasks, drawn from the
/// orthogonal pair: participants 0..n use square A's rows, n..2n use
/// square B's, and further participants wrap around.
pub fn task_order(p: usize, n: usize) -> Vec<usize> {
    let a = LatinSquare::cyclic(n, 1);
    let b = LatinSquare::cyclic(n, 2);
    let which = (p / n) % 2;
    let row = p % n;
    if which == 0 {
        a.rows[row].clone()
    } else {
        b.rows[row].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_squares_are_latin() {
        assert!(LatinSquare::cyclic(9, 1).is_latin());
        assert!(LatinSquare::cyclic(9, 2).is_latin());
    }

    #[test]
    fn the_pair_is_orthogonal() {
        let a = LatinSquare::cyclic(9, 1);
        let b = LatinSquare::cyclic(9, 2);
        assert!(a.orthogonal_to(&b));
    }

    #[test]
    fn non_coprime_multiplier_is_not_latin() {
        assert!(!LatinSquare::cyclic(9, 3).is_latin());
    }

    #[test]
    fn task_order_is_a_permutation() {
        for p in 0..18 {
            let mut o = task_order(p, 9);
            o.sort();
            assert_eq!(o, (0..9).collect::<Vec<_>>(), "participant {p}");
        }
    }

    #[test]
    fn participants_get_distinct_orders_within_square() {
        let orders: Vec<Vec<usize>> = (0..9).map(|p| task_order(p, 9)).collect();
        for i in 0..9 {
            for j in i + 1..9 {
                assert_ne!(orders[i], orders[j]);
            }
        }
    }

    #[test]
    fn second_block_uses_other_square() {
        // Row 0 of both cyclic squares is the identity, so compare a
        // non-zero row.
        assert_ne!(task_order(1, 9), task_order(10, 9).clone());
    }
}
