//! Precision / recall metrics (paper Sec. 5.1, "Search Quality").
//!
//! "Since the expected results were sometimes complex, with multiple
//! elements (attributes) of interest, we considered each element and
//! attribute value as an independent value for the purposes of
//! precision and recall computation." Values are compared as normalised
//! strings, set-semantically. "Ordering of results was not considered
//! …, unless the task specifically asked the results be sorted" — for
//! sorted tasks, a longest-common-subsequence factor against the gold
//! key order scales both measures.

use std::collections::HashSet;

/// A precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrScore {
    /// Fraction of returned values that are correct.
    pub precision: f64,
    /// Fraction of expected values that were returned.
    pub recall: f64,
}

impl PrScore {
    /// The zero score.
    pub fn zero() -> Self {
        PrScore {
            precision: 0.0,
            recall: 0.0,
        }
    }

    /// Harmonic mean of precision and recall (the paper's passing
    /// criterion uses this at 0.5).
    pub fn harmonic(&self) -> f64 {
        harmonic_mean(self.precision, self.recall)
    }
}

/// Harmonic mean; zero when either input is zero.
pub fn harmonic_mean(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

fn normalise(v: &str) -> String {
    v.trim().to_lowercase()
}

/// Set-semantics precision/recall of `returned` against `expected`.
pub fn precision_recall(returned: &[String], expected: &[String]) -> PrScore {
    let ret: HashSet<String> = returned.iter().map(|v| normalise(v)).collect();
    let exp: HashSet<String> = expected.iter().map(|v| normalise(v)).collect();
    if ret.is_empty() && exp.is_empty() {
        return PrScore {
            precision: 1.0,
            recall: 1.0,
        };
    }
    if ret.is_empty() {
        return PrScore {
            precision: 0.0,
            recall: 0.0,
        };
    }
    let matched = ret.intersection(&exp).count();
    PrScore {
        precision: matched as f64 / ret.len() as f64,
        recall: if exp.is_empty() {
            0.0
        } else {
            matched as f64 / exp.len() as f64
        },
    }
}

/// Order credit for sorted tasks: the length of the longest common
/// subsequence between the returned key sequence and the gold (sorted)
/// key sequence, as a fraction of the gold length. 1.0 when the
/// returned keys appear in the requested order, lower as order degrades.
pub fn order_factor(returned_keys: &[String], gold_keys: &[String]) -> f64 {
    if gold_keys.is_empty() {
        return 1.0;
    }
    let a: Vec<String> = returned_keys.iter().map(|v| normalise(v)).collect();
    let b: Vec<String> = gold_keys.iter().map(|v| normalise(v)).collect();
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return 0.0;
    }
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m] as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn perfect_match() {
        let pr = precision_recall(&s(&["a", "b"]), &s(&["a", "b"]));
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.harmonic(), 1.0);
    }

    #[test]
    fn partial_recall() {
        // The paper's example: all right elements but 3 of 4 requested
        // attributes → recall 75%.
        let pr = precision_recall(&s(&["a", "b", "c"]), &s(&["a", "b", "c", "d"]));
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.75);
    }

    #[test]
    fn partial_precision() {
        let pr = precision_recall(&s(&["a", "b", "x", "y"]), &s(&["a", "b"]));
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn empty_returned_is_zero() {
        let pr = precision_recall(&[], &s(&["a"]));
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn both_empty_is_perfect() {
        let pr = precision_recall(&[], &[]);
        assert_eq!(pr.precision, 1.0);
    }

    #[test]
    fn normalisation_is_case_insensitive() {
        let pr = precision_recall(&s(&[" A "]), &s(&["a"]));
        assert_eq!(pr.precision, 1.0);
    }

    #[test]
    fn duplicates_collapse() {
        let pr = precision_recall(&s(&["a", "a", "a"]), &s(&["a"]));
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn harmonic_mean_properties() {
        assert_eq!(harmonic_mean(0.0, 1.0), 0.0);
        assert_eq!(harmonic_mean(1.0, 1.0), 1.0);
        assert!((harmonic_mean(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn order_factor_full_credit_when_sorted() {
        assert_eq!(
            order_factor(&s(&["a", "b", "c"]), &s(&["a", "b", "c"])),
            1.0
        );
    }

    #[test]
    fn order_factor_degrades_with_disorder() {
        let f = order_factor(&s(&["c", "b", "a"]), &s(&["a", "b", "c"]));
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn order_factor_empty_gold_is_neutral() {
        assert_eq!(order_factor(&s(&["x"]), &[]), 1.0);
    }

    #[test]
    fn order_factor_empty_returned_is_zero() {
        assert_eq!(order_factor(&[], &s(&["a"])), 0.0);
    }
}
