//! Multi-turn dialogue tasks: the conversational-session counterpart
//! of the single-shot study (docs/SESSIONS.md).
//!
//! Each task is a short dialogue whose later turns are anaphoric
//! ("Of those, …") or elliptical ("What about …?") follow-ups. Every
//! turn also carries the **stateless oracle** — the self-contained
//! stacked-constraint sentence a careful user would have typed — so
//! success is measured the same way as the main study: precision /
//! recall of the resolved turn's answers against the oracle's answers,
//! harmonic mean ≥ 0.5 to pass. Per-turn phrasing pools encode human
//! variation, including phrasings the follow-up detector does *not*
//! recognise (the conversational analogue of the study's rejected
//! phrasings); those turns fail and drag the success rate at that
//! depth below 100%, which is the honest number to report.

use nalix::{Nalix, PriorTurn};
use xmldb::datasets::bib::bib;
use xquery::EvalBudget;

use crate::metrics::precision_recall;

/// One turn of a dialogue task.
#[derive(Debug, Clone, Copy)]
pub struct DialogueTurn {
    /// The phrasings a participant may use for this turn; simulated
    /// participants cycle through the pool. Turn 1 pools are
    /// self-contained; later pools are follow-up phrasings.
    pub pool: &'static [&'static str],
    /// The stateless oracle sentence: what this turn *means* when
    /// spelled out in full. Gold answers are computed from it.
    pub oracle: &'static str,
}

/// One multi-turn dialogue task.
#[derive(Debug, Clone, Copy)]
pub struct DialogueTask {
    /// Display label.
    pub label: &'static str,
    /// The turns, in order.
    pub turns: &'static [DialogueTurn],
}

/// The dialogue pool, over the paper's bibliography corpus.
pub const DIALOGUE_TASKS: [DialogueTask; 3] = [
    DialogueTask {
        label: "D1 (author, then year, then other author)",
        turns: &[
            DialogueTurn {
                pool: &["List all the books written by Stevens."],
                oracle: "List all the books written by Stevens.",
            },
            DialogueTurn {
                pool: &[
                    "Of those, which were published after 1993?",
                    "Which of them were published after 1993?",
                    "And which of these were published after 1993?",
                ],
                oracle: "List all the books written by Stevens published after 1993.",
            },
            DialogueTurn {
                pool: &[
                    "What about by Suciu?",
                    "And what about by Suciu?",
                    "How about by Suciu?",
                ],
                oracle: "List all the books written by Suciu published after 1993.",
            },
        ],
    },
    DialogueTask {
        label: "D2 (year, then author refinement)",
        turns: &[
            DialogueTurn {
                pool: &["Find all the books published after 1991."],
                oracle: "Find all the books published after 1991.",
            },
            DialogueTurn {
                pool: &[
                    "Which of them were written by Buneman?",
                    "Of these, which were written by Buneman?",
                    // Not a recognised follow-up form: "ones" is not an
                    // anaphor the resolver handles, so this attempt
                    // fails — deliberate pool noise.
                    "The ones written by Buneman?",
                ],
                oracle: "Find all the books published after 1991 written by Buneman.",
            },
        ],
    },
    DialogueTask {
        label: "D3 (year, then author, then elliptical author swap)",
        turns: &[
            DialogueTurn {
                pool: &["Find all the books published after 1993."],
                oracle: "Find all the books published after 1993.",
            },
            DialogueTurn {
                pool: &[
                    "Of those, which were written by Stevens?",
                    "Which of those were written by Stevens?",
                ],
                oracle: "Find all the books published after 1993 written by Stevens.",
            },
            DialogueTurn {
                pool: &["What about by Suciu?"],
                oracle: "Find all the books published after 1993 written by Suciu.",
            },
        ],
    },
];

/// Success counts at one turn depth, pooled over tasks and
/// participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthStats {
    /// 1-based turn depth.
    pub depth: usize,
    /// Dialogue turns attempted at this depth.
    pub attempts: usize,
    /// Turns whose answers scored harmonic(precision, recall) ≥ 0.5
    /// against the stateless oracle.
    pub successes: usize,
}

impl DepthStats {
    /// Success rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// The dialogue study's result: success per turn depth.
#[derive(Debug, Clone)]
pub struct DialogueReport {
    /// Stats per depth, depth 1 first.
    pub per_depth: Vec<DepthStats>,
}

impl DialogueReport {
    /// A fixed-width table, for reports and EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::from("turn depth | attempts | successes | success rate\n");
        for d in &self.per_depth {
            out.push_str(&format!(
                "{:>10} | {:>8} | {:>9} | {:>11.0}%\n",
                d.depth,
                d.attempts,
                d.successes,
                d.rate() * 100.0
            ));
        }
        out
    }
}

/// Runs every dialogue task once per simulated participant
/// (`participants` many, each picking the `i`-th pool variant, modulo
/// pool size) over the bibliography corpus.
///
/// A failed turn does not abort the dialogue: the participant presses
/// on, and later follow-ups resolve against the last turn that *did*
/// succeed — exactly what a real session does after an error — so
/// failures can cascade to deeper turns, which the per-depth rates
/// make visible.
pub fn run_dialogue_study(participants: usize) -> DialogueReport {
    let nalix = Nalix::new(bib());
    let budget = EvalBudget::default();
    let max_depth = DIALOGUE_TASKS
        .iter()
        .map(|t| t.turns.len())
        .max()
        .unwrap_or(0);
    let mut per_depth: Vec<DepthStats> = (1..=max_depth)
        .map(|depth| DepthStats {
            depth,
            attempts: 0,
            successes: 0,
        })
        .collect();

    for task in &DIALOGUE_TASKS {
        for participant in 0..participants {
            let mut prior: Option<PriorTurn> = None;
            for (i, turn) in task.turns.iter().enumerate() {
                let question = turn.pool[participant % turn.pool.len()];
                let gold = nalix
                    .answer_full(turn.oracle, &budget)
                    .map(|a| a.values)
                    .unwrap_or_default();
                per_depth[i].attempts += 1;
                match nalix.answer_turn(question, prior.as_ref(), &budget) {
                    Ok(result) => {
                        if precision_recall(&result.answer.values, &gold).harmonic() >= 0.5 {
                            per_depth[i].successes += 1;
                        }
                        prior = Some(result.turn);
                    }
                    Err(_) => {
                        // No new context; the next turn resolves
                        // against the previous successful one.
                    }
                }
            }
        }
    }

    DialogueReport { per_depth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_oracle_sentence_is_accepted_stateless() {
        let nalix = Nalix::new(bib());
        let budget = EvalBudget::default();
        for task in &DIALOGUE_TASKS {
            for turn in task.turns {
                let a = nalix
                    .answer_full(turn.oracle, &budget)
                    .unwrap_or_else(|e| panic!("{}: {:?}: {e}", task.label, turn.oracle));
                assert!(!a.values.is_empty(), "{}: {:?}", task.label, turn.oracle);
            }
        }
    }

    #[test]
    fn depth_one_always_succeeds_and_depth_rates_are_honest() {
        let report = run_dialogue_study(3);
        assert_eq!(report.per_depth[0].rate(), 1.0, "{}", report.render());
        // Depth 2 contains one deliberately unrecognised phrasing
        // (D2's "The ones …"), so the rate is high but not perfect.
        let d2 = report.per_depth[1];
        assert!(d2.successes < d2.attempts, "{}", report.render());
        assert!(d2.rate() >= 0.6, "{}", report.render());
        // Recognised follow-up phrasings at depth 3 all resolve.
        let d3 = report.per_depth[2];
        assert_eq!(d3.successes, d3.attempts, "{}", report.render());
    }

    #[test]
    fn report_renders_every_depth() {
        let report = run_dialogue_study(2);
        let rendered = report.render();
        for d in &report.per_depth {
            assert!(rendered.contains(&format!("{:>10}", d.depth)), "{rendered}");
        }
    }
}
