//! The simulated participant: phrasing choice, feedback-driven
//! revision, and the timing model.
//!
//! What the human contributed in the paper's study — and what is
//! modelled here — is (a) *which* phrasing they try first, (b) how the
//! system's feedback steers their revision, and (c) how long reading,
//! thinking and typing take. Everything else (acceptance, translation,
//! result quality) is computed by the real pipeline.

use crate::metrics::{order_factor, precision_recall, PrScore};
use crate::phrasings::{Phrasing, PoolKind};
use crate::tasks::Task;
use keyword::KeywordEngine;
use nalix::{Nalix, Outcome};
use nlparser::noise::{maybe_corrupt, NoiseConfig, NoiseOutcome};
use rand::rngs::StdRng;
use rand::Rng;
use xmldb::Document;

/// Per-participant characteristics, drawn once per participant.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Typing speed, characters per second.
    pub typing_cps: f64,
    /// Time to read the task and compose the first phrasing (s).
    pub read_first_s: f64,
    /// Time to digest feedback and compose a revision (s).
    pub revise_think_s: f64,
    /// Time to review results / the error message (s).
    pub review_s: f64,
}

impl Profile {
    /// Sample a participant profile. Ranges are typical adult
    /// keyboard-user figures; they put the single-attempt task time in
    /// the 50–90 s band of the paper's Figure 11.
    pub fn sample(rng: &mut StdRng) -> Profile {
        Profile {
            typing_cps: rng.gen_range(2.5..5.5),
            read_first_s: rng.gen_range(21.0..35.0),
            revise_think_s: rng.gen_range(8.0..18.0),
            review_s: rng.gen_range(6.0..12.0),
        }
    }
}

/// One attempted query.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The sentence (or keyword string) submitted.
    pub text: String,
    /// Did the system accept it?
    pub accepted: bool,
    /// Pool label (None for keyword attempts).
    pub kind: Option<PoolKind>,
    /// Was the dependency parse corrupted by the noise model?
    pub corrupted: bool,
    /// Result quality against the task gold (zero when rejected).
    pub score: PrScore,
}

/// One task run (one participant, one interface, one task).
#[derive(Debug, Clone)]
pub struct TaskRun {
    /// All attempts in order.
    pub attempts: Vec<Attempt>,
    /// Index of the best attempt (the "final" query of the paper's
    /// metrics).
    pub best: usize,
    /// Iterations needed: index of the best attempt (0 = first try).
    pub iterations: usize,
    /// Total wall-clock time (s), capped at the 5-minute task limit.
    pub total_time_s: f64,
}

impl TaskRun {
    /// The score of the best attempt.
    pub fn best_score(&self) -> PrScore {
        self.attempts
            .get(self.best)
            .map(|a| a.score)
            .unwrap_or_else(PrScore::zero)
    }
}

/// The per-task time limit (s), from Sec. 5.1.
pub const TIME_LIMIT_S: f64 = 300.0;

/// The passing criterion on the harmonic mean, from Sec. 5.1.
pub const PASS_HM: f64 = 0.5;

/// Weighted sample without replacement. After each rejection the
/// feedback makes invalid-looking phrasings less attractive, modelled
/// by decaying Invalid weights per prior attempt.
fn pick(
    pool: &[Phrasing],
    used: &[bool],
    prior_attempts: usize,
    rng: &mut StdRng,
) -> Option<usize> {
    let decay = 0.55f64.powi(prior_attempts as i32);
    let weights: Vec<f64> = pool
        .iter()
        .enumerate()
        .map(|(i, ph)| {
            if used[i] {
                0.0
            } else if ph.kind == PoolKind::Invalid {
                ph.weight * decay
            } else {
                ph.weight
            }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if *w <= 0.0 {
            continue;
        }
        if x < *w {
            return Some(i);
        }
        x -= w;
    }
    weights.iter().position(|w| *w > 0.0)
}

/// Score a flat value list against a task's gold, applying the order
/// factor for sorted tasks.
pub fn score_values(task: &Task, doc: &Document, values: &[String]) -> PrScore {
    let gold = task.gold(doc);
    let mut pr = precision_recall(values, &gold);
    if task.sorted {
        let gold_keys = task.gold_sorted_keys(doc);
        let keyset: std::collections::HashSet<String> =
            gold_keys.iter().map(|k| k.trim().to_lowercase()).collect();
        let returned_keys: Vec<String> = values
            .iter()
            .filter(|v| keyset.contains(&v.trim().to_lowercase()))
            .cloned()
            .collect();
        let f = order_factor(&returned_keys, &gold_keys);
        pr.precision *= f;
        pr.recall *= f;
    }
    pr
}

/// Run one NaLIX task for one participant.
pub fn run_nalix_task(
    nalix: &Nalix,
    task: &Task,
    pool: &[Phrasing],
    profile: &Profile,
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> TaskRun {
    let doc = nalix.doc();
    let mut used = vec![false; pool.len()];
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut elapsed = 0.0f64;

    while let Some(i) = pick(pool, &used, attempts.len(), rng) {
        used[i] = true;
        let ph = &pool[i];

        // Think + type.
        elapsed += if attempts.is_empty() {
            profile.read_first_s
        } else {
            profile.revise_think_s
        };
        elapsed += ph.text.len() as f64 / profile.typing_cps;

        // Parse, corrupt (Minipar error model), translate, evaluate.
        let mut corrupted = false;
        let outcome = match nlparser::parse(ph.text) {
            Ok(mut dep) => {
                let out = maybe_corrupt(&mut dep, noise, rng.gen(), rng.gen());
                corrupted = matches!(out, NoiseOutcome::Corrupted { .. });
                nalix.query_tree(&dep)
            }
            Err(e) => Outcome::Rejected(nalix::Rejected {
                errors: vec![nalix::Feedback::error(
                    nalix::FeedbackKind::GrammarViolation { detail: e.message },
                )],
                warnings: vec![],
            }),
        };

        elapsed += profile.review_s;

        let (accepted, score) = match outcome {
            Outcome::Translated(t) => match nalix.execute(&t) {
                Ok(seq) => {
                    let values = nalix.flatten_values(&seq);
                    (true, score_values(task, doc, &values))
                }
                Err(_) => (false, PrScore::zero()),
            },
            Outcome::Rejected(_) => (false, PrScore::zero()),
        };
        attempts.push(Attempt {
            text: ph.text.to_owned(),
            accepted,
            kind: Some(ph.kind),
            corrupted,
            score,
        });

        if accepted && score.harmonic() >= PASS_HM {
            break;
        }
        if elapsed >= TIME_LIMIT_S {
            break;
        }
    }

    finish_run(attempts, elapsed)
}

/// Run one keyword-interface task for one participant.
pub fn run_keyword_task(
    doc: &Document,
    task: &Task,
    pool: &[&'static str],
    profile: &Profile,
    rng: &mut StdRng,
) -> TaskRun {
    let engine = KeywordEngine::new(doc);
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut elapsed = 0.0f64;
    // Keyword users try pool entries in order, with a small chance of
    // swapping the first two (habit variation).
    let mut order: Vec<usize> = (0..pool.len()).collect();
    if order.len() >= 2 && rng.gen_bool(0.3) {
        order.swap(0, 1);
    }
    for i in order {
        let q = pool[i];
        elapsed += if attempts.is_empty() {
            profile.read_first_s
        } else {
            profile.revise_think_s
        };
        elapsed += q.len() as f64 / profile.typing_cps;
        let hits = engine.search(q);
        let values = engine.answer_values(&hits);
        let score = score_values(task, doc, &values);
        elapsed += profile.review_s;
        attempts.push(Attempt {
            text: q.to_owned(),
            accepted: true,
            kind: None,
            corrupted: false,
            score,
        });
        if score.harmonic() >= PASS_HM || elapsed >= TIME_LIMIT_S {
            break;
        }
    }
    finish_run(attempts, elapsed)
}

fn finish_run(attempts: Vec<Attempt>, elapsed: f64) -> TaskRun {
    let best = attempts
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.score
                .harmonic()
                .partial_cmp(&b.score.harmonic())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    TaskRun {
        best,
        iterations: best,
        total_time_s: elapsed.min(TIME_LIMIT_S),
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phrasings::{keyword_pool, nl_pool};
    use crate::tasks::TaskId;
    use rand::SeedableRng;
    use xmldb::datasets::dblp::{generate, DblpConfig};

    fn setup() -> (Document, StdRng) {
        (generate(&DblpConfig::small()), StdRng::seed_from_u64(42))
    }

    #[test]
    fn profile_ranges() {
        let (_, mut rng) = setup();
        for _ in 0..50 {
            let p = Profile::sample(&mut rng);
            assert!((2.5..5.5).contains(&p.typing_cps));
            assert!((21.0..35.0).contains(&p.read_first_s));
        }
    }

    #[test]
    fn nalix_task_run_terminates_and_scores() {
        let (doc, mut rng) = setup();
        let nalix = Nalix::new(doc.clone());
        let profile = Profile::sample(&mut rng);
        let noise = NoiseConfig {
            corruption_rate: 0.0,
        };
        let task = TaskId::Q3.task();
        let run = run_nalix_task(
            &nalix,
            &task,
            &nl_pool(TaskId::Q3),
            &profile,
            &noise,
            &mut rng,
        );
        assert!(!run.attempts.is_empty());
        assert!(run.total_time_s > 0.0);
        assert!(run.best_score().harmonic() >= PASS_HM);
    }

    #[test]
    fn every_task_eventually_passes_without_noise() {
        let (doc, mut rng) = setup();
        let nalix = Nalix::new(doc.clone());
        let noise = NoiseConfig {
            corruption_rate: 0.0,
        };
        for t in crate::tasks::ALL_TASKS {
            let task = t.task();
            let profile = Profile::sample(&mut rng);
            let run = run_nalix_task(&nalix, &task, &nl_pool(t), &profile, &noise, &mut rng);
            assert!(
                run.best_score().harmonic() >= PASS_HM,
                "{}: hm={:.2} attempts={:?}",
                t.label(),
                run.best_score().harmonic(),
                run.attempts
                    .iter()
                    .map(|a| (&a.text, a.accepted))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn iterations_count_rejections() {
        let (doc, _) = setup();
        let nalix = Nalix::new(doc.clone());
        let noise = NoiseConfig {
            corruption_rate: 0.0,
        };
        // Run many seeds; whenever the first pick is Invalid, iterations
        // must be > 0.
        let mut saw_retry = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let profile = Profile::sample(&mut rng);
            let task = TaskId::Q10.task();
            let run = run_nalix_task(
                &nalix,
                &task,
                &nl_pool(TaskId::Q10),
                &profile,
                &noise,
                &mut rng,
            );
            if run.iterations > 0 {
                saw_retry = true;
                assert!(!run.attempts[0].accepted || run.attempts[0].score.harmonic() < PASS_HM);
            }
        }
        assert!(saw_retry, "Q10 pool should trigger retries for some seeds");
    }

    #[test]
    fn keyword_task_run_produces_scores() {
        let (doc, mut rng) = setup();
        let profile = Profile::sample(&mut rng);
        let task = TaskId::Q3.task();
        let run = run_keyword_task(&doc, &task, &keyword_pool(TaskId::Q3), &profile, &mut rng);
        assert!(!run.attempts.is_empty());
        // keyword search always "accepts"
        assert!(run.attempts.iter().all(|a| a.accepted));
    }

    #[test]
    fn keyword_fails_aggregation_task() {
        let (doc, mut rng) = setup();
        let profile = Profile::sample(&mut rng);
        let task = TaskId::Q10.task();
        let run = run_keyword_task(&doc, &task, &keyword_pool(TaskId::Q10), &profile, &mut rng);
        // On the tiny test corpus the result-page cap does not bite, so
        // keyword gets full recall by returning whole books — but its
        // precision must stay poor (it cannot compute a minimum). At
        // paper scale (see `cargo run -p bench --bin fig12`) the cap
        // collapses recall too.
        assert!(
            run.best_score().precision < 0.5,
            "keyword should not solve min-year-per-title: {:?}",
            run.best_score()
        );
    }

    #[test]
    fn noise_can_degrade_results() {
        let (doc, _) = setup();
        let nalix = Nalix::new(doc.clone());
        let noise = NoiseConfig {
            corruption_rate: 1.0,
        };
        let mut any_corrupted = false;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let profile = Profile::sample(&mut rng);
            let task = TaskId::Q3.task();
            let run = run_nalix_task(
                &nalix,
                &task,
                &nl_pool(TaskId::Q3),
                &profile,
                &noise,
                &mut rng,
            );
            any_corrupted |= run.attempts.iter().any(|a| a.corrupted);
        }
        assert!(any_corrupted);
    }

    #[test]
    fn time_is_capped() {
        let (doc, mut rng) = setup();
        let nalix = Nalix::new(doc.clone());
        let noise = NoiseConfig {
            corruption_rate: 0.0,
        };
        for t in crate::tasks::ALL_TASKS {
            let task = t.task();
            let profile = Profile::sample(&mut rng);
            let run = run_nalix_task(&nalix, &task, &nl_pool(t), &profile, &noise, &mut rng);
            assert!(run.total_time_s <= TIME_LIMIT_S + 1e-9);
        }
    }
}
