//! Per-task phrasing pools: the modelled human variation.
//!
//! Every entry is a genuine English sentence that is *actually run*
//! through the NaLIX pipeline. The `kind` label records what the entry
//! is **for** in the simulation:
//!
//! - [`PoolKind::Good`] — matches the task intent; NaLIX accepts it
//!   (asserted by tests in this module).
//! - [`PoolKind::Deviating`] — NaLIX accepts it, but it does not say
//!   quite what the task asked (the paper's example: "List books with
//!   title and authors" returns whole books). These populate the gap
//!   between Table 7's "all queries" and "correctly specified" rows.
//! - [`PoolKind::Invalid`] — NaLIX rejects it with feedback; choosing
//!   one costs the participant an iteration (Fig. 11).
//!
//! Weights model how likely a participant is to *start* with each
//! phrasing; after a rejection the feedback steers them (see
//! [`crate::participant`]).

use crate::tasks::TaskId;

/// What role a phrasing plays in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Accepted and intent-faithful.
    Good,
    /// Accepted but intent-deviating.
    Deviating,
    /// Rejected by validation.
    Invalid,
}

/// One candidate phrasing.
#[derive(Debug, Clone)]
pub struct Phrasing {
    /// The sentence as typed.
    pub text: &'static str,
    /// Its role.
    pub kind: PoolKind,
    /// First-attempt selection weight.
    pub weight: f64,
}

fn p(text: &'static str, kind: PoolKind, weight: f64) -> Phrasing {
    Phrasing { text, kind, weight }
}

/// The natural-language pool for a task.
pub fn nl_pool(task: TaskId) -> Vec<Phrasing> {
    use PoolKind::*;
    match task {
        TaskId::Q1 => vec![
            p(
                "Return the year and title of every book published by Addison-Wesley after 1991.",
                Good,
                0.40,
            ),
            p(
                "Return the title and the year of each book published by Addison-Wesley after 1991.",
                Good,
                0.20,
            ),
            p(
                "Return every book published by Addison-Wesley after 1991.",
                Deviating,
                0.22,
            ),
            p(
                "List books published by Addison-Wesley since 1991, including their year and title.",
                Invalid,
                0.10,
            ),
            p(
                "Show me the books put out by Addison-Wesley after 1991.",
                Invalid,
                0.05,
            ),
        ],
        TaskId::Q3 => vec![
            p(
                "Return the title and the authors of every book.",
                Good,
                0.45,
            ),
            p("Return the titles and authors of all books.", Good, 0.25),
            p("List books with title and authors.", Deviating, 0.22),
            p(
                "Return all the title author pairs of the books.",
                Invalid,
                0.04,
            ),
        ],
        TaskId::Q4 => vec![
            p(
                "Return the author and the titles of all books of the author.",
                Good,
                0.35,
            ),
            p(
                "For each author, return the author and the titles of all books of the author.",
                Good,
                0.25,
            ),
            p("Return the authors of all books.", Deviating, 0.22),
            p(
                "Return each author together with the titles of all books of the author.",
                Invalid,
                0.07,
            ),
        ],
        TaskId::Q6 => vec![
            p(
                "Return the title and the authors of every book that has an author.",
                Good,
                0.30,
            ),
            p(
                "Return the title and the authors of every book, where the number of authors of the book is at least 1.",
                Good,
                0.18,
            ),
            p("List books with title and authors.", Deviating, 0.20),
            // Accepted: "at least one author" becomes a (vacuous)
            // comparison on the author value, and the whole book is
            // returned — a deviation, not a rejection.
            p(
                "Return every book that has at least one author.",
                Deviating,
                0.20,
            ),
            p(
                "Return the title and the authors of every book having some author.",
                Invalid,
                0.12,
            ),
        ],
        TaskId::Q7 => vec![
            p(
                "Return the title and the year of every book published by Addison-Wesley after 1991, sorted by title.",
                Good,
                0.35,
            ),
            p(
                "Return the title and the year of every book published by Addison-Wesley after 1991, in alphabetical order.",
                Good,
                0.20,
            ),
            p(
                "Return the title and the year of every book published by Addison-Wesley after 1991.",
                Deviating,
                0.20,
            ),
            p(
                "Return the title and the year of every book published by Addison-Wesley after 1991, ordered alphabetically by title.",
                Invalid,
                0.15,
            ),
            p(
                "Sort the books published by Addison-Wesley after 1991 by title.",
                Invalid,
                0.10,
            ),
        ],
        TaskId::Q8 => vec![
            p(
                "Return the titles of books, where the author of the book contains \"Suciu\".",
                Good,
                0.35,
            ),
            p(
                "Find the titles of all books, where the author of the book contains \"Suciu\".",
                Good,
                0.20,
            ),
            p(
                "Find all books, where the author of the book contains \"Suciu\".",
                Deviating,
                0.25,
            ),
            p(
                "Find the titles of books whose author names include the string \"Suciu\".",
                Invalid,
                0.08,
            ),
        ],
        TaskId::Q9 => vec![
            p("Find all titles that contain \"XML\".", Good, 0.45),
            p("Return every title that contains \"XML\".", Good, 0.25),
            p(
                "Find all books with titles that contain \"XML\".",
                Deviating,
                0.18,
            ),
            p("Find all titles mentioning \"XML\".", Invalid, 0.05),
        ],
        TaskId::Q10 => vec![
            p(
                "Return the title of every book and the lowest year of the title.",
                Good,
                0.05,
            ),
            // Accepted, but without "book" it sweeps in article titles
            // too — precision loss.
            p(
                "Return the title and the lowest year of the title.",
                Deviating,
                0.04,
            ),
            p(
                "Return the lowest year for each title.",
                Deviating,
                0.06,
            ),
            p("Return the oldest year of every title.", Invalid, 0.16),
            p(
                "Return the first year of every edition of each book.",
                Invalid,
                0.15,
            ),
            p(
                "For every book title, return the year of its earliest edition.",
                Invalid,
                0.14,
            ),
            p(
                "Give the minimum publication year per book title.",
                Invalid,
                0.13,
            ),
            p(
                "Show the smallest year for all editions of each title.",
                Invalid,
                0.14,
            ),
            p(
                "Return the year of the oldest edition of every book.",
                Invalid,
                0.13,
            ),
            p("Return the minimal year of each title.", Invalid, 0.10),
            p(
                "Return the year of the earliest printing of each title.",
                Invalid,
                0.10,
            ),
        ],
        TaskId::Q11 => vec![
            p(
                "Return the title and the affiliation of the editor of every book.",
                Good,
                0.35,
            ),
            p(
                "Return the title of every book and the affiliation of the editor of the book.",
                Good,
                0.20,
            ),
            p(
                "For each book with an editor, return the title of the book and the affiliation of the editor.",
                Deviating,
                0.25,
            ),
            p(
                "Return the title and the editor affiliation for books edited by someone.",
                Invalid,
                0.08,
            ),
        ],
    }
}

/// The keyword-query pool for a task (tried in order of weight by the
/// simulated participant during the keyword-interface block).
pub fn keyword_pool(task: TaskId) -> Vec<&'static str> {
    match task {
        TaskId::Q1 => vec![
            "Addison-Wesley 1991 year title",
            "book Addison-Wesley year title",
            "Addison-Wesley book",
        ],
        TaskId::Q3 => vec!["book title author", "title author"],
        TaskId::Q4 => vec!["author title book", "author book"],
        TaskId::Q6 => vec!["book author title", "title author"],
        TaskId::Q7 => vec![
            "book title year Addison-Wesley",
            "Addison-Wesley title year sorted",
        ],
        TaskId::Q8 => vec!["Suciu title", "\"Suciu\" book title"],
        TaskId::Q9 => vec!["XML title", "title XML"],
        TaskId::Q10 => vec!["year title lowest", "minimum year book title", "year title"],
        TaskId::Q11 => vec!["editor affiliation title", "book editor affiliation"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::ALL_TASKS;
    use nalix::{Nalix, Outcome};
    use xmldb::datasets::dblp::{generate, DblpConfig};

    /// The load-bearing property of the pools: Good/Deviating entries
    /// are genuinely accepted by the full pipeline, Invalid entries are
    /// genuinely rejected.
    #[test]
    fn pool_labels_match_system_behaviour() {
        let doc = generate(&DblpConfig::small());
        let nalix = Nalix::new(doc.clone());
        for task in ALL_TASKS {
            for ph in nl_pool(task) {
                let out = nalix.query(ph.text);
                match ph.kind {
                    PoolKind::Good | PoolKind::Deviating => {
                        assert!(
                            out.is_translated(),
                            "{} should be ACCEPTED: {:?}\n{}",
                            task.label(),
                            match out {
                                Outcome::Rejected(r) =>
                                    r.errors.iter().map(|e| e.message()).collect::<Vec<_>>(),
                                _ => vec![],
                            },
                            ph.text
                        );
                    }
                    PoolKind::Invalid => {
                        assert!(
                            !out.is_translated(),
                            "{} should be REJECTED: {}",
                            task.label(),
                            ph.text
                        );
                    }
                }
            }
        }
    }

    /// Good phrasings must actually solve the task well (harmonic mean
    /// comfortably above the study's 0.5 passing criterion).
    #[test]
    fn good_phrasings_score_high() {
        let doc = generate(&DblpConfig::small());
        let nalix = Nalix::new(doc.clone());
        for task in ALL_TASKS {
            let gold = task.task().gold(&doc);
            for ph in nl_pool(task) {
                if ph.kind != PoolKind::Good {
                    continue;
                }
                let out = nalix.query(ph.text);
                let Outcome::Translated(t) = out else {
                    panic!("{}: {}", task.label(), ph.text)
                };
                let seq = nalix
                    .execute(&t)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", task.label(), ph.text));
                let values = nalix.flatten_values(&seq);
                let pr = crate::metrics::precision_recall(&values, &gold);
                assert!(
                    pr.harmonic() >= 0.8,
                    "{}: harmonic {:.2} (P={:.2} R={:.2})\n{}\nreturned={:?}\ngold={:?}",
                    task.label(),
                    pr.harmonic(),
                    pr.precision,
                    pr.recall,
                    ph.text,
                    &values[..values.len().min(12)],
                    &gold[..gold.len().min(12)]
                );
            }
        }
    }

    /// Deviating phrasings are accepted but imperfect — they must score
    /// below the Good ones (that is their role in Table 7), yet usually
    /// above the 0.5 pass bar.
    #[test]
    fn deviating_phrasings_score_lower_but_usable() {
        let doc = generate(&DblpConfig::small());
        let nalix = Nalix::new(doc.clone());
        for task in ALL_TASKS {
            for ph in nl_pool(task) {
                if ph.kind != PoolKind::Deviating {
                    continue;
                }
                let Outcome::Translated(t) = nalix.query(ph.text) else {
                    panic!("{}: {}", task.label(), ph.text)
                };
                let seq = nalix.execute(&t).unwrap();
                let values = nalix.flatten_values(&seq);
                // score_values applies the order factor, so the
                // unsorted Q7 variant scores below the sorted one.
                let task_rec = task.task();
                let pr = crate::participant::score_values(&task_rec, &doc, &values);
                assert!(
                    pr.harmonic() < 0.98,
                    "{}: deviating phrasing scores like a good one ({:.2}): {}",
                    task.label(),
                    pr.harmonic(),
                    ph.text
                );
                // An accepted-but-empty answer is allowed: the
                // participant sees zero results and revises, so such
                // entries behave like rejections for Fig. 11 while
                // still exercising the accept path.
                if pr.recall > 0.0 {
                    assert!(
                        pr.harmonic() > 0.2,
                        "{}: deviating phrasing is useless ({:.2}): {}",
                        task.label(),
                        pr.harmonic(),
                        ph.text
                    );
                }
            }
        }
    }

    #[test]
    fn every_task_has_enough_valid_phrasings() {
        for task in ALL_TASKS {
            let pool = nl_pool(task);
            let valid = pool.iter().filter(|p| p.kind != PoolKind::Invalid).count();
            assert!(valid >= 2, "{}", task.label());
            assert!(!keyword_pool(task).is_empty());
        }
    }

    #[test]
    fn weights_are_positive() {
        for task in ALL_TASKS {
            for ph in nl_pool(task) {
                assert!(ph.weight > 0.0);
            }
        }
    }
}
