//! The nine search tasks, adapted — like the paper — from the W3C
//! XQuery Use Cases "XMP" set to the DBLP corpus (`year` standing in
//! for `price`, per Sec. 5.1). Q2/Q5/Q12 and the first half of Q11 are
//! excluded exactly as in the paper (footnote 7).
//!
//! Each task computes its **gold answer** schema-aware, directly from
//! the document — the analogue of the paper's "correct schema-aware
//! XQuery" — so the experiment never compares against hand-maintained
//! constants.

use std::collections::{HashMap, HashSet};
use xmldb::{Document, NodeId};

/// Task identifiers, numbered as in the paper (= XMP query numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// Q1: year and title of Addison-Wesley books after 1991.
    Q1,
    /// Q3: title and authors of every book.
    Q3,
    /// Q4: each author with the titles of their books.
    Q4,
    /// Q6: title and authors of books having at least one author.
    Q6,
    /// Q7: Q1, sorted alphabetically by title.
    Q7,
    /// Q8: titles of books with an author matching "Suciu".
    Q8,
    /// Q9: all titles containing "XML".
    Q9,
    /// Q10: the minimum year for each book title.
    Q10,
    /// Q11: title and editor affiliation of books with an editor.
    Q11,
}

/// All nine, in paper order.
pub const ALL_TASKS: [TaskId; 9] = [
    TaskId::Q1,
    TaskId::Q3,
    TaskId::Q4,
    TaskId::Q6,
    TaskId::Q7,
    TaskId::Q8,
    TaskId::Q9,
    TaskId::Q10,
    TaskId::Q11,
];

/// A search task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Which task.
    pub id: TaskId,
    /// The instruction shown to (simulated) participants — the
    /// "elaborated form" of the XMP query.
    pub description: &'static str,
    /// Does the task require sorted output (Q7)?
    pub sorted: bool,
}

impl TaskId {
    /// Display label ("Q1" … "Q11").
    pub fn label(&self) -> &'static str {
        match self {
            TaskId::Q1 => "Q1",
            TaskId::Q3 => "Q3",
            TaskId::Q4 => "Q4",
            TaskId::Q6 => "Q6",
            TaskId::Q7 => "Q7",
            TaskId::Q8 => "Q8",
            TaskId::Q9 => "Q9",
            TaskId::Q10 => "Q10",
            TaskId::Q11 => "Q11",
        }
    }

    /// The task record.
    pub fn task(&self) -> Task {
        let (description, sorted) = match self {
            TaskId::Q1 => (
                "List the year and title of each book published by Addison-Wesley \
                 after 1991.",
                false,
            ),
            TaskId::Q3 => ("For each book, list the title and authors.", false),
            TaskId::Q4 => (
                "For each author, list the author's name and the titles of all \
                 books by that author.",
                false,
            ),
            TaskId::Q6 => (
                "For each book that has at least one author, list the title and \
                 the authors.",
                false,
            ),
            TaskId::Q7 => (
                "List the titles and years of all books published by \
                 Addison-Wesley after 1991, in alphabetic order of title.",
                true,
            ),
            TaskId::Q8 => (
                "Find the titles of the books in which one of the authors is \
                 named Suciu.",
                false,
            ),
            TaskId::Q9 => ("Find all titles that contain the word \"XML\".", false),
            TaskId::Q10 => (
                "For each book title, find the earliest (minimum) year among its \
                 editions.",
                false,
            ),
            TaskId::Q11 => (
                "For each book with an editor, give the title and the \
                 affiliation of the editor.",
                false,
            ),
        };
        Task {
            id: *self,
            description,
            sorted,
        }
    }
}

// ---------------------------------------------------------------------
// Gold answers (schema-aware)
// ---------------------------------------------------------------------

fn child_values(doc: &Document, node: NodeId, label: &str) -> Vec<String> {
    doc.element_children(node)
        .filter(|&c| doc.label(c) == label)
        .map(|c| doc.string_value(c))
        .collect()
}

fn books(doc: &Document) -> Vec<NodeId> {
    doc.nodes_labeled("book").to_vec()
}

impl Task {
    /// The expected value set against `doc`.
    pub fn gold(&self, doc: &Document) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        match self.id {
            TaskId::Q1 | TaskId::Q7 => {
                for b in books(doc) {
                    let publisher = child_values(doc, b, "publisher");
                    let year: Option<u32> = child_values(doc, b, "year")
                        .first()
                        .and_then(|y| y.parse().ok());
                    if publisher.iter().any(|p| p == "Addison-Wesley")
                        && year.is_some_and(|y| y > 1991)
                    {
                        out.extend(child_values(doc, b, "title"));
                        out.extend(child_values(doc, b, "year"));
                    }
                }
            }
            TaskId::Q3 => {
                for b in books(doc) {
                    out.extend(child_values(doc, b, "title"));
                    out.extend(child_values(doc, b, "author"));
                }
            }
            TaskId::Q4 | TaskId::Q6 => {
                for b in books(doc) {
                    let authors = child_values(doc, b, "author");
                    if !authors.is_empty() {
                        out.extend(child_values(doc, b, "title"));
                        out.extend(authors);
                    }
                }
            }
            TaskId::Q8 => {
                for b in books(doc) {
                    if child_values(doc, b, "author")
                        .iter()
                        .any(|a| a.contains("Suciu"))
                    {
                        out.extend(child_values(doc, b, "title"));
                    }
                }
            }
            TaskId::Q9 => {
                for &t in doc.nodes_labeled("title") {
                    let v = doc.string_value(t);
                    if v.contains("XML") {
                        out.push(v);
                    }
                }
            }
            TaskId::Q10 => {
                let mut min_year: HashMap<String, u32> = HashMap::new();
                for b in books(doc) {
                    let title = child_values(doc, b, "title")
                        .into_iter()
                        .next()
                        .unwrap_or_default();
                    let year: Option<u32> = child_values(doc, b, "year")
                        .first()
                        .and_then(|y| y.parse().ok());
                    if let Some(y) = year {
                        min_year
                            .entry(title)
                            .and_modify(|m| *m = (*m).min(y))
                            .or_insert(y);
                    }
                }
                for (title, y) in min_year {
                    out.push(title);
                    out.push(y.to_string());
                }
            }
            TaskId::Q11 => {
                for b in books(doc) {
                    let editors: Vec<NodeId> = doc
                        .element_children(b)
                        .filter(|&c| doc.label(c) == "editor")
                        .collect();
                    if editors.is_empty() {
                        continue;
                    }
                    out.extend(child_values(doc, b, "title"));
                    for e in editors {
                        out.extend(child_values(doc, e, "affiliation"));
                    }
                }
            }
        }
        // Set semantics (metrics normalise anyway; dedup here keeps the
        // gold compact).
        let mut seen = HashSet::new();
        out.retain(|v| seen.insert(v.trim().to_lowercase()));
        out
    }

    /// For sorted tasks, the gold key order (titles, ascending).
    pub fn gold_sorted_keys(&self, doc: &Document) -> Vec<String> {
        if !self.sorted {
            return Vec::new();
        }
        let mut titles: Vec<String> = Vec::new();
        for b in books(doc) {
            let publisher = child_values(doc, b, "publisher");
            let year: Option<u32> = child_values(doc, b, "year")
                .first()
                .and_then(|y| y.parse().ok());
            if publisher.iter().any(|p| p == "Addison-Wesley") && year.is_some_and(|y| y > 1991) {
                titles.extend(child_values(doc, b, "title"));
            }
        }
        titles.sort();
        titles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::dblp::{generate, DblpConfig};

    fn doc() -> Document {
        generate(&DblpConfig::small())
    }

    #[test]
    fn q1_gold_includes_anchors() {
        let d = doc();
        let g = TaskId::Q1.task().gold(&d);
        assert!(g.iter().any(|v| v == "TCP/IP Illustrated"), "{g:?}");
        assert!(g.iter().any(|v| v == "1994"));
        // pre-1992 Addison-Wesley books excluded
        assert!(!g.iter().any(|v| v == "Smalltalk-80: The Language"));
    }

    #[test]
    fn q3_gold_has_titles_and_authors() {
        let d = doc();
        let g = TaskId::Q3.task().gold(&d);
        assert!(g.iter().any(|v| v == "TCP/IP Illustrated"));
        assert!(g.iter().any(|v| v == "W. Richard Stevens"));
    }

    #[test]
    fn q6_excludes_editor_only_books() {
        let d = doc();
        let g = TaskId::Q6.task().gold(&d);
        assert!(!g.iter().any(|v| v == "Readings in Database Systems"));
    }

    #[test]
    fn q8_gold_is_suciu_titles() {
        let d = doc();
        let g = TaskId::Q8.task().gold(&d);
        assert!(g.iter().any(|v| v == "Data on the Web"));
        assert!(g.iter().any(|v| v == "XML Data Management"));
        assert!(!g.iter().any(|v| v == "TCP/IP Illustrated"));
    }

    #[test]
    fn q9_gold_has_xml_titles_only() {
        let d = doc();
        let g = TaskId::Q9.task().gold(&d);
        assert!(!g.is_empty());
        assert!(g.iter().all(|v| v.contains("XML")));
    }

    #[test]
    fn q10_min_year_per_title() {
        let d = doc();
        let g = TaskId::Q10.task().gold(&d);
        // Principles of Database Systems: editions 1980/1982/1988 → 1980
        assert!(g.iter().any(|v| v == "Principles of Database Systems"));
        assert!(g.iter().any(|v| v == "1980"));
        assert!(!g.iter().any(|v| v == "1982") || g.iter().any(|v| v == "1982"));
    }

    #[test]
    fn q11_editor_books() {
        let d = doc();
        let g = TaskId::Q11.task().gold(&d);
        assert!(g.iter().any(|v| v == "Readings in Database Systems"));
        assert!(g.iter().any(|v| v == "UC Berkeley"));
        assert!(!g.iter().any(|v| v == "TCP/IP Illustrated"));
    }

    #[test]
    fn q7_sorted_keys_are_sorted() {
        let d = doc();
        let keys = TaskId::Q7.task().gold_sorted_keys(&d);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(!keys.is_empty());
    }

    #[test]
    fn gold_is_deduplicated() {
        let d = doc();
        for t in ALL_TASKS {
            let g = t.task().gold(&d);
            let mut set: Vec<String> = g.iter().map(|v| v.trim().to_lowercase()).collect();
            set.sort();
            let before = set.len();
            set.dedup();
            assert_eq!(before, set.len(), "{}", t.label());
        }
    }

    #[test]
    fn all_tasks_have_nonempty_gold() {
        let d = doc();
        for t in ALL_TASKS {
            assert!(!t.task().gold(&d).is_empty(), "{}", t.label());
        }
    }
}
