#![warn(missing_docs)]

//! # userstudy — the simulated user study of the NaLIX evaluation
//!
//! The paper evaluates NaLIX with 18 human participants, each solving 9
//! search tasks (adapted from the W3C XQuery Use Cases "XMP" set) with
//! both NaLIX and a Meet-based keyword-search interface, on a DBLP
//! sub-collection. Human participants are the one resource a code
//! reproduction cannot have, so this crate substitutes **simulated
//! participants** with three properties that preserve the experiment's
//! meaning:
//!
//! 1. **Every query is real.** Each attempted phrasing is run through
//!    the *full* NaLIX pipeline (parse → classify → validate →
//!    translate → evaluate); acceptance, feedback, and result quality
//!    are never canned. The simulator only chooses *which* phrasing a
//!    participant tries, and models time.
//! 2. **Phrasing pools encode human variation.** For each task, a pool
//!    of genuine English phrasings covers what the paper observed:
//!    fluent phrasings the system accepts, phrasings the system rejects
//!    (driving the reformulation loop and Fig. 11's iteration counts),
//!    and *intent-deviating* phrasings ("List books with title and
//!    authors" for "list the title and authors of books" — the paper's
//!    own example) that the system accepts but that lose precision or
//!    recall (Table 7's "correctly specified" split).
//! 3. **Parse noise reproduces Minipar.** Attempts pass through the
//!    [`nlparser::noise`] attachment-corruption model at Minipar's
//!    observed error rate, producing the accepted-but-misparsed
//!    population of Table 7 (8 of 120 in the paper).
//!
//! The experiment protocol follows Sec. 5.1: a within-subject design,
//! 9×9 orthogonal-Latin-square task ordering, harmonic-mean ≥ 0.5
//! passing criterion, and a 5-minute per-task cap.

pub mod dialogue;
pub mod experiment;
pub mod latin;
pub mod metrics;
pub mod participant;
pub mod phrasings;
pub mod tasks;

pub use dialogue::{run_dialogue_study, DepthStats, DialogueReport, DialogueTask};
pub use experiment::{run_experiment, ExperimentConfig, ExperimentResults};
pub use metrics::{harmonic_mean, precision_recall, PrScore};
pub use tasks::{Task, TaskId};
