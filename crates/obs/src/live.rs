//! The recording implementation, compiled under the `enabled` feature.
//!
//! Everything here is wait-free on the write path: relaxed atomic
//! increments into fixed-size arrays, a cache-line-sharded counter for
//! the highest-frequency events, and a single packed atomic for the
//! translation-cache hit/miss pair so the two can never be observed
//! torn. The API is mirrored exactly by the no-op twin in `noop.rs`.

use crate::{
    bucket_index, env_disabled, Counter, MaxGauge, MetricsSnapshot, SpanOutcome, Stage,
    HISTOGRAM_BUCKETS,
};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Shards per [`ShardedCounter`]; must be a power of two. Eight shards
/// cover the `BatchRunner` fan-out the repo benchmarks (2/4/8 threads)
/// with one shard per thread in the common case.
const COUNTER_SHARDS: usize = 8;

/// A cache-line-padded atomic, so neighbouring shards never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A counter split across cache-line-padded shards: each thread
/// increments its own shard (assigned round-robin on first use), reads
/// sum all shards. Writes stay wait-free and contention-free even when
/// every worker bumps the same counter per LCA query.
struct ShardedCounter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard index (assigned on first use; falls back
/// to shard 0 if thread-local storage is already torn down).
fn my_shard() -> usize {
    MY_SHARD
        .try_with(|c| {
            let v = c.get();
            if v != usize::MAX {
                v
            } else {
                let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
                c.set(v);
                v
            }
        })
        .unwrap_or(0)
}

impl ShardedCounter {
    fn new() -> Self {
        ShardedCounter {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        self.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }
}

/// A fixed-bucket latency histogram (see [`HISTOGRAM_BUCKETS`]).
struct AtomicHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> crate::HistogramSnapshot {
        crate::HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Outcome counters plus the latency histogram of one stage.
struct StageMetrics {
    outcomes: [AtomicU64; SpanOutcome::COUNT],
    latency: AtomicHistogram,
}

impl StageMetrics {
    fn new() -> Self {
        StageMetrics {
            outcomes: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: AtomicHistogram::new(),
        }
    }

    fn snapshot(&self) -> crate::StageSnapshot {
        crate::StageSnapshot {
            outcomes: std::array::from_fn(|i| self.outcomes[i].load(Ordering::Relaxed)),
            latency: self.latency.snapshot(),
        }
    }
}

/// The lock-free metrics store every instrumented component records
/// into.
///
/// A registry is cheap to create and fully thread-safe; `nalix::Nalix`
/// and `xquery::Engine` each own one (an isolated default, or a shared
/// handle passed to their `with_metrics` constructors), while
/// process-global instrumentation deep in `xmldb` and `nlparser`
/// records into [`global()`]. Reading is always allowed; whether
/// *recording* happens is controlled by the `enabled` flag (seeded from
/// the `NALIX_OBS` environment variable, adjustable at runtime).
///
/// ```
/// use obs::{MetricsRegistry, SpanOutcome, Stage};
/// let reg = MetricsRegistry::new();
/// reg.set_enabled(false);
/// reg.span(Stage::Parse).finish(SpanOutcome::Ok); // recorded nowhere
/// assert_eq!(reg.snapshot().stage(Stage::Parse).spans(), 0);
/// reg.set_enabled(true);
/// reg.span(Stage::Parse).finish(SpanOutcome::Ok);
/// assert_eq!(reg.snapshot().stage(Stage::Parse).spans(), 1);
/// ```
pub struct MetricsRegistry {
    enabled: AtomicBool,
    stages: [StageMetrics; Stage::COUNT],
    queries: [AtomicU64; SpanOutcome::COUNT],
    counters: [ShardedCounter; Counter::COUNT],
    maxes: [AtomicU64; MaxGauge::COUNT],
    /// Translation-cache hits and misses packed as
    /// `(hits << 32) | misses`, each half saturating at `u32::MAX`, so
    /// one load yields a pair that is always mutually consistent.
    cache: AtomicU64,
}

impl MetricsRegistry {
    /// A fresh, empty registry. Starts enabled unless the `NALIX_OBS`
    /// environment variable says `off` / `0` / `false` / `no`.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(!env_disabled()),
            stages: std::array::from_fn(|_| StageMetrics::new()),
            queries: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| ShardedCounter::new()),
            maxes: std::array::from_fn(|_| AtomicU64::new(0)),
            cache: AtomicU64::new(0),
        }
    }

    /// Whether recording calls currently take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime. Already-recorded values are
    /// kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Start timing one run of `stage`. The returned guard files the
    /// elapsed wall time and an outcome when finished (or dropped, in
    /// which case the last outcome set — default [`SpanOutcome::Ok`] —
    /// is used). On a disabled registry the guard is inert and does not
    /// read the clock.
    ///
    /// ```
    /// use obs::{MetricsRegistry, SpanOutcome, Stage};
    /// let reg = MetricsRegistry::new();
    /// let mut span = reg.span(Stage::Translate);
    /// span.set_outcome(SpanOutcome::TranslateError);
    /// drop(span); // records with the outcome set above
    /// assert_eq!(reg.snapshot().stage(Stage::Translate).errors(), 1);
    /// ```
    pub fn span(&self, stage: Stage) -> StageSpan<'_> {
        StageSpan {
            live: self.is_enabled().then(|| (self, stage, Instant::now())),
            outcome: SpanOutcome::Ok,
        }
    }

    fn record_span(&self, stage: Stage, outcome: SpanOutcome, elapsed: Duration) {
        let st = &self.stages[stage.index()];
        st.outcomes[outcome.index()].fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        st.latency.record(ns);
    }

    /// File the outcome of one end-to-end query submission (including
    /// [`SpanOutcome::CacheHit`] short-circuits, which produce no stage
    /// spans).
    pub fn record_query(&self, outcome: SpanOutcome) {
        if self.is_enabled() {
            self.queries[outcome.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add `n` to a work counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if self.is_enabled() && n > 0 {
            self.counters[counter.index()].add(n);
        }
    }

    /// Raise a high-water-mark gauge to `value` if it is higher than
    /// anything recorded so far.
    pub fn record_max(&self, gauge: MaxGauge, value: u64) {
        if self.is_enabled() {
            self.maxes[gauge.index()].fetch_max(value, Ordering::Relaxed);
        }
    }

    fn bump_cache(&self, hit: bool) {
        if !self.is_enabled() {
            return;
        }
        // Both halves live in one atomic: a CAS loop keeps each half
        // saturating instead of bleeding into its neighbour. The
        // closure always returns `Some`, so `fetch_update` cannot fail.
        let _ = self
            .cache
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                let (h, m) = (v >> 32, v & u64::from(u32::MAX));
                let bump = |x: u64| (x + 1).min(u64::from(u32::MAX));
                let (h, m) = if hit { (bump(h), m) } else { (h, bump(m)) };
                Some((h << 32) | m)
            });
    }

    /// Record one translation-cache hit.
    pub fn cache_hit(&self) {
        self.bump_cache(true);
    }

    /// Record one translation-cache miss.
    pub fn cache_miss(&self) {
        self.bump_cache(false);
    }

    /// A consistent `(hits, misses)` pair, read from one atomic load —
    /// the two values always describe the same instant.
    ///
    /// ```
    /// use obs::MetricsRegistry;
    /// let reg = MetricsRegistry::new();
    /// reg.cache_miss();
    /// reg.cache_hit();
    /// assert_eq!(reg.cache_counts(), (1, 1));
    /// ```
    pub fn cache_counts(&self) -> (u64, u64) {
        let v = self.cache.load(Ordering::Relaxed);
        (v >> 32, v & u64::from(u32::MAX))
    }

    /// Copy everything recorded so far into a plain-data
    /// [`MetricsSnapshot`]. Wait-free; individual values are read
    /// relaxed, so a snapshot taken while writers are active is a
    /// near-instant, not perfectly transactional, picture (except the
    /// cache pair, which is atomic by construction).
    ///
    /// Snapshotting the [`global()`] registry first drains the calling
    /// thread's [`count_hot`] cells, so single-threaded report paths
    /// always see their own hot counts.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if let Some(g) = GLOBAL.get() {
            if std::ptr::eq(Arc::as_ptr(g), self) {
                flush_hot();
            }
        }
        let (cache_hits, cache_misses) = self.cache_counts();
        MetricsSnapshot {
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            queries: std::array::from_fn(|i| self.queries[i].load(Ordering::Relaxed)),
            counters: std::array::from_fn(|i| self.counters[i].value()),
            maxes: std::array::from_fn(|i| self.maxes[i].load(Ordering::Relaxed)),
            cache_hits,
            cache_misses,
            cache_entries: 0,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// RAII guard timing one stage run; created by [`MetricsRegistry::span`].
///
/// Call [`finish`](StageSpan::finish) with the stage's outcome on every
/// exit path, or [`set_outcome`](StageSpan::set_outcome) and let the
/// guard record on drop — early returns via `?` then still file the
/// span.
///
/// ```
/// use obs::{MetricsRegistry, SpanOutcome, Stage};
/// let reg = MetricsRegistry::new();
/// reg.span(Stage::Classify).finish(SpanOutcome::Ok);
/// let snap = reg.snapshot();
/// assert_eq!(snap.stage(Stage::Classify).ok(), 1);
/// assert_eq!(snap.stage(Stage::Classify).latency.count, 1);
/// ```
pub struct StageSpan<'r> {
    /// `None` when the registry was disabled at span creation.
    live: Option<(&'r MetricsRegistry, Stage, Instant)>,
    outcome: SpanOutcome,
}

impl StageSpan<'_> {
    /// Set the outcome the span will record when it ends.
    pub fn set_outcome(&mut self, outcome: SpanOutcome) {
        self.outcome = outcome;
    }

    /// End the span now, recording `outcome` and the elapsed wall time.
    pub fn finish(mut self, outcome: SpanOutcome) {
        self.outcome = outcome;
        // Recording happens in `Drop`, which runs here.
    }
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        if let Some((reg, stage, started)) = self.live.take() {
            reg.record_span(stage, self.outcome, started.elapsed());
        }
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

fn global_arc() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The process-global registry.
///
/// Deep instrumentation that has no natural owner — `xmldb` LCA
/// queries, `nlparser` tokenizer counters — records here; bench bins
/// opt their `Nalix` instances into it via
/// `Nalix::with_metrics(&doc, obs::global_handle())` so one snapshot
/// shows the whole picture.
///
/// ```
/// use obs::{global, Counter};
/// let before = global().snapshot().counter(Counter::LcaQueries);
/// global().add(Counter::LcaQueries, 2);
/// let after = global().snapshot().counter(Counter::LcaQueries);
/// assert_eq!(after - before, 2);
/// ```
pub fn global() -> &'static MetricsRegistry {
    global_arc()
}

/// A clonable handle to the [`global()`] registry, for APIs that take
/// `Arc<MetricsRegistry>` (e.g. `Nalix::with_metrics`).
///
/// ```
/// use obs::{global, global_handle};
/// let handle = obs::global_handle();
/// assert!(std::ptr::eq(&*handle, global()));
/// ```
pub fn global_handle() -> Arc<MetricsRegistry> {
    global_arc().clone()
}

/// Flush threshold for [`count_hot`] cells: high enough that the flush
/// branch is almost never taken, low enough that an unflushed tail is
/// invisible against the call volumes these counters see.
const HOT_FLUSH: u64 = 1 << 12;

thread_local! {
    // Per-thread accumulation cells for `count_hot`. Deliberately
    // destructor-free and const-initialized: on ELF targets that
    // compiles every access down to a direct TLS slot read, which is
    // what keeps the per-probe cost near a plain increment.
    static HOT: [Cell<u64>; Counter::COUNT] = const { [const { Cell::new(0) }; Counter::COUNT] };
}

/// Count work on the [`global()`] registry from a hot path.
///
/// Increments accumulate in a plain per-thread cell — no atomics, no
/// clock — and drain into the global registry every 4096th
/// unit and whenever the calling thread calls [`flush_hot`] or
/// snapshots the global registry. This is what lets `xmldb` count
/// tens of millions of O(1) structural probes per batch without
/// slowing them down.
///
/// Two deliberate imprecisions, both bounded by one cell
/// (4096 units per counter per thread, invisible at the call
/// volumes this API is for):
///
/// - a thread that exits without calling [`flush_hot`] drops its tail
///   (worker pools such as `nalix::BatchRunner` flush before exit);
/// - the enabled check happens at *flush* time (via
///   [`MetricsRegistry::add`]), so a registry disabled mid-batch may
///   drop or keep up to one cell's worth.
///
/// ```
/// use obs::{count_hot, flush_hot, global, Counter};
/// let before = global().snapshot().counter(Counter::SubtreeProbes);
/// count_hot(Counter::SubtreeProbes, 3);
/// flush_hot(); // snapshot() on the global registry also flushes
/// let after = global().snapshot().counter(Counter::SubtreeProbes);
/// assert_eq!(after - before, 3);
/// ```
pub fn count_hot(counter: Counter, n: u64) {
    // try_with: counting during thread teardown is silently dropped.
    let _ = HOT.try_with(|cells| {
        let c = &cells[counter.index()];
        let v = c.get().wrapping_add(n);
        if v >= HOT_FLUSH {
            c.set(0);
            global().add(counter, v);
        } else {
            c.set(v);
        }
    });
}

/// Drain the calling thread's [`count_hot`] cells into the [`global()`]
/// registry immediately. Called automatically when the calling thread
/// snapshots the global registry; worker threads that record hot
/// counts should call it before exiting (as `nalix::BatchRunner`
/// does), since the cells are deliberately destructor-free.
pub fn flush_hot() {
    let _ = HOT.try_with(|cells| {
        let reg = global();
        for (i, c) in cells.iter().enumerate() {
            let v = c.get();
            if v > 0 {
                c.set(0);
                reg.add(Counter::ALL[i], v);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        reg.add(Counter::LcaQueries, 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter(Counter::LcaQueries), 8_000);
    }

    #[test]
    fn span_drop_records_with_last_outcome() {
        let reg = MetricsRegistry::new();
        {
            let mut span = reg.span(Stage::Validate);
            span.set_outcome(SpanOutcome::ValidateError);
            // Dropped without `finish` — e.g. a `?` early return.
        }
        let s = reg.snapshot();
        assert_eq!(
            s.stage(Stage::Validate)
                .with_outcome(SpanOutcome::ValidateError),
            1
        );
        assert_eq!(s.stage(Stage::Validate).latency.count, 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        reg.span(Stage::Parse).finish(SpanOutcome::Ok);
        reg.record_query(SpanOutcome::Ok);
        reg.add(Counter::Tokens, 5);
        reg.record_max(MaxGauge::EvalDepthHighWater, 9);
        reg.cache_hit();
        reg.cache_miss();
        assert_eq!(reg.snapshot(), MetricsSnapshot::new());
    }

    #[test]
    fn cache_pair_is_consistent_under_concurrency() {
        let reg = MetricsRegistry::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let sampler = s.spawn(|| {
                // Sampled pairs must be monotone in both halves — a
                // torn read of a two-atomic pair could go backwards.
                let (mut h0, mut m0) = (0, 0);
                while !stop.load(Ordering::Relaxed) {
                    let (h, m) = reg.cache_counts();
                    assert!(h >= h0 && m >= m0, "({h},{m}) after ({h0},{m0})");
                    (h0, m0) = (h, m);
                }
            });
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        for i in 0..5_000 {
                            if i % 3 == 0 {
                                reg.cache_hit();
                            } else {
                                reg.cache_miss();
                            }
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            sampler.join().unwrap();
        });
        let (h, m) = reg.cache_counts();
        assert_eq!(h + m, 20_000);
        assert_eq!(h, 4 * 1_667); // ceil(5000/3) per thread
    }

    #[test]
    fn eval_budget_gauge_keeps_high_water() {
        let reg = MetricsRegistry::new();
        for v in [3, 12, 7] {
            reg.record_max(MaxGauge::EvalDepthHighWater, v);
        }
        assert_eq!(reg.snapshot().max(MaxGauge::EvalDepthHighWater), 12);
    }
}
