#![warn(missing_docs)]
// The recording paths run inside the NL→answer pipeline; a panic in a
// metrics call would violate the paper's Sec. 4 "always answer with
// feedback" contract, so the escape hatches are denied just as in the
// query-path crates.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # obs — zero-cost-when-disabled pipeline observability
//!
//! NaLIX's evaluation (paper Sec. 5) is entirely per-stage: where
//! queries fail (Table 7), and where time goes (Figs. 11–12). This
//! crate is that breakdown as a library: a lock-free [`MetricsRegistry`]
//! of counters and fixed-bucket latency histograms, a [`StageSpan`]
//! guard that times one pipeline stage and files its outcome, and a
//! plain-data [`MetricsSnapshot`] that can be merged across threads,
//! diffed, pretty-printed, or dumped in Prometheus text format.
//!
//! Three off switches, from coarsest to finest:
//!
//! 1. **Compile time** — build with `--no-default-features` (consumer
//!    crates forward a `metrics` feature here) and every recording type
//!    becomes a zero-sized no-op; spans do not even read the clock.
//! 2. **Environment** — set `NALIX_OBS=off` (or `0`, `false`, `no`) and
//!    registries start disabled.
//! 3. **Runtime** — [`MetricsRegistry::set_enabled`] flips one atomic.
//!
//! ## Quick start
//!
//! ```
//! use obs::{MetricsRegistry, SpanOutcome, Stage};
//!
//! let reg = MetricsRegistry::new();
//! {
//!     let span = reg.span(Stage::Parse); // starts the clock
//!     // … do the stage's work …
//!     span.finish(SpanOutcome::Ok); // files wall time + outcome
//! }
//! reg.record_query(SpanOutcome::Ok);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.stage(Stage::Parse).spans(), 1);
//! assert_eq!(snap.queries_with(SpanOutcome::Ok), 1);
//! println!("{snap}"); // human-readable per-stage table
//! ```
//!
//! ## Recording model
//!
//! - A **span** ([`MetricsRegistry::span`]) times one stage *run*. A
//!   cache hit short-circuits the pipeline, so a hit produces a
//!   [`SpanOutcome::CacheHit`] *query* outcome and **no** parse /
//!   classify / validate / translate spans — "exactly one translate
//!   span per cache miss, zero per hit" is an invariant the test suite
//!   checks.
//! - A **query outcome** ([`MetricsRegistry::record_query`]) classifies
//!   one end-to-end submission: ok, cache hit, or the failing stage.
//! - **Counters** ([`MetricsRegistry::add`]) count engine work items:
//!   tokens, LCA queries, value-index probes, evaluator tuples.
//! - **Max gauges** ([`MetricsRegistry::record_max`]) keep high-water
//!   marks, e.g. the deepest evaluator recursion seen.
//! - The **cache pair** ([`MetricsRegistry::cache_hit`] /
//!   [`cache_miss`](MetricsRegistry::cache_miss)) is stored packed in a
//!   single atomic so [`cache_counts`](MetricsRegistry::cache_counts)
//!   always reads a consistent (hits, misses) pair.
//!
//! All recording is wait-free on the hot path: relaxed atomic
//! increments, a sharded counter for the highest-frequency events, and
//! no allocation anywhere. See `docs/OBSERVABILITY.md` in the
//! repository for the full metric catalog.

use std::fmt;

/// Number of latency-histogram buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 starts at zero, the last
/// bucket is open-ended at ~18 minutes). Log-2 buckets give ~1.4×
/// relative error on quantiles over the whole ns→minutes range with a
/// fixed 320-byte footprint per histogram.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Map a duration in nanoseconds to its histogram bucket.
#[cfg(any(test, feature = "enabled"))]
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Exclusive upper bound (in nanoseconds) of histogram bucket `i`.
fn bucket_upper_ns(i: usize) -> u64 {
    1u64 << (i + 1).min(63)
}

/// One pipeline stage, in execution order (paper Fig. 2), followed by
/// the `nalixd` HTTP endpoints — the serving layer reuses the span
/// machinery, so every endpoint gets the same outcome accounting and
/// latency histogram a pipeline stage does.
///
/// ```
/// use obs::Stage;
/// let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
/// assert_eq!(
///     names,
///     [
///         "parse", "classify", "validate", "translate", "eval",
///         "sql_translate", "sql_eval", "shred_build",
///         "store_load", "store_reload", "store_update",
///         "index_patch", "index_rebuild",
///         "http_query", "http_batch", "http_health", "http_metrics",
///         "http_docs", "http_update"
///     ]
/// );
/// assert!(!Stage::Eval.is_http());
/// assert!(!Stage::StoreLoad.is_http());
/// assert!(!Stage::IndexPatch.is_http());
/// assert!(Stage::HttpQuery.is_http());
/// assert!(Stage::HttpDocs.is_http());
/// assert!(Stage::HttpUpdate.is_http());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Dependency parsing of the English sentence (`nlparser`).
    Parse,
    /// Token/marker classification (paper Tables 1–2).
    Classify,
    /// Grammar + database validation with feedback (paper Table 6).
    Validate,
    /// Mapping to Schema-Free XQuery (paper Sec. 3).
    Translate,
    /// Evaluation of the translated query (`xquery` engine).
    Eval,
    /// Lowering the shared FLWOR plan to the SQL subset (the `sql`
    /// backend's second translation stage; the XQuery backend has no
    /// counterpart — its plan *is* the emitted expression).
    SqlTranslate,
    /// Evaluation of a lowered SQL query by the `sqlq` executor over
    /// the relational shredding (the `sql` backend's analog of
    /// [`Stage::Eval`]).
    SqlEval,
    /// One construction of a document's relational shredding
    /// (`relstore`): lazy first touch by a SQL-backend query, or the
    /// successor patch/rebuild after a node-level update.
    ShredBuild,
    /// One first-time construction of a document pipeline by the
    /// `store` crate: dataset generation or XML parse, plus structural
    /// index, catalog, and engine construction.
    StoreLoad,
    /// One hot-swap rebuild of an already-resident document pipeline
    /// (`PUT /docs/:name` on a loaded document). Same work as
    /// [`Stage::StoreLoad`], accounted separately so reload latency is
    /// visible on its own.
    StoreReload,
    /// One node-level update batch applied to a resident document
    /// pipeline (`DocumentStore::update` / `POST /docs/:name/update`):
    /// edit validation, overlay commit, and successor-pipeline
    /// construction, end to end.
    StoreUpdate,
    /// The index-maintenance slice of an update batch that took the
    /// **incremental patch** path: structural index, postings, and
    /// catalog/value indexes folded forward from the pending overlay
    /// without touching untouched regions.
    IndexPatch,
    /// The index-maintenance slice of an update batch that fell back to
    /// a **from-scratch rebuild** (the edit footprint was too large for
    /// patching to pay off). The patch/rebuild span split is the
    /// incremental-maintenance observability contract.
    IndexRebuild,
    /// One served `POST /query` request (`nalixd`), end to end —
    /// admission wait excluded, body parse through response write
    /// included.
    HttpQuery,
    /// One served `POST /batch` request (`nalixd`).
    HttpBatch,
    /// One served `GET /health` request (`nalixd`).
    HttpHealth,
    /// One served `GET /metrics` request (`nalixd`).
    HttpMetrics,
    /// One served document-admin request (`GET /docs`,
    /// `PUT /docs/:name`, `DELETE /docs/:name`).
    HttpDocs,
    /// One served `POST /docs/:name/update` request (`nalixd`).
    HttpUpdate,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 19;

    /// All stages, in pipeline order (store lifecycle spans and HTTP
    /// endpoints last).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::Classify,
        Stage::Validate,
        Stage::Translate,
        Stage::Eval,
        Stage::SqlTranslate,
        Stage::SqlEval,
        Stage::ShredBuild,
        Stage::StoreLoad,
        Stage::StoreReload,
        Stage::StoreUpdate,
        Stage::IndexPatch,
        Stage::IndexRebuild,
        Stage::HttpQuery,
        Stage::HttpBatch,
        Stage::HttpHealth,
        Stage::HttpMetrics,
        Stage::HttpDocs,
        Stage::HttpUpdate,
    ];

    /// Dense index of this stage (its position in [`Stage::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for the serving-layer endpoint spans, false for the five
    /// NL→answer pipeline stages and the store lifecycle spans.
    pub fn is_http(self) -> bool {
        matches!(
            self,
            Stage::HttpQuery
                | Stage::HttpBatch
                | Stage::HttpHealth
                | Stage::HttpMetrics
                | Stage::HttpDocs
                | Stage::HttpUpdate
        )
    }

    /// The stage's snake_case name, as used in metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Classify => "classify",
            Stage::Validate => "validate",
            Stage::Translate => "translate",
            Stage::Eval => "eval",
            Stage::SqlTranslate => "sql_translate",
            Stage::SqlEval => "sql_eval",
            Stage::ShredBuild => "shred_build",
            Stage::StoreLoad => "store_load",
            Stage::StoreReload => "store_reload",
            Stage::StoreUpdate => "store_update",
            Stage::IndexPatch => "index_patch",
            Stage::IndexRebuild => "index_rebuild",
            Stage::HttpQuery => "http_query",
            Stage::HttpBatch => "http_batch",
            Stage::HttpHealth => "http_health",
            Stage::HttpMetrics => "http_metrics",
            Stage::HttpDocs => "http_docs",
            Stage::HttpUpdate => "http_update",
        }
    }
}

/// How one stage run — or one end-to-end query — ended.
///
/// The error variants mirror the `nalix::QueryError` taxonomy one to
/// one, so per-outcome counts reproduce the paper's Table 7 failure
/// classes; [`SpanOutcome::CacheHit`] marks the short-circuit where a
/// memoised translation skipped the pipeline entirely.
///
/// ```
/// use obs::SpanOutcome;
/// assert_eq!(SpanOutcome::CacheHit.name(), "cache_hit");
/// assert!(!SpanOutcome::CacheHit.is_error());
/// assert!(SpanOutcome::ValidateError.is_error());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanOutcome {
    /// The stage (or query) completed successfully.
    Ok,
    /// The translation cache answered; the pipeline did not run.
    CacheHit,
    /// The dependency parser rejected the sentence.
    ParseError,
    /// One or more words were outside the vocabulary.
    ClassifyError,
    /// The parse tree violated the grammar or named nothing in the
    /// database.
    ValidateError,
    /// The validated tree could not be mapped to XQuery.
    TranslateError,
    /// Evaluation failed (unbound variable, type error, …).
    EvalError,
    /// An evaluator resource budget tripped (depth / time / tuples).
    ResourceExhausted,
}

impl SpanOutcome {
    /// Number of outcomes.
    pub const COUNT: usize = 8;

    /// All outcomes, in [`SpanOutcome::index`] order.
    pub const ALL: [SpanOutcome; SpanOutcome::COUNT] = [
        SpanOutcome::Ok,
        SpanOutcome::CacheHit,
        SpanOutcome::ParseError,
        SpanOutcome::ClassifyError,
        SpanOutcome::ValidateError,
        SpanOutcome::TranslateError,
        SpanOutcome::EvalError,
        SpanOutcome::ResourceExhausted,
    ];

    /// Dense index of this outcome (its position in [`SpanOutcome::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The outcome's snake_case name, as used in metric labels.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::CacheHit => "cache_hit",
            SpanOutcome::ParseError => "parse_error",
            SpanOutcome::ClassifyError => "classify_error",
            SpanOutcome::ValidateError => "validate_error",
            SpanOutcome::TranslateError => "translate_error",
            SpanOutcome::EvalError => "eval_error",
            SpanOutcome::ResourceExhausted => "resource_exhausted",
        }
    }

    /// True for every variant except [`SpanOutcome::Ok`] and
    /// [`SpanOutcome::CacheHit`].
    pub fn is_error(self) -> bool {
        !matches!(self, SpanOutcome::Ok | SpanOutcome::CacheHit)
    }
}

/// A monotonically increasing work counter.
///
/// Counters count *engine work items* (tokens, index probes, tuples) as
/// opposed to stage runs; see `docs/OBSERVABILITY.md` for the catalog
/// with the paper artifact each one maps to.
///
/// ```
/// use obs::{Counter, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// reg.add(Counter::LcaQueries, 3);
/// assert_eq!(reg.snapshot().counter(Counter::LcaQueries), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Raw tokens produced by the `nlparser` tokenizer.
    Tokens,
    /// Tokenizer invocations (parsing *and* cache-key normalization).
    TokenizerCalls,
    /// Sentences the dependency parser accepted.
    ParsedSentences,
    /// Sentences the dependency parser rejected.
    ParseFailures,
    /// Error-severity feedback items produced by validation.
    ValidateErrors,
    /// Warning-severity feedback items produced by validation.
    ValidateWarnings,
    /// FLWOR candidate tuples materialized by the evaluator (the
    /// quantity `EvalBudget::max_tuples` bounds).
    EvalTuples,
    /// Value-index fetches (one per label per FLWOR binding that takes
    /// the equality-join fast path).
    ValueIndexLookups,
    /// Value-index constructions (first touch of a label; duplicates
    /// from racing threads count too).
    ValueIndexBuilds,
    /// `mqf()` meaningful-relatedness checks evaluated.
    MqfChecks,
    /// Indexed mqf partner enumerations (the candidate generator behind
    /// schema-free `for` bindings).
    MqfPartnerLookups,
    /// Worker shards spawned for intra-query parallel FLWOR loops (one
    /// per chunk of a sharded binding-expansion or return loop).
    EvalShardSpawns,
    /// Lowest-common-ancestor queries answered by `xmldb`.
    LcaQueries,
    /// Level-ancestor (`child_toward`) queries answered by `xmldb`.
    ChildTowardQueries,
    /// Label-in-subtree range probes answered by `xmldb`.
    SubtreeProbes,
    /// HTTP requests admitted and parsed by `nalixd` (all endpoints,
    /// before routing; sheds and unparseable requests are not
    /// included).
    HttpRequests,
    /// Connections shed with `503 Service Unavailable` because the
    /// admission queue was full.
    HttpShed,
    /// Requests refused before routing: malformed request line or
    /// headers, oversized body, unknown path, wrong method.
    HttpBadRequests,
    /// Keep-alive connection reuse: requests parsed on a connection
    /// that had already served at least one request (a measure of how
    /// many TCP handshakes keep-alive saved).
    HttpKeepaliveReuse,
    /// Connections answered `408 Request Timeout` because a request
    /// stalled mid-parse past the read timeout (at least one byte had
    /// arrived; zero-byte idle connections are closed silently).
    HttpTimeouts,
    /// `epoll_wait` returns that delivered at least one event to the
    /// `nalixd` event loop (timeout-only ticks are not counted).
    EpollWakeups,
    /// Translation-cache entries evicted to stay under the configured
    /// capacity (`nalix` bounded clock cache).
    CacheEvictions,
    /// Document pipelines built for the first time by the `store`
    /// crate (eager registration, lazy first query, or `PUT` of a new
    /// name).
    StoreLoads,
    /// Document pipelines rebuilt in place (hot-swap reload of an
    /// already-resident document).
    StoreReloads,
    /// Document pipelines dropped from residency — admin `DELETE`,
    /// replacement by a reload, or capacity-bounded eviction of a cold
    /// document.
    StoreEvictions,
    /// Requests naming a document the store does not know.
    StoreMisses,
    /// Conversational sessions created (first request carrying a new
    /// session id).
    SessionCreates,
    /// Requests that found live context under their session id.
    SessionHits,
    /// Sessions retired without being resumable: TTL expiry, LRU
    /// eviction, or invalidation by a document reload/eviction.
    SessionExpired,
    /// Follow-up questions whose anaphor or ellipsis was resolved
    /// against a prior turn (refinement grafts and "what about"
    /// substitutions both count once per resolved question).
    AnaphoraResolved,
    /// Node-level update batches committed by the `store` crate (one
    /// per successful `DocumentStore::update`, whatever the commit
    /// strategy).
    DocUpdates,
    /// Update batches whose index maintenance took the incremental
    /// patch path (order splice + RMQ-table extension instead of a
    /// from-scratch rebuild).
    IndexPatches,
    /// Update batches whose index maintenance fell back to a
    /// from-scratch rebuild because the edit footprint was too large
    /// to patch profitably.
    IndexRebuilds,
    /// Update requests refused because the caller's expected
    /// generation no longer matched the resident document (optimistic
    /// concurrency conflicts, answered `409`).
    UpdateConflicts,
    /// Binding tuples enumerated by the SQL backend's `sqlq` executor
    /// (the quantity its tuple budget bounds — the relational analog
    /// of [`Counter::EvalTuples`]).
    SqlTuples,
    /// Relational shreddings produced by `relstore`: lazy first
    /// builds, plus successor patches/rebuilds after updates.
    ShredBuilds,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 36;

    /// All counters, in [`Counter::index`] order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Tokens,
        Counter::TokenizerCalls,
        Counter::ParsedSentences,
        Counter::ParseFailures,
        Counter::ValidateErrors,
        Counter::ValidateWarnings,
        Counter::EvalTuples,
        Counter::ValueIndexLookups,
        Counter::ValueIndexBuilds,
        Counter::MqfChecks,
        Counter::MqfPartnerLookups,
        Counter::EvalShardSpawns,
        Counter::LcaQueries,
        Counter::ChildTowardQueries,
        Counter::SubtreeProbes,
        Counter::HttpRequests,
        Counter::HttpShed,
        Counter::HttpBadRequests,
        Counter::HttpKeepaliveReuse,
        Counter::HttpTimeouts,
        Counter::EpollWakeups,
        Counter::CacheEvictions,
        Counter::StoreLoads,
        Counter::StoreReloads,
        Counter::StoreEvictions,
        Counter::StoreMisses,
        Counter::SessionCreates,
        Counter::SessionHits,
        Counter::SessionExpired,
        Counter::AnaphoraResolved,
        Counter::DocUpdates,
        Counter::IndexPatches,
        Counter::IndexRebuilds,
        Counter::UpdateConflicts,
        Counter::SqlTuples,
        Counter::ShredBuilds,
    ];

    /// Dense index of this counter (its position in [`Counter::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The counter's snake_case name, as used in metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Tokens => "tokens",
            Counter::TokenizerCalls => "tokenizer_calls",
            Counter::ParsedSentences => "parsed_sentences",
            Counter::ParseFailures => "parse_failures",
            Counter::ValidateErrors => "validate_errors",
            Counter::ValidateWarnings => "validate_warnings",
            Counter::EvalTuples => "eval_tuples",
            Counter::ValueIndexLookups => "value_index_lookups",
            Counter::ValueIndexBuilds => "value_index_builds",
            Counter::MqfChecks => "mqf_checks",
            Counter::MqfPartnerLookups => "mqf_partner_lookups",
            Counter::EvalShardSpawns => "eval_shard_spawns",
            Counter::LcaQueries => "lca_queries",
            Counter::ChildTowardQueries => "child_toward_queries",
            Counter::SubtreeProbes => "subtree_probes",
            Counter::HttpRequests => "http_requests",
            Counter::HttpShed => "http_shed",
            Counter::HttpBadRequests => "http_bad_requests",
            Counter::HttpKeepaliveReuse => "http_keepalive_reuse",
            Counter::HttpTimeouts => "http_timeouts",
            Counter::EpollWakeups => "epoll_wakeups",
            Counter::CacheEvictions => "cache_evictions",
            Counter::StoreLoads => "store_loads",
            Counter::StoreReloads => "store_reloads",
            Counter::StoreEvictions => "store_evictions",
            Counter::StoreMisses => "store_misses",
            Counter::SessionCreates => "session_create",
            Counter::SessionHits => "session_hit",
            Counter::SessionExpired => "session_expired",
            Counter::AnaphoraResolved => "anaphora_resolved",
            Counter::DocUpdates => "doc_updates",
            Counter::IndexPatches => "index_patches",
            Counter::IndexRebuilds => "index_rebuilds",
            Counter::UpdateConflicts => "update_conflicts",
            Counter::SqlTuples => "sql_tuples",
            Counter::ShredBuilds => "shred_builds",
        }
    }
}

/// A high-water-mark gauge (recorded with `fetch_max`).
///
/// ```
/// use obs::{MaxGauge, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// reg.record_max(MaxGauge::EvalDepthHighWater, 7);
/// reg.record_max(MaxGauge::EvalDepthHighWater, 3); // lower: ignored
/// assert_eq!(reg.snapshot().max(MaxGauge::EvalDepthHighWater), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxGauge {
    /// Deepest expression recursion any evaluation reached (the
    /// quantity `EvalBudget::max_depth` bounds).
    EvalDepthHighWater,
    /// Deepest the `nalixd` admission queue ever got (the quantity its
    /// `--queue` capacity bounds; reaching the capacity means
    /// load-shedding began).
    QueueDepthHighWater,
    /// Most connections the `nalixd` event loop ever held open at
    /// once (the quantity its `--max-connections` cap bounds).
    OpenConnectionsHighWater,
    /// Largest pending-update overlay (edit count) any batch reached
    /// before commit — how much deferred index maintenance the
    /// epoch-batching write path ever accumulated.
    UpdateOverlayHighWater,
}

impl MaxGauge {
    /// Number of gauges.
    pub const COUNT: usize = 4;

    /// All gauges, in [`MaxGauge::index`] order.
    pub const ALL: [MaxGauge; MaxGauge::COUNT] = [
        MaxGauge::EvalDepthHighWater,
        MaxGauge::QueueDepthHighWater,
        MaxGauge::OpenConnectionsHighWater,
        MaxGauge::UpdateOverlayHighWater,
    ];

    /// Dense index of this gauge (its position in [`MaxGauge::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The gauge's snake_case name, as used in metric labels.
    pub fn name(self) -> &'static str {
        match self {
            MaxGauge::EvalDepthHighWater => "eval_depth_high_water",
            MaxGauge::QueueDepthHighWater => "queue_depth_high_water",
            MaxGauge::OpenConnectionsHighWater => "open_connections_high_water",
            MaxGauge::UpdateOverlayHighWater => "update_overlay_high_water",
        }
    }
}

/// A point-in-time copy of one latency histogram: plain data, safe to
/// clone, merge, and diff.
///
/// Quantiles are derived from the cumulative bucket counts, so they are
/// *bucket upper bounds* — within 2× of the true value by construction
/// of the log-2 buckets, with no allocation or per-sample storage.
///
/// ```
/// use obs::HistogramSnapshot;
/// let mut h = HistogramSnapshot::new();
/// // Three samples by hand: 100ns, 100ns, 1500ns.
/// h.count = 3;
/// h.sum_ns = 1700;
/// h.buckets[6] = 2; // [64, 128)
/// h.buckets[10] = 1; // [1024, 2048)
/// assert_eq!(h.quantile_ns(0.50), 128); // upper bound of [64, 128)
/// assert_eq!(h.quantile_ns(0.99), 2048);
/// assert_eq!(h.mean_ns(), 566);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Add `other`'s samples into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Samples recorded since `earlier` (fields subtracted pairwise).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        out.count = out.count.saturating_sub(earlier.count);
        out.sum_ns = out.sum_ns.saturating_sub(earlier.sum_ns);
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) in nanoseconds, as
    /// the upper bound of the bucket containing that rank. Zero when
    /// the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b);
            if cum >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(HISTOGRAM_BUCKETS - 1)
    }

    /// Exact mean duration in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::new()
    }
}

/// Per-stage slice of a [`MetricsSnapshot`]: one outcome counter per
/// [`SpanOutcome`] plus the stage's latency histogram.
///
/// ```
/// use obs::{MetricsRegistry, SpanOutcome, Stage};
/// let reg = MetricsRegistry::new();
/// reg.span(Stage::Validate).finish(SpanOutcome::ValidateError);
/// let s = reg.snapshot();
/// assert_eq!(s.stage(Stage::Validate).spans(), 1);
/// assert_eq!(s.stage(Stage::Validate).errors(), 1);
/// assert_eq!(s.stage(Stage::Validate).ok(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Span counts indexed by [`SpanOutcome::index`].
    pub outcomes: [u64; SpanOutcome::COUNT],
    /// Wall-time distribution of the stage's spans.
    pub latency: HistogramSnapshot,
}

impl StageSnapshot {
    /// An empty stage snapshot.
    pub fn new() -> Self {
        StageSnapshot {
            outcomes: [0; SpanOutcome::COUNT],
            latency: HistogramSnapshot::new(),
        }
    }

    /// Total spans recorded for this stage.
    pub fn spans(&self) -> u64 {
        self.outcomes.iter().sum()
    }

    /// Spans that ended in [`SpanOutcome::Ok`].
    pub fn ok(&self) -> u64 {
        self.outcomes[SpanOutcome::Ok.index()]
    }

    /// Spans that ended in an error outcome.
    pub fn errors(&self) -> u64 {
        SpanOutcome::ALL
            .iter()
            .filter(|o| o.is_error())
            .map(|o| self.outcomes[o.index()])
            .sum()
    }

    /// Spans with the given outcome.
    pub fn with_outcome(&self, outcome: SpanOutcome) -> u64 {
        self.outcomes[outcome.index()]
    }

    /// Add `other`'s spans into `self`.
    pub fn merge(&mut self, other: &StageSnapshot) {
        for (a, b) in self.outcomes.iter_mut().zip(other.outcomes.iter()) {
            *a = a.saturating_add(*b);
        }
        self.latency.merge(&other.latency);
    }

    /// Spans recorded since `earlier`.
    pub fn delta(&self, earlier: &StageSnapshot) -> StageSnapshot {
        let mut out = *self;
        for (a, b) in out.outcomes.iter_mut().zip(earlier.outcomes.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.latency = out.latency.delta(&earlier.latency);
        out
    }
}

impl Default for StageSnapshot {
    fn default() -> Self {
        StageSnapshot::new()
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`]: plain data,
/// mergeable across `BatchRunner` threads, diffable across runs, and
/// renderable as a table ([`fmt::Display`]) or Prometheus text
/// ([`MetricsSnapshot::to_prometheus`]).
///
/// ```
/// use obs::{Counter, MetricsRegistry, SpanOutcome, Stage};
///
/// // Two workers record into separate registries…
/// let (a, b) = (MetricsRegistry::new(), MetricsRegistry::new());
/// a.span(Stage::Translate).finish(SpanOutcome::Ok);
/// a.add(Counter::EvalTuples, 10);
/// b.span(Stage::Translate).finish(SpanOutcome::Ok);
/// b.add(Counter::EvalTuples, 32);
///
/// // …and their snapshots merge into the combined totals.
/// let mut total = a.snapshot();
/// total.merge(&b.snapshot());
/// assert_eq!(total.stage(Stage::Translate).spans(), 2);
/// assert_eq!(total.counter(Counter::EvalTuples), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Per-stage outcomes and latency, indexed by [`Stage::index`].
    pub stages: [StageSnapshot; Stage::COUNT],
    /// End-to-end query outcomes, indexed by [`SpanOutcome::index`].
    /// Unlike stage spans, every submission lands here exactly once —
    /// including cache hits, which produce no stage spans at all.
    pub queries: [u64; SpanOutcome::COUNT],
    /// Work counters, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// High-water marks, indexed by [`MaxGauge::index`].
    pub maxes: [u64; MaxGauge::COUNT],
    /// Translation-cache hits (consistent with `cache_misses`: both
    /// halves are read from one atomic).
    pub cache_hits: u64,
    /// Translation-cache misses.
    pub cache_misses: u64,
    /// Translation-cache resident entries (a gauge; only populated by
    /// callers that know the cache, e.g. `nalix::Nalix::metrics`).
    pub cache_entries: u64,
}

impl MetricsSnapshot {
    /// An all-zero snapshot (what a disabled registry produces).
    pub fn new() -> Self {
        MetricsSnapshot {
            stages: [StageSnapshot::new(); Stage::COUNT],
            queries: [0; SpanOutcome::COUNT],
            counters: [0; Counter::COUNT],
            maxes: [0; MaxGauge::COUNT],
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
        }
    }

    /// The snapshot slice for one stage.
    pub fn stage(&self, stage: Stage) -> &StageSnapshot {
        &self.stages[stage.index()]
    }

    /// Total end-to-end query submissions recorded.
    pub fn queries_total(&self) -> u64 {
        self.queries.iter().sum()
    }

    /// Query submissions that ended with the given outcome.
    pub fn queries_with(&self, outcome: SpanOutcome) -> u64 {
        self.queries[outcome.index()]
    }

    /// The value of one work counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// The value of one high-water gauge.
    pub fn max(&self, gauge: MaxGauge) -> u64 {
        self.maxes[gauge.index()]
    }

    /// Add `other`'s totals into `self`. Counts sum; high-water marks
    /// take the maximum; `cache_entries` sums (distinct registries
    /// serve distinct caches).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.stages.iter_mut().zip(other.stages.iter()) {
            a.merge(b);
        }
        for (a, b) in self.queries.iter_mut().zip(other.queries.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.maxes.iter_mut().zip(other.maxes.iter()) {
            *a = (*a).max(*b);
        }
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.cache_entries = self.cache_entries.saturating_add(other.cache_entries);
    }

    /// Everything recorded since `earlier` was taken from the same
    /// registry: counts subtract pairwise; high-water marks and
    /// `cache_entries` keep their current (later) values, since neither
    /// is a monotone counter a difference would make sense for.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = *self;
        for (a, b) in out.stages.iter_mut().zip(earlier.stages.iter()) {
            *a = a.delta(b);
        }
        for (a, b) in out.queries.iter_mut().zip(earlier.queries.iter()) {
            *a = a.saturating_sub(*b);
        }
        for (a, b) in out.counters.iter_mut().zip(earlier.counters.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.cache_hits = out.cache_hits.saturating_sub(earlier.cache_hits);
        out.cache_misses = out.cache_misses.saturating_sub(earlier.cache_misses);
        out
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (counters as `nalix_*_total`, stage latency as a native
    /// histogram with log-2 `le` bounds in seconds).
    ///
    /// ```
    /// use obs::{MetricsRegistry, SpanOutcome, Stage};
    /// let reg = MetricsRegistry::new();
    /// reg.span(Stage::Eval).finish(SpanOutcome::Ok);
    /// let text = reg.snapshot().to_prometheus();
    /// assert!(text.contains("nalix_stage_spans_total{stage=\"eval\",outcome=\"ok\"} 1"));
    /// assert!(text.contains("nalix_stage_duration_seconds_count{stage=\"eval\"} 1"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(16 * 1024);
        // An infallible writer: `fmt::Write` on `String` never errors.
        macro_rules! w {
            ($($arg:tt)*) => { let _ = writeln!(out, $($arg)*); };
        }
        w!("# HELP nalix_queries_total End-to-end query submissions by outcome.");
        w!("# TYPE nalix_queries_total counter");
        for o in SpanOutcome::ALL {
            w!(
                "nalix_queries_total{{outcome=\"{}\"}} {}",
                o.name(),
                self.queries_with(o)
            );
        }
        w!("# HELP nalix_stage_spans_total Pipeline stage runs by stage and outcome.");
        w!("# TYPE nalix_stage_spans_total counter");
        for s in Stage::ALL {
            for o in SpanOutcome::ALL {
                w!(
                    "nalix_stage_spans_total{{stage=\"{}\",outcome=\"{}\"}} {}",
                    s.name(),
                    o.name(),
                    self.stage(s).with_outcome(o)
                );
            }
        }
        w!("# HELP nalix_stage_duration_seconds Wall time per stage run.");
        w!("# TYPE nalix_stage_duration_seconds histogram");
        for s in Stage::ALL {
            let hist = &self.stage(s).latency;
            let mut cum = 0u64;
            for (i, &b) in hist.buckets.iter().enumerate() {
                cum = cum.saturating_add(b);
                w!(
                    "nalix_stage_duration_seconds_bucket{{stage=\"{}\",le=\"{}\"}} {}",
                    s.name(),
                    bucket_upper_ns(i) as f64 / 1e9,
                    cum
                );
            }
            w!(
                "nalix_stage_duration_seconds_bucket{{stage=\"{}\",le=\"+Inf\"}} {}",
                s.name(),
                hist.count
            );
            w!(
                "nalix_stage_duration_seconds_sum{{stage=\"{}\"}} {}",
                s.name(),
                hist.sum_ns as f64 / 1e9
            );
            w!(
                "nalix_stage_duration_seconds_count{{stage=\"{}\"}} {}",
                s.name(),
                hist.count
            );
        }
        for c in Counter::ALL {
            w!("# TYPE nalix_{}_total counter", c.name());
            w!("nalix_{}_total {}", c.name(), self.counter(c));
        }
        w!("# TYPE nalix_cache_hits_total counter");
        w!("nalix_cache_hits_total {}", self.cache_hits);
        w!("# TYPE nalix_cache_misses_total counter");
        w!("nalix_cache_misses_total {}", self.cache_misses);
        w!("# TYPE nalix_cache_entries gauge");
        w!("nalix_cache_entries {}", self.cache_entries);
        for g in MaxGauge::ALL {
            w!("# TYPE nalix_{} gauge", g.name());
            w!("nalix_{} {}", g.name(), self.max(g));
        }
        out
    }
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot::new()
    }
}

/// Format a nanosecond duration for the human-readable table.
fn fmt_dur(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl fmt::Display for MetricsSnapshot {
    /// The per-stage breakdown table the bench bins print. Latency
    /// quantiles are log-2 bucket upper bounds (see
    /// [`HistogramSnapshot::quantile_ns`]); the mean is exact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queries: {} total", self.queries_total())?;
        for o in SpanOutcome::ALL {
            let n = self.queries_with(o);
            if n > 0 {
                write!(f, " · {} {}", o.name().replace('_', "-"), n)?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<11} {:>7} {:>7} {:>5} {:>9} {:>9} {:>9} {:>9}",
            "stage", "spans", "ok", "err", "p50", "p90", "p99", "mean"
        )?;
        for s in Stage::ALL {
            let st = self.stage(s);
            // Endpoint rows only appear once a server has actually
            // served traffic; pipeline rows always print.
            if s.is_http() && st.spans() == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<11} {:>7} {:>7} {:>5} {:>9} {:>9} {:>9} {:>9}",
                s.name(),
                st.spans(),
                st.ok(),
                st.errors(),
                fmt_dur(st.latency.quantile_ns(0.50)),
                fmt_dur(st.latency.quantile_ns(0.90)),
                fmt_dur(st.latency.quantile_ns(0.99)),
                fmt_dur(st.latency.mean_ns()),
            )?;
        }
        let lookups = self.cache_hits + self.cache_misses;
        let rate = if lookups == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / lookups as f64
        };
        writeln!(
            f,
            "translation cache: {} hits / {} misses / {} entries ({rate:.1}% hit rate)",
            self.cache_hits, self.cache_misses, self.cache_entries
        )?;
        let active: Vec<Counter> = Counter::ALL
            .into_iter()
            .filter(|&c| self.counter(c) > 0)
            .collect();
        if !active.is_empty() {
            writeln!(f, "counters:")?;
            for c in active {
                writeln!(f, "  {:<24} {:>12}", c.name(), self.counter(c))?;
            }
        }
        for g in MaxGauge::ALL {
            if self.max(g) > 0 {
                writeln!(f, "{}: {}", g.name().replace('_', " "), self.max(g))?;
            }
        }
        Ok(())
    }
}

/// True when `NALIX_OBS` asks for metrics to start disabled.
#[cfg(feature = "enabled")]
fn env_disabled() -> bool {
    match std::env::var("NALIX_OBS") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => false,
    }
}

#[cfg(feature = "enabled")]
mod live;
#[cfg(feature = "enabled")]
pub use live::{count_hot, flush_hot, global, global_handle, MetricsRegistry, StageSpan};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{count_hot, flush_hot, global, global_handle, MetricsRegistry, StageSpan};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's contents are below its exclusive upper bound.
        for ns in [0u64, 1, 5, 999, 1_000_000, 123_456_789_000] {
            assert!(ns < bucket_upper_ns(bucket_index(ns)));
        }
    }

    #[test]
    fn quantiles_are_monotone_bucket_bounds() {
        let mut h = HistogramSnapshot::new();
        h.count = 100;
        h.buckets[3] = 50; // [8, 16)
        h.buckets[7] = 40; // [128, 256)
        h.buckets[20] = 10; // [1<<20, 1<<21)
        assert_eq!(h.quantile_ns(0.0), 16);
        assert_eq!(h.quantile_ns(0.5), 16);
        assert_eq!(h.quantile_ns(0.9), 256);
        assert_eq!(h.quantile_ns(0.99), 1 << 21);
        assert_eq!(h.quantile_ns(1.0), 1 << 21);
        let empty = HistogramSnapshot::new();
        assert_eq!(empty.quantile_ns(0.5), 0);
        assert_eq!(empty.mean_ns(), 0);
    }

    #[test]
    fn snapshot_merge_and_delta_roundtrip() {
        let mut a = MetricsSnapshot::new();
        a.queries[SpanOutcome::Ok.index()] = 3;
        a.counters[Counter::LcaQueries.index()] = 10;
        a.maxes[MaxGauge::EvalDepthHighWater.index()] = 5;
        a.cache_hits = 2;
        let mut b = MetricsSnapshot::new();
        b.queries[SpanOutcome::Ok.index()] = 4;
        b.counters[Counter::LcaQueries.index()] = 1;
        b.maxes[MaxGauge::EvalDepthHighWater.index()] = 9;
        b.cache_misses = 7;

        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.queries_with(SpanOutcome::Ok), 7);
        assert_eq!(sum.counter(Counter::LcaQueries), 11);
        assert_eq!(sum.max(MaxGauge::EvalDepthHighWater), 9);
        assert_eq!((sum.cache_hits, sum.cache_misses), (2, 7));

        let d = sum.delta(&a);
        assert_eq!(d.queries_with(SpanOutcome::Ok), 4);
        assert_eq!(d.counter(Counter::LcaQueries), 1);
        assert_eq!((d.cache_hits, d.cache_misses), (0, 7));
        // High-water marks keep the later value rather than subtract.
        assert_eq!(d.max(MaxGauge::EvalDepthHighWater), 9);
    }

    #[test]
    fn display_and_prometheus_render() {
        let mut s = MetricsSnapshot::new();
        s.queries[SpanOutcome::Ok.index()] = 2;
        s.queries[SpanOutcome::CacheHit.index()] = 1;
        s.stages[Stage::Parse.index()].outcomes[SpanOutcome::Ok.index()] = 2;
        s.stages[Stage::Parse.index()].latency.count = 2;
        s.stages[Stage::Parse.index()].latency.sum_ns = 3_000;
        s.stages[Stage::Parse.index()].latency.buckets[10] = 2;
        s.counters[Counter::Tokens.index()] = 17;
        s.cache_hits = 1;
        s.cache_misses = 2;
        s.cache_entries = 2;
        let table = s.to_string();
        assert!(table.contains("queries: 3 total · ok 2 · cache-hit 1"));
        assert!(table.contains("parse"));
        assert!(table.contains("tokens"));
        assert!(table.contains("33.3% hit rate"));
        let prom = s.to_prometheus();
        assert!(prom.contains("nalix_queries_total{outcome=\"cache_hit\"} 1"));
        assert!(prom.contains("nalix_tokens_total 17"));
        assert!(prom.contains("nalix_stage_duration_seconds_count{stage=\"parse\"} 2"));
        // Bucket lines are cumulative and end at the total count.
        assert!(prom.contains("nalix_stage_duration_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(999), "999ns");
        assert_eq!(fmt_dur(1_500), "1.5µs");
        assert_eq!(fmt_dur(2_500_000), "2.5ms");
        assert_eq!(fmt_dur(3_210_000_000), "3.21s");
    }
}
