//! The compiled-out implementation, used without the `enabled` feature.
//!
//! Every type here is zero-sized and every method an empty inline
//! no-op, so instrumented call sites optimise away entirely — spans do
//! not read the clock, counters do not touch memory. The API mirrors
//! `live.rs` exactly; consumer code compiles unchanged in either mode.

use crate::{Counter, MaxGauge, MetricsSnapshot, SpanOutcome, Stage};
use std::marker::PhantomData;
use std::sync::Arc;

/// The metrics store, compiled out: a zero-sized stand-in whose
/// recording methods are empty and whose snapshot is always all-zero.
/// See the `enabled`-feature documentation for the live semantics.
#[derive(Debug, Default, Clone, Copy)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// A fresh registry (zero-sized in this configuration).
    #[inline(always)]
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// Always `false`: recording is compiled out.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn set_enabled(&self, _on: bool) {}

    /// An inert span that does not read the clock.
    #[inline(always)]
    pub fn span(&self, _stage: Stage) -> StageSpan<'_> {
        StageSpan(PhantomData)
    }

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn record_query(&self, _outcome: SpanOutcome) {}

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn add(&self, _counter: Counter, _n: u64) {}

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn record_max(&self, _gauge: MaxGauge, _value: u64) {}

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn cache_hit(&self) {}

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn cache_miss(&self) {}

    /// Always `(0, 0)`: recording is compiled out.
    #[inline(always)]
    pub fn cache_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Always the all-zero snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::new()
    }
}

/// The span guard, compiled out: zero-sized, never reads the clock.
#[derive(Debug)]
pub struct StageSpan<'r>(PhantomData<&'r ()>);

impl StageSpan<'_> {
    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn set_outcome(&mut self, _outcome: SpanOutcome) {}

    /// No-op: recording is compiled out.
    #[inline(always)]
    pub fn finish(self, _outcome: SpanOutcome) {}
}

/// The process-global registry (zero-sized in this configuration).
#[inline(always)]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry;
    &GLOBAL
}

/// A handle to the global registry; the `Arc` wraps a zero-sized value.
#[inline(always)]
pub fn global_handle() -> Arc<MetricsRegistry> {
    Arc::new(MetricsRegistry)
}

/// Hot-path counting: compiled to nothing.
#[inline(always)]
pub fn count_hot(_counter: Counter, _n: u64) {}

/// Hot-cell flush: compiled to nothing.
#[inline(always)]
pub fn flush_hot() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        assert_eq!(std::mem::size_of::<StageSpan<'_>>(), 0);
        let reg = MetricsRegistry::new();
        reg.span(Stage::Eval).finish(SpanOutcome::Ok);
        reg.record_query(SpanOutcome::Ok);
        reg.add(Counter::Tokens, 10);
        reg.record_max(MaxGauge::EvalDepthHighWater, 3);
        reg.cache_hit();
        assert_eq!(reg.snapshot(), MetricsSnapshot::new());
        assert_eq!(reg.cache_counts(), (0, 0));
        assert!(!reg.is_enabled());
    }
}
