//! Document sources: the builtin corpus generators and XML files on
//! disk, behind one resolver.
//!
//! This is the single home of the dataset-name → [`Document`] mapping
//! that used to be copy-pasted across `nalixd`, the server crate docs,
//! and the loopback tests. [`load_dataset`] keeps the old one-call
//! convenience; [`DocSpec`] is the parsed form the store registers and
//! reloads from.

use crate::error::StoreError;
use std::path::PathBuf;
use std::sync::Arc;
use xmldb::Document;

/// The three corpora that ship compiled into the binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// The bibliography sample from the paper's running examples.
    Bib,
    /// The movies-and-books corpus (the paper's Sec. 5 user study
    /// domain plus the heterogeneous `mqf()` examples).
    Movies,
    /// A generated DBLP subset sized like the paper's experiment
    /// document (Sec. 6: 73,142 nodes).
    Dblp,
}

impl Builtin {
    /// Every builtin, in registration order.
    pub const ALL: [Builtin; 3] = [Builtin::Bib, Builtin::Movies, Builtin::Dblp];

    /// The registry name (`bib`, `movies`, `dblp`).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Bib => "bib",
            Builtin::Movies => "movies",
            Builtin::Dblp => "dblp",
        }
    }

    /// Parses a builtin name; `None` for anything else.
    pub fn from_name(name: &str) -> Option<Builtin> {
        match name {
            "bib" => Some(Builtin::Bib),
            "movies" => Some(Builtin::Movies),
            "dblp" => Some(Builtin::Dblp),
            _ => None,
        }
    }

    /// Generates the corpus. Deterministic: repeated calls build
    /// bit-identical documents, which is what makes hot reload of a
    /// builtin observationally a no-op (and testable).
    pub fn build(self) -> Document {
        match self {
            Builtin::Bib => xmldb::datasets::bib::bib(),
            Builtin::Movies => xmldb::datasets::movies::movies_and_books(),
            Builtin::Dblp => {
                xmldb::datasets::dblp::generate(&xmldb::datasets::dblp::DblpConfig::default())
            }
        }
    }
}

/// Where a named document comes from: a compiled-in generator, an XML
/// file on disk, or a document the caller already built in memory. The
/// store keeps the spec after loading so the document can be evicted
/// cold and lazily rebuilt, or hot-reloaded from the same source.
#[derive(Debug, Clone)]
pub enum DocSpec {
    /// One of the compiled-in corpora.
    Builtin(Builtin),
    /// An XML file, re-read from disk on every (re)load.
    File(PathBuf),
    /// A caller-supplied document (e.g. a generated benchmark corpus).
    /// A reload rebuilds the pipeline over the *same* shared document.
    Memory {
        /// Shown in listings and errors in place of a path.
        label: String,
        /// The shared document; must be finalized.
        doc: Arc<Document>,
    },
}

impl PartialEq for DocSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DocSpec::Builtin(a), DocSpec::Builtin(b)) => a == b,
            (DocSpec::File(a), DocSpec::File(b)) => a == b,
            (DocSpec::Memory { label: a, doc: da }, DocSpec::Memory { label: b, doc: db }) => {
                a == b && Arc::ptr_eq(da, db)
            }
            _ => false,
        }
    }
}

impl Eq for DocSpec {}

impl DocSpec {
    /// A spec over a document the caller already holds. `label` stands
    /// in for the source path in listings (`memory:<label>` style
    /// strings read well).
    pub fn memory(label: impl Into<String>, doc: impl Into<Arc<Document>>) -> DocSpec {
        DocSpec::Memory {
            label: label.into(),
            doc: doc.into(),
        }
    }
    /// Interprets a source string: a builtin name (`bib`, `movies`,
    /// `dblp`) or, failing that, a filesystem path.
    pub fn parse(source: &str) -> DocSpec {
        match Builtin::from_name(source) {
            Some(b) => DocSpec::Builtin(b),
            None => DocSpec::File(PathBuf::from(source)),
        }
    }

    /// A stable human-readable description (`builtin:bib`, the path,
    /// or `memory:<label>`), shown in `GET /docs` listings and error
    /// messages.
    pub fn describe(&self) -> String {
        match self {
            DocSpec::Builtin(b) => format!("builtin:{}", b.name()),
            DocSpec::File(p) => p.display().to_string(),
            DocSpec::Memory { label, .. } => format!("memory:{label}"),
        }
    }

    /// Builds or reads the document. File errors distinguish the
    /// common failure modes (missing, permission, not-a-file, bad
    /// XML) instead of flattening everything into one string.
    pub fn load(&self) -> Result<Arc<Document>, StoreError> {
        match self {
            DocSpec::Builtin(b) => Ok(Arc::new(b.build())),
            DocSpec::Memory { label, doc } => {
                if doc.is_finalized() {
                    Ok(Arc::clone(doc))
                } else {
                    Err(StoreError::Load {
                        source: format!("memory:{label}"),
                        detail: "document is not finalized".to_string(),
                    })
                }
            }
            DocSpec::File(path) => {
                let source = path.display().to_string();
                let xml = std::fs::read_to_string(path).map_err(|e| StoreError::Load {
                    source: source.clone(),
                    detail: match e.kind() {
                        std::io::ErrorKind::NotFound => {
                            "file not found (check the path is absolute and spelled correctly)"
                                .to_string()
                        }
                        std::io::ErrorKind::PermissionDenied => {
                            "permission denied (the server process cannot read this file)"
                                .to_string()
                        }
                        std::io::ErrorKind::IsADirectory => {
                            "path is a directory, not an XML file".to_string()
                        }
                        _ => format!("read failed: {e}"),
                    },
                })?;
                Document::parse_str(&xml)
                    .map(Arc::new)
                    .map_err(|e| StoreError::Load {
                        source,
                        detail: format!("XML parse error: {e}"),
                    })
            }
        }
    }
}

/// Loads a named built-in dataset or parses an XML file from disk —
/// the shared resolver behind `nalixd --dataset`, `PUT /docs/:name`,
/// and every test that needs a corpus by name.
pub fn load_dataset(source: &str) -> Result<Document, StoreError> {
    // `parse` never yields `Memory`, so the Arc from `load` is always
    // uniquely held; the clone branch is unreachable in practice but
    // keeps this panic-free by construction.
    DocSpec::parse(source)
        .load()
        .map(|doc| Arc::try_unwrap(doc).unwrap_or_else(|shared| (*shared).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_round_trip() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
            assert_eq!(DocSpec::parse(b.name()), DocSpec::Builtin(b));
        }
        assert_eq!(
            DocSpec::parse("/tmp/x.xml"),
            DocSpec::File(PathBuf::from("/tmp/x.xml"))
        );
    }

    #[test]
    fn builtins_load_and_are_deterministic() {
        for b in Builtin::ALL {
            let a = b.build();
            let again = b.build();
            assert!(a.is_finalized());
            assert_eq!(a.stats(), again.stats(), "{} not deterministic", b.name());
        }
    }

    #[test]
    fn missing_file_reports_actionable_error() {
        let err = load_dataset("/no/such/file.xml").unwrap_err();
        assert_eq!(err.code(), "store.load_failed");
        let msg = err.to_string();
        assert!(msg.contains("/no/such/file.xml"), "{msg}");
        assert!(msg.contains("file not found"), "{msg}");
    }

    #[test]
    fn directory_and_bad_xml_are_distinguished() {
        let dir_err = load_dataset("/tmp").unwrap_err();
        assert!(dir_err.to_string().contains("directory"), "{dir_err}");

        let path = std::env::temp_dir().join("store_spec_bad.xml");
        std::fs::write(&path, "<open><unclosed></open>").unwrap();
        let err = DocSpec::File(path.clone()).load().unwrap_err();
        assert!(err.to_string().contains("XML parse error"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_spec_loads_real_xml() {
        let path = std::env::temp_dir().join("store_spec_ok.xml");
        std::fs::write(&path, "<bib><book><title>T</title></book></bib>").unwrap();
        let doc = DocSpec::File(path.clone()).load().unwrap();
        assert!(doc.is_finalized());
        assert_eq!(doc.nodes_labeled("title").len(), 1);
        let _ = std::fs::remove_file(path);
    }
}
