//! Typed store errors with stable codes, mirroring the
//! `nalix::QueryError` contract: every failure carries a machine
//! `code()`, a human message, and a `suggestion()` the server can
//! forward verbatim.

use std::fmt;

/// Everything that can go wrong talking to a [`DocumentStore`].
///
/// [`DocumentStore`]: crate::DocumentStore
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named document is not registered (never loaded, or evicted).
    /// The HTTP layer maps this to `404 Not Found`.
    UnknownDocument {
        /// The name the caller asked for.
        name: String,
    },
    /// The document name is empty, too long, or contains characters
    /// outside `[A-Za-z0-9._-]`. Mapped to `400 Bad Request`.
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// Loading the document source failed — unreadable path, malformed
    /// XML, or an unknown builtin. Mapped to `400 Bad Request`.
    Load {
        /// What the store tried to load (a path or `builtin:<name>`).
        source: String,
        /// Why it failed, with enough detail to act on.
        detail: String,
    },
    /// The default document cannot be evicted: `/query` without a
    /// `"doc"` field must keep working. Mapped to `400 Bad Request`.
    DefaultProtected {
        /// The default document's name.
        name: String,
    },
    /// An optimistic-concurrency update named a generation that is no
    /// longer current — another writer committed first. Mapped to
    /// `409 Conflict`.
    Conflict {
        /// The document the update addressed.
        name: String,
        /// The generation the caller expected to update.
        expected: u64,
        /// The generation actually resident.
        actual: u64,
    },
    /// An edit in an update batch failed validation (unknown node,
    /// kind mismatch, invalid name, …); the document is unchanged.
    /// Mapped to `400 Bad Request`.
    UpdateRejected {
        /// The document the update addressed.
        name: String,
        /// The validator's message for the offending edit.
        detail: String,
    },
}

impl StoreError {
    /// Stable machine-readable code, suitable for clients to match on.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::UnknownDocument { .. } => "store.unknown_document",
            StoreError::InvalidName { .. } => "store.invalid_name",
            StoreError::Load { .. } => "store.load_failed",
            StoreError::DefaultProtected { .. } => "store.default_protected",
            StoreError::Conflict { .. } => "store.conflict",
            StoreError::UpdateRejected { .. } => "store.update_rejected",
        }
    }

    /// A one-line actionable hint, in the spirit of the paper's Sec. 4
    /// feedback contract: never fail without saying what to try next.
    pub fn suggestion(&self) -> &'static str {
        match self {
            StoreError::UnknownDocument { .. } => {
                "list available documents with GET /docs, or load one with PUT /docs/<name>"
            }
            StoreError::InvalidName { .. } => {
                "use 1-64 characters from A-Z, a-z, 0-9, '.', '_', or '-'"
            }
            StoreError::Load { .. } => {
                "pass a builtin name (bib, movies, dblp) or a readable XML file path"
            }
            StoreError::DefaultProtected { .. } => {
                "reload it with PUT /docs/<name> instead, or evict a different document"
            }
            StoreError::Conflict { .. } => {
                "re-read the document at its current generation and resubmit the edits"
            }
            StoreError::UpdateRejected { .. } => {
                "address nodes by their current pre rank and check the edit against the detail"
            }
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownDocument { name } => {
                write!(f, "no document named {name:?} is loaded or registered")
            }
            StoreError::InvalidName { name } => {
                write!(f, "invalid document name {name:?}")
            }
            StoreError::Load { source, detail } => {
                write!(f, "cannot load {source}: {detail}")
            }
            StoreError::DefaultProtected { name } => {
                write!(f, "{name:?} is the default document and cannot be evicted")
            }
            StoreError::Conflict {
                name,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "update to {name:?} expected generation {expected} but {actual} is resident"
                )
            }
            StoreError::UpdateRejected { name, detail } => {
                write!(f, "update to {name:?} rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
