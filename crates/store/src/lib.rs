#![warn(missing_docs)]
// The store sits on the query path: a panic while loading or swapping
// a document would take a server worker down mid-request, so the
// escape hatches are denied exactly as in the other query-path crates.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # store — a concurrent multi-document registry for NaLIX pipelines
//!
//! The paper's claim to being *generic* (Sec. 2, 5) rests on
//! Schema-Free XQuery: the same NL pipeline answers questions over any
//! XML corpus. This crate makes that operational. A [`DocumentStore`]
//! owns a registry of named corpora — the compiled-in `bib` / `movies`
//! / `dblp` generators plus arbitrary XML files — and keeps one fully
//! wired pipeline per document: the parsed [`xmldb::Document`] with
//! its structural index, the element/attribute catalog, a persistent
//! `xquery` engine with its value index, a bounded translation cache,
//! and an isolated per-document [`obs::MetricsRegistry`].
//!
//! ## Snapshot semantics
//!
//! Readers never block behind loads. [`DocumentStore::get`] hands out
//! an `Arc<DocPipeline>` *snapshot*; a concurrent
//! [`DocumentStore::put`] builds the replacement pipeline off-lock and
//! swaps the slot pointer atomically (epoch-style publication).
//! In-flight queries finish against whichever snapshot they observed —
//! bit-identically to a process that only ever had that snapshot —
//! while new requests see the new generation. Nothing is torn down
//! under a reader: the old pipeline lives for as long as any request
//! still holds its `Arc`.
//!
//! ## Counter accounting
//!
//! Each pipeline records into its own registry, so per-document load
//! is directly observable. Evicting or replacing a document must not
//! make the process totals go backwards, so retired pipelines are
//! parked until their last in-flight reader drops, then folded into a
//! retained base snapshot. [`DocumentStore::snapshot`] therefore is
//! monotone: store-level counters + every live pipeline + everything
//! ever retired.
//!
//! ## Capacity
//!
//! Loaded documents beyond [`StoreConfig::max_resident`] are evicted
//! *cold*: the coldest (least-recently-used) non-default pipeline is
//! dropped but its registration and source spec are kept, so the next
//! query for it lazily rebuilds. Explicit eviction
//! ([`DocumentStore::evict`]) removes the registration entirely —
//! later queries get a typed [`StoreError::UnknownDocument`].
//!
//! ```
//! use store::{DocumentStore, StoreConfig};
//!
//! let store = DocumentStore::with_builtins(StoreConfig::default());
//! let bib = store.get(None).unwrap(); // default document
//! let answers = bib.nalix().ask("Return every title.").unwrap();
//! assert!(!answers.is_empty());
//!
//! // Hot reload: readers holding `bib` are unaffected.
//! let put = store.put("bib", store::DocSpec::parse("bib")).unwrap();
//! assert!(put.reloaded);
//! assert_eq!(put.pipeline.generation(), bib.generation() + 1);
//! assert_eq!(bib.nalix().ask("Return every title.").unwrap(), answers);
//! ```

mod error;
mod spec;

pub use error::StoreError;
pub use spec::{load_dataset, Builtin, DocSpec};

use nalix::Nalix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xmldb::document::DocStats;
use xmldb::Document;

/// Tunables for a [`DocumentStore`], with production defaults.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The document served when a request names none. Protected from
    /// eviction.
    pub default_doc: String,
    /// Maximum number of *loaded* pipelines held at once; beyond it
    /// the coldest non-default document is unloaded (registration and
    /// spec are kept for lazy reload). Clamped to at least 1.
    pub max_resident: usize,
    /// Translation cache capacity for each per-document pipeline
    /// (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            default_doc: "bib".to_string(),
            max_resident: 8,
            cache_capacity: nalix::DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One immutable, fully wired pipeline snapshot: document + catalog +
/// engine + translation cache + isolated metrics registry.
///
/// Obtained from [`DocumentStore::get`]; hold the `Arc` for the
/// duration of one request and drop it. A snapshot outlives any
/// reload or eviction that happens while it is held.
pub struct DocPipeline {
    name: String,
    generation: u64,
    source: String,
    stats: DocStats,
    nalix: Nalix,
}

impl DocPipeline {
    /// The registry name this snapshot was loaded under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone per-name load generation: 1 on first load, +1 per
    /// reload. Distinguishes snapshots across a hot swap.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Where the document came from (`builtin:bib` or a file path).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Size statistics captured at load time.
    pub fn stats(&self) -> DocStats {
        self.stats
    }

    /// The NL pipeline over this document.
    pub fn nalix(&self) -> &Nalix {
        &self.nalix
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        self.nalix.doc()
    }
}

impl std::fmt::Debug for DocPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocPipeline")
            .field("name", &self.name)
            .field("generation", &self.generation)
            .field("source", &self.source)
            .field("nodes", &self.stats.total_nodes())
            .finish()
    }
}

/// What [`DocumentStore::put`] did.
#[derive(Debug)]
pub struct PutReport {
    /// The freshly built pipeline, already published.
    pub pipeline: Arc<DocPipeline>,
    /// True when an older generation was replaced (hot reload), false
    /// on first load under this name.
    pub reloaded: bool,
}

/// One line of a [`DocumentStore::list`] listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocStatus {
    /// Registry name.
    pub name: String,
    /// Source description (`builtin:bib` or a path).
    pub source: String,
    /// True when a pipeline is currently resident.
    pub loaded: bool,
    /// Load generation (0 if never loaded).
    pub generation: u64,
    /// Total document nodes, when loaded.
    pub nodes: Option<usize>,
    /// Times this document was requested via [`DocumentStore::get`].
    pub hits: u64,
    /// True for the store's default document.
    pub is_default: bool,
}

/// One registered document: its source spec, the current pipeline (if
/// resident), and bookkeeping for lazy loads and LRU eviction.
struct Slot {
    name: String,
    spec: Mutex<DocSpec>,
    /// The published snapshot. Readers clone the `Arc` under the read
    /// lock (held for nanoseconds); writers build the replacement
    /// entirely off-lock and swap under the write lock.
    pipeline: RwLock<Option<Arc<DocPipeline>>>,
    /// Serializes builds for this slot so a stampede of first requests
    /// loads the document once, not once per thread.
    loading: Mutex<()>,
    generation: AtomicU64,
    hits: AtomicU64,
    /// Store-clock tick of the most recent `get`, for LRU eviction.
    last_used: AtomicU64,
}

/// Retired pipelines and the folded totals of those fully quiesced.
#[derive(Default)]
struct Retired {
    /// Counters of retired pipelines whose last reader has dropped.
    base: obs::MetricsSnapshot,
    /// Retired pipelines still (potentially) serving in-flight
    /// requests; folded into `base` once uniquely held.
    parked: Vec<Arc<DocPipeline>>,
}

/// A concurrent registry of named documents, each with its own NaLIX
/// pipeline. See the crate docs for semantics; `Send + Sync`, designed
/// to sit behind one `Arc` shared by every server worker.
pub struct DocumentStore {
    config: StoreConfig,
    slots: RwLock<HashMap<String, Arc<Slot>>>,
    /// Store-level registry: `store_*` spans and counters, plus the
    /// HTTP-layer counters when a server fronts this store.
    metrics: Arc<obs::MetricsRegistry>,
    retired: Mutex<Retired>,
    clock: AtomicU64,
}

// Lock poisoning can only happen if a panic escaped into a locked
// section; the store's sections are tiny and panic-free, and the data
// under them (a pointer swap, a spec, a snapshot) is valid at every
// step, so recovering the guard is always safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl DocumentStore {
    /// An empty store (no documents registered). Register sources with
    /// [`DocumentStore::register`] or [`DocumentStore::put`].
    pub fn new(config: StoreConfig) -> Self {
        DocumentStore {
            config,
            slots: RwLock::new(HashMap::new()),
            metrics: Arc::new(obs::MetricsRegistry::new()),
            retired: Mutex::new(Retired::default()),
            clock: AtomicU64::new(0),
        }
    }

    /// A store with the three builtin corpora registered (not yet
    /// loaded — the first query for each builds it).
    pub fn with_builtins(config: StoreConfig) -> Self {
        let store = DocumentStore::new(config);
        for b in Builtin::ALL {
            // Builtin names are always valid; registration cannot fail.
            let _ = store.register(b.name(), DocSpec::Builtin(b));
        }
        store
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The default document's name.
    pub fn default_doc(&self) -> &str {
        &self.config.default_doc
    }

    /// The store-level metrics registry (`store_*` families; the HTTP
    /// server also records its `http_*` counters here).
    pub fn metrics_handle(&self) -> Arc<obs::MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Registers a source under `name` without loading it. Existing
    /// registrations are left untouched (use [`DocumentStore::put`]
    /// to replace). Returns whether a new registration was created.
    pub fn register(&self, name: &str, spec: DocSpec) -> Result<bool, StoreError> {
        validate_name(name)?;
        let mut slots = write(&self.slots);
        if slots.contains_key(name) {
            return Ok(false);
        }
        slots.insert(name.to_string(), Arc::new(new_slot(name, spec)));
        Ok(true)
    }

    /// The pipeline snapshot for `name` (`None` → the default
    /// document), lazily loading it on first use. This is the hot
    /// path: when the pipeline is resident it costs two atomic bumps
    /// and an `Arc` clone under a read lock.
    pub fn get(&self, name: Option<&str>) -> Result<Arc<DocPipeline>, StoreError> {
        let name = name.unwrap_or(&self.config.default_doc);
        let Some(slot) = read(&self.slots).get(name).cloned() else {
            self.metrics.add(obs::Counter::StoreMisses, 1);
            return Err(StoreError::UnknownDocument {
                name: name.to_string(),
            });
        };
        slot.hits.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        if let Some(p) = read(&slot.pipeline).clone() {
            return Ok(p);
        }
        // Cold: build once, whoever gets here first.
        let guard = lock(&slot.loading);
        if let Some(p) = read(&slot.pipeline).clone() {
            return Ok(p); // another thread built it while we waited
        }
        let pipeline = self.build_spanned(&slot, obs::Stage::StoreLoad)?;
        self.metrics.add(obs::Counter::StoreLoads, 1);
        *write(&slot.pipeline) = Some(Arc::clone(&pipeline));
        drop(guard);
        self.shrink_to_capacity();
        Ok(pipeline)
    }

    /// Loads (or hot-reloads) `name` from `spec` and atomically
    /// publishes the new pipeline. In-flight readers keep their old
    /// snapshot; its counters are retired, never lost.
    pub fn put(&self, name: &str, spec: DocSpec) -> Result<PutReport, StoreError> {
        validate_name(name)?;
        let slot = {
            let mut slots = write(&self.slots);
            Arc::clone(
                slots
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(new_slot(name, spec.clone()))),
            )
        };
        let guard = lock(&slot.loading);
        *lock(&slot.spec) = spec;
        let reloaded = read(&slot.pipeline).is_some();
        let stage = if reloaded {
            obs::Stage::StoreReload
        } else {
            obs::Stage::StoreLoad
        };
        let pipeline = self.build_spanned(&slot, stage)?;
        let old = write(&slot.pipeline).replace(Arc::clone(&pipeline));
        if let Some(old) = old {
            self.retire(old);
            self.metrics.add(obs::Counter::StoreReloads, 1);
        } else {
            self.metrics.add(obs::Counter::StoreLoads, 1);
        }
        drop(guard);
        self.shrink_to_capacity();
        Ok(PutReport { pipeline, reloaded })
    }

    /// Removes `name` from the registry entirely: the pipeline (if
    /// resident) is retired and later [`DocumentStore::get`] calls
    /// return [`StoreError::UnknownDocument`]. The default document
    /// is protected.
    pub fn evict(&self, name: &str) -> Result<(), StoreError> {
        if name == self.config.default_doc {
            return Err(StoreError::DefaultProtected {
                name: name.to_string(),
            });
        }
        let Some(slot) = write(&self.slots).remove(name) else {
            return Err(StoreError::UnknownDocument {
                name: name.to_string(),
            });
        };
        if let Some(old) = write(&slot.pipeline).take() {
            self.retire(old);
        }
        self.metrics.add(obs::Counter::StoreEvictions, 1);
        Ok(())
    }

    /// One status line per registered document, sorted by name.
    pub fn list(&self) -> Vec<DocStatus> {
        let slots: Vec<Arc<Slot>> = read(&self.slots).values().cloned().collect();
        let mut out: Vec<DocStatus> = slots
            .iter()
            .map(|slot| {
                let pipeline = read(&slot.pipeline).clone();
                DocStatus {
                    name: slot.name.clone(),
                    source: lock(&slot.spec).describe(),
                    loaded: pipeline.is_some(),
                    generation: slot.generation.load(Ordering::Relaxed),
                    nodes: pipeline.map(|p| p.stats().total_nodes()),
                    hits: slot.hits.load(Ordering::Relaxed),
                    is_default: slot.name == self.config.default_doc,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of currently loaded pipelines.
    pub fn resident(&self) -> usize {
        read(&self.slots)
            .values()
            .filter(|s| read(&s.pipeline).is_some())
            .count()
    }

    /// The process-wide view: store-level counters merged with every
    /// live pipeline's registry and with everything ever retired.
    /// Monotone across reloads and evictions.
    pub fn snapshot(&self) -> obs::MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        {
            let mut retired = lock(&self.retired);
            // Fold pipelines whose last in-flight reader has dropped:
            // their counters are final, so they move into the retained
            // base and the pipeline memory is released.
            let parked = std::mem::take(&mut retired.parked);
            for p in parked {
                match Arc::try_unwrap(p) {
                    Ok(quiesced) => retired.base.merge(&quiesced.nalix.metrics()),
                    Err(still_shared) => retired.parked.push(still_shared),
                }
            }
            snap.merge(&retired.base);
            for p in &retired.parked {
                snap.merge(&p.nalix.metrics());
            }
        }
        let slots: Vec<Arc<Slot>> = read(&self.slots).values().cloned().collect();
        for slot in slots {
            if let Some(p) = read(&slot.pipeline).clone() {
                snap.merge(&p.nalix.metrics());
            }
        }
        snap
    }

    /// Builds a fresh pipeline for `slot` under a `store_load` /
    /// `store_reload` stage span.
    fn build_spanned(
        &self,
        slot: &Slot,
        stage: obs::Stage,
    ) -> Result<Arc<DocPipeline>, StoreError> {
        let mut span = self.metrics.span(stage);
        match self.build(slot) {
            Ok(p) => {
                span.set_outcome(obs::SpanOutcome::Ok);
                Ok(p)
            }
            Err(e) => {
                span.set_outcome(obs::SpanOutcome::EvalError);
                Err(e)
            }
        }
    }

    /// The expensive part, deliberately outside every lock except the
    /// slot's own `loading` mutex: source load/parse, index build,
    /// catalog build, engine construction.
    fn build(&self, slot: &Slot) -> Result<Arc<DocPipeline>, StoreError> {
        let spec = lock(&slot.spec).clone();
        let doc = spec.load()?;
        let stats = doc.stats();
        let nalix = Nalix::with_metrics(doc, Arc::new(obs::MetricsRegistry::new()))
            .with_cache_capacity(self.config.cache_capacity);
        let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Arc::new(DocPipeline {
            name: slot.name.clone(),
            generation,
            source: spec.describe(),
            stats,
            nalix,
        }))
    }

    /// Parks a replaced/evicted pipeline until its readers drain.
    fn retire(&self, old: Arc<DocPipeline>) {
        lock(&self.retired).parked.push(old);
    }

    /// Unloads coldest non-default pipelines until within capacity.
    /// Registrations and specs survive, so evicted-cold documents
    /// lazily rebuild on their next query.
    fn shrink_to_capacity(&self) {
        let max = self.config.max_resident.max(1);
        loop {
            let victim = {
                let slots = read(&self.slots);
                let loaded: Vec<&Arc<Slot>> = slots
                    .values()
                    .filter(|s| read(&s.pipeline).is_some())
                    .collect();
                if loaded.len() <= max {
                    return;
                }
                loaded
                    .into_iter()
                    .filter(|s| s.name != self.config.default_doc)
                    .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                    .cloned()
            };
            let Some(victim) = victim else { return };
            let guard = lock(&victim.loading);
            if let Some(old) = write(&victim.pipeline).take() {
                self.retire(old);
                self.metrics.add(obs::Counter::StoreEvictions, 1);
            }
            drop(guard);
        }
    }
}

fn new_slot(name: &str, spec: DocSpec) -> Slot {
    Slot {
        name: name.to_string(),
        spec: Mutex::new(spec),
        pipeline: RwLock::new(None),
        loading: Mutex::new(()),
        generation: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        last_used: AtomicU64::new(0),
    }
}

/// Names travel in URLs (`PUT /docs/:name`) and metrics labels; keep
/// them to one path-segment-safe token.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName {
            name: name.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StoreConfig {
        StoreConfig {
            default_doc: "bib".to_string(),
            max_resident: 2,
            cache_capacity: 64,
        }
    }

    #[test]
    fn lazy_load_and_default() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        assert_eq!(store.resident(), 0);
        let by_default = store.get(None).unwrap();
        let by_name = store.get(Some("bib")).unwrap();
        assert!(Arc::ptr_eq(&by_default, &by_name), "same snapshot");
        assert_eq!(by_default.generation(), 1);
        assert_eq!(store.resident(), 1);
    }

    #[test]
    fn unknown_document_is_typed_and_counted() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let err = store.get(Some("nope")).unwrap_err();
        assert_eq!(err.code(), "store.unknown_document");
        assert_eq!(store.snapshot().counter(obs::Counter::StoreMisses), 1);
    }

    #[test]
    fn invalid_names_rejected() {
        let store = DocumentStore::new(StoreConfig::default());
        for bad in ["", "a/b", "a b", &"x".repeat(65)] {
            let err = store.put(bad, DocSpec::parse("bib")).unwrap_err();
            assert_eq!(err.code(), "store.invalid_name", "{bad:?}");
        }
    }

    #[test]
    fn reload_bumps_generation_and_keeps_old_snapshot_working() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let old = store.get(Some("movies")).unwrap();
        let before = old
            .nalix()
            .ask("Find all the movies directed by Ron Howard.")
            .unwrap();
        let put = store.put("movies", DocSpec::parse("movies")).unwrap();
        assert!(put.reloaded);
        assert_eq!(put.pipeline.generation(), 2);
        // The retired snapshot still answers, bit-identically.
        let after_on_old = old
            .nalix()
            .ask("Find all the movies directed by Ron Howard.")
            .unwrap();
        assert_eq!(before, after_on_old);
        // New gets see the new generation.
        assert_eq!(store.get(Some("movies")).unwrap().generation(), 2);
    }

    #[test]
    fn evict_removes_registration_and_protects_default() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        store.get(Some("movies")).unwrap();
        store.evict("movies").unwrap();
        assert_eq!(
            store.get(Some("movies")).unwrap_err().code(),
            "store.unknown_document"
        );
        assert_eq!(
            store.evict("bib").unwrap_err().code(),
            "store.default_protected"
        );
        assert_eq!(
            store.evict("ghost").unwrap_err().code(),
            "store.unknown_document"
        );
    }

    #[test]
    fn capacity_unloads_coldest_but_keeps_registration() {
        let store = DocumentStore::with_builtins(small_config());
        store.get(Some("bib")).unwrap();
        store.get(Some("movies")).unwrap();
        store.get(Some("dblp")).unwrap(); // over capacity → unload one
        assert!(store.resident() <= 2);
        // The default is never the victim.
        let listing = store.list();
        let bib = listing.iter().find(|d| d.name == "bib").unwrap();
        assert!(bib.loaded);
        // The unloaded document is still registered and lazily rebuilds.
        let movies = store.get(Some("movies")).unwrap();
        assert!(movies.nalix().ask("Return every title.").is_ok());
    }

    #[test]
    fn snapshot_is_monotone_across_reload_and_evict() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let p = store.get(Some("movies")).unwrap();
        p.nalix().ask("Return every title.").unwrap();
        let before = store.snapshot();
        store.put("movies", DocSpec::parse("movies")).unwrap();
        drop(p); // quiesce the retired pipeline
        let mid = store.snapshot();
        assert!(mid.queries_total() >= before.queries_total());
        store.evict("movies").unwrap();
        let after = store.snapshot();
        assert!(after.queries_total() >= mid.queries_total());
        assert_eq!(after.counter(obs::Counter::StoreLoads), 1);
        assert_eq!(after.counter(obs::Counter::StoreReloads), 1);
        assert_eq!(after.counter(obs::Counter::StoreEvictions), 1);
    }

    #[test]
    fn list_reports_status() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        store.get(Some("bib")).unwrap();
        let listing = store.list();
        assert_eq!(
            listing.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            ["bib", "dblp", "movies"]
        );
        let bib = &listing[0];
        assert!(bib.loaded && bib.is_default && bib.hits == 1 && bib.nodes.is_some());
        assert!(!listing[1].loaded && listing[1].nodes.is_none());
    }
}
