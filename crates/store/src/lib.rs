#![warn(missing_docs)]
// The store sits on the query path: a panic while loading or swapping
// a document would take a server worker down mid-request, so the
// escape hatches are denied exactly as in the other query-path crates.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # store — a concurrent multi-document registry for NaLIX pipelines
//!
//! The paper's claim to being *generic* (Sec. 2, 5) rests on
//! Schema-Free XQuery: the same NL pipeline answers questions over any
//! XML corpus. This crate makes that operational. A [`DocumentStore`]
//! owns a registry of named corpora — the compiled-in `bib` / `movies`
//! / `dblp` generators plus arbitrary XML files — and keeps one fully
//! wired pipeline per document: the parsed [`xmldb::Document`] with
//! its structural index, the element/attribute catalog, a persistent
//! `xquery` engine with its value index, a bounded translation cache,
//! and an isolated per-document [`obs::MetricsRegistry`].
//!
//! ## Snapshot semantics
//!
//! Readers never block behind loads. [`DocumentStore::get`] hands out
//! an `Arc<DocPipeline>` *snapshot*; a concurrent
//! [`DocumentStore::put`] builds the replacement pipeline off-lock and
//! swaps the slot pointer atomically (epoch-style publication).
//! In-flight queries finish against whichever snapshot they observed —
//! bit-identically to a process that only ever had that snapshot —
//! while new requests see the new generation. Nothing is torn down
//! under a reader: the old pipeline lives for as long as any request
//! still holds its `Arc`.
//!
//! ## Counter accounting
//!
//! Each pipeline records into its own registry, so per-document load
//! is directly observable. Evicting or replacing a document must not
//! make the process totals go backwards, so retired pipelines are
//! parked until their last in-flight reader drops, then folded into a
//! retained base snapshot. [`DocumentStore::snapshot`] therefore is
//! monotone: store-level counters + every live pipeline + everything
//! ever retired.
//!
//! ## Capacity
//!
//! Loaded documents beyond [`StoreConfig::max_resident`] are evicted
//! *cold*: the coldest (least-recently-used) non-default pipeline is
//! dropped but its registration and source spec are kept, so the next
//! query for it lazily rebuilds. Explicit eviction
//! ([`DocumentStore::evict`]) removes the registration entirely —
//! later queries get a typed [`StoreError::UnknownDocument`].
//!
//! ```
//! use store::{DocumentStore, StoreConfig};
//!
//! let store = DocumentStore::with_builtins(StoreConfig::default());
//! let bib = store.get(None).unwrap(); // default document
//! let answers = bib.nalix().ask("Return every title.").unwrap();
//! assert!(!answers.is_empty());
//!
//! // Hot reload: readers holding `bib` are unaffected.
//! let put = store.put("bib", store::DocSpec::parse("bib")).unwrap();
//! assert!(put.reloaded);
//! assert_eq!(put.pipeline.generation(), bib.generation() + 1);
//! assert_eq!(bib.nalix().ask("Return every title.").unwrap(), answers);
//! ```

mod error;
mod spec;

pub use error::StoreError;
pub use spec::{load_dataset, Builtin, DocSpec};

use nalix::Nalix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xmldb::document::DocStats;
use xmldb::Document;

/// Tunables for a [`DocumentStore`], with production defaults.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The document served when a request names none. Protected from
    /// eviction.
    pub default_doc: String,
    /// Maximum number of *loaded* pipelines held at once; beyond it
    /// the coldest non-default document is unloaded (registration and
    /// spec are kept for lazy reload). Clamped to at least 1.
    pub max_resident: usize,
    /// Translation cache capacity for each per-document pipeline
    /// (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            default_doc: "bib".to_string(),
            max_resident: 8,
            cache_capacity: nalix::DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One immutable, fully wired pipeline snapshot: document + catalog +
/// engine + translation cache + isolated metrics registry.
///
/// Obtained from [`DocumentStore::get`]; hold the `Arc` for the
/// duration of one request and drop it. A snapshot outlives any
/// reload or eviction that happens while it is held.
pub struct DocPipeline {
    name: String,
    generation: u64,
    source: String,
    stats: DocStats,
    nalix: Nalix,
}

impl DocPipeline {
    /// The registry name this snapshot was loaded under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone per-name load generation: 1 on first load, +1 per
    /// reload. Distinguishes snapshots across a hot swap.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Where the document came from (`builtin:bib` or a file path).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Size statistics captured at load time.
    pub fn stats(&self) -> DocStats {
        self.stats
    }

    /// The NL pipeline over this document.
    pub fn nalix(&self) -> &Nalix {
        &self.nalix
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        self.nalix.doc()
    }
}

impl std::fmt::Debug for DocPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocPipeline")
            .field("name", &self.name)
            .field("generation", &self.generation)
            .field("source", &self.source)
            .field("nodes", &self.stats.total_nodes())
            .finish()
    }
}

/// One node-level edit addressed by **pre-order rank** rather than by
/// `NodeId` — the store-level (and wire-level) form of [`xmldb::Edit`].
///
/// Pre ranks are what clients can actually see (they enumerate the
/// document in order), and they are only meaningful against one
/// generation of a document. [`DocumentStore::update`] resolves them
/// against the pinned snapshot *inside* the writer lock, so a rank can
/// never silently bind to a node of a different generation; pair with
/// `expected_generation` for full optimistic concurrency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditSpec {
    /// Append `node` as the last child of the element at `parent`
    /// (attributes join the attribute prefix).
    InsertChild {
        /// Pre rank of the parent element.
        parent: u32,
        /// What to insert.
        node: xmldb::NewNode,
    },
    /// Insert `node` immediately after the node at `after`.
    InsertSibling {
        /// Pre rank of the reference sibling.
        after: u32,
        /// What to insert.
        node: xmldb::NewNode,
    },
    /// Delete the subtree rooted at `target`.
    DeleteSubtree {
        /// Pre rank of the subtree root.
        target: u32,
    },
    /// Replace the text/attribute value at `target`.
    ReplaceValue {
        /// Pre rank of the text or attribute node.
        target: u32,
        /// The replacement value.
        value: String,
    },
    /// Rename the element/attribute at `target`.
    RenameLabel {
        /// Pre rank of the element or attribute.
        target: u32,
        /// The new name.
        label: String,
    },
}

impl EditSpec {
    /// Resolve the pre-rank address against `doc` into an [`xmldb::Edit`].
    fn resolve(&self, doc: &Document) -> Result<xmldb::Edit, String> {
        let at = |pre: u32| {
            doc.node_at_pre(pre)
                .ok_or_else(|| format!("no node at pre rank {pre}"))
        };
        Ok(match self {
            EditSpec::InsertChild { parent, node } => xmldb::Edit::InsertChild {
                parent: at(*parent)?,
                node: node.clone(),
            },
            EditSpec::InsertSibling { after, node } => xmldb::Edit::InsertSibling {
                after: at(*after)?,
                node: node.clone(),
            },
            EditSpec::DeleteSubtree { target } => xmldb::Edit::DeleteSubtree {
                target: at(*target)?,
            },
            EditSpec::ReplaceValue { target, value } => xmldb::Edit::ReplaceValue {
                target: at(*target)?,
                value: value.clone(),
            },
            EditSpec::RenameLabel { target, label } => xmldb::Edit::RenameLabel {
                target: at(*target)?,
                label: label.clone(),
            },
        })
    }
}

/// What [`DocumentStore::update`] did.
#[derive(Debug)]
pub struct UpdateReport {
    /// The successor pipeline, already published.
    pub pipeline: Arc<DocPipeline>,
    /// What the commit did: strategy, edit counts, and the index deltas
    /// that were folded forward.
    pub stats: xmldb::UpdateStats,
}

/// What [`DocumentStore::put`] did.
#[derive(Debug)]
pub struct PutReport {
    /// The freshly built pipeline, already published.
    pub pipeline: Arc<DocPipeline>,
    /// True when an older generation was replaced (hot reload), false
    /// on first load under this name.
    pub reloaded: bool,
}

/// One line of a [`DocumentStore::list`] listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocStatus {
    /// Registry name.
    pub name: String,
    /// Source description (`builtin:bib` or a path).
    pub source: String,
    /// True when a pipeline is currently resident.
    pub loaded: bool,
    /// Load generation (0 if never loaded).
    pub generation: u64,
    /// Total document nodes, when loaded.
    pub nodes: Option<usize>,
    /// Times this document was requested via [`DocumentStore::get`].
    pub hits: u64,
    /// True for the store's default document.
    pub is_default: bool,
}

/// One registered document: its source spec, the current pipeline (if
/// resident), and bookkeeping for lazy loads and LRU eviction.
struct Slot {
    name: String,
    spec: Mutex<DocSpec>,
    /// The published snapshot. Readers clone the `Arc` under the read
    /// lock (held for nanoseconds); writers build the replacement
    /// entirely off-lock and swap under the write lock.
    pipeline: RwLock<Option<Arc<DocPipeline>>>,
    /// Serializes builds for this slot so a stampede of first requests
    /// loads the document once, not once per thread.
    loading: Mutex<()>,
    generation: AtomicU64,
    hits: AtomicU64,
    /// Store-clock tick of the most recent `get`, for LRU eviction.
    last_used: AtomicU64,
}

/// Retired pipelines and the folded totals of those fully quiesced.
#[derive(Default)]
struct Retired {
    /// Counters of retired pipelines whose last reader has dropped.
    base: obs::MetricsSnapshot,
    /// Retired pipelines still (potentially) serving in-flight
    /// requests; folded into `base` once uniquely held.
    parked: Vec<Arc<DocPipeline>>,
}

/// A concurrent registry of named documents, each with its own NaLIX
/// pipeline. See the crate docs for semantics; `Send + Sync`, designed
/// to sit behind one `Arc` shared by every server worker.
pub struct DocumentStore {
    config: StoreConfig,
    slots: RwLock<HashMap<String, Arc<Slot>>>,
    /// Store-level registry: `store_*` spans and counters, plus the
    /// HTTP-layer counters when a server fronts this store.
    metrics: Arc<obs::MetricsRegistry>,
    retired: Mutex<Retired>,
    clock: AtomicU64,
}

// Lock poisoning can only happen if a panic escaped into a locked
// section; the store's sections are tiny and panic-free, and the data
// under them (a pointer swap, a spec, a snapshot) is valid at every
// step, so recovering the guard is always safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl DocumentStore {
    /// An empty store (no documents registered). Register sources with
    /// [`DocumentStore::register`] or [`DocumentStore::put`].
    pub fn new(config: StoreConfig) -> Self {
        DocumentStore {
            config,
            slots: RwLock::new(HashMap::new()),
            metrics: Arc::new(obs::MetricsRegistry::new()),
            retired: Mutex::new(Retired::default()),
            clock: AtomicU64::new(0),
        }
    }

    /// A store with the three builtin corpora registered (not yet
    /// loaded — the first query for each builds it).
    pub fn with_builtins(config: StoreConfig) -> Self {
        let store = DocumentStore::new(config);
        for b in Builtin::ALL {
            // Builtin names are always valid; registration cannot fail.
            let _ = store.register(b.name(), DocSpec::Builtin(b));
        }
        store
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The default document's name.
    pub fn default_doc(&self) -> &str {
        &self.config.default_doc
    }

    /// The store-level metrics registry (`store_*` families; the HTTP
    /// server also records its `http_*` counters here).
    pub fn metrics_handle(&self) -> Arc<obs::MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Registers a source under `name` without loading it. Existing
    /// registrations are left untouched (use [`DocumentStore::put`]
    /// to replace). Returns whether a new registration was created.
    pub fn register(&self, name: &str, spec: DocSpec) -> Result<bool, StoreError> {
        validate_name(name)?;
        let mut slots = write(&self.slots);
        if slots.contains_key(name) {
            return Ok(false);
        }
        slots.insert(name.to_string(), Arc::new(new_slot(name, spec)));
        Ok(true)
    }

    /// The pipeline snapshot for `name` (`None` → the default
    /// document), lazily loading it on first use. This is the hot
    /// path: when the pipeline is resident it costs two atomic bumps
    /// and an `Arc` clone under a read lock.
    pub fn get(&self, name: Option<&str>) -> Result<Arc<DocPipeline>, StoreError> {
        let name = name.unwrap_or(&self.config.default_doc);
        let Some(slot) = read(&self.slots).get(name).cloned() else {
            self.metrics.add(obs::Counter::StoreMisses, 1);
            return Err(StoreError::UnknownDocument {
                name: name.to_string(),
            });
        };
        slot.hits.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        if let Some(p) = read(&slot.pipeline).clone() {
            return Ok(p);
        }
        // Cold: build once, whoever gets here first.
        let guard = lock(&slot.loading);
        if let Some(p) = read(&slot.pipeline).clone() {
            return Ok(p); // another thread built it while we waited
        }
        let pipeline = self.build_spanned(&slot, obs::Stage::StoreLoad)?;
        self.metrics.add(obs::Counter::StoreLoads, 1);
        *write(&slot.pipeline) = Some(Arc::clone(&pipeline));
        drop(guard);
        self.shrink_to_capacity();
        Ok(pipeline)
    }

    /// Loads (or hot-reloads) `name` from `spec` and atomically
    /// publishes the new pipeline. In-flight readers keep their old
    /// snapshot; its counters are retired, never lost.
    pub fn put(&self, name: &str, spec: DocSpec) -> Result<PutReport, StoreError> {
        validate_name(name)?;
        let slot = {
            let mut slots = write(&self.slots);
            Arc::clone(
                slots
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(new_slot(name, spec.clone()))),
            )
        };
        let guard = lock(&slot.loading);
        *lock(&slot.spec) = spec;
        let reloaded = read(&slot.pipeline).is_some();
        let stage = if reloaded {
            obs::Stage::StoreReload
        } else {
            obs::Stage::StoreLoad
        };
        let pipeline = self.build_spanned(&slot, stage)?;
        let old = write(&slot.pipeline).replace(Arc::clone(&pipeline));
        if let Some(old) = old {
            self.retire(old);
            self.metrics.add(obs::Counter::StoreReloads, 1);
        } else {
            self.metrics.add(obs::Counter::StoreLoads, 1);
        }
        drop(guard);
        self.shrink_to_capacity();
        Ok(PutReport { pipeline, reloaded })
    }

    /// Applies one batch of node-level edits to `name` (`None` → the
    /// default document) and publishes the successor pipeline.
    ///
    /// Writers are serialized per document on the slot's `loading`
    /// mutex (the same anti-stampede lock cold loads use); readers are
    /// never blocked. The batch is applied to a pending overlay against
    /// the pinned snapshot, then committed with **epoch-batched
    /// incremental index maintenance**: small batches patch the
    /// structural index, postings, catalog, and value indexes forward
    /// ([`xmldb::CommitStrategy::Patch`], the `index_patch` span);
    /// batches touching more than a quarter of the document rebuild
    /// from scratch (`index_rebuild`). Either way the slot's generation
    /// advances by one and in-flight readers keep their old snapshot,
    /// exactly as across a hot reload.
    ///
    /// `expected_generation` is the optimistic-concurrency guard: when
    /// set and stale, the update is refused with
    /// [`StoreError::Conflict`] (counted as `update_conflicts`) and the
    /// document is untouched. Any edit failing validation rejects the
    /// whole batch ([`StoreError::UpdateRejected`]) — batches are
    /// all-or-nothing.
    ///
    /// Updates live in the resident pipeline only: a document that is
    /// later cold-evicted or hot-reloaded rebuilds from its source spec
    /// and the edits are gone (see `docs/UPDATES.md`).
    pub fn update(
        &self,
        name: Option<&str>,
        edits: &[EditSpec],
        expected_generation: Option<u64>,
    ) -> Result<UpdateReport, StoreError> {
        let name = name.unwrap_or(&self.config.default_doc);
        if edits.is_empty() {
            return Err(StoreError::UpdateRejected {
                name: name.to_string(),
                detail: "empty edit batch".to_string(),
            });
        }
        let Some(slot) = read(&self.slots).get(name).cloned() else {
            self.metrics.add(obs::Counter::StoreMisses, 1);
            return Err(StoreError::UnknownDocument {
                name: name.to_string(),
            });
        };
        slot.hits.fetch_add(1, Ordering::Relaxed);
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let guard = lock(&slot.loading);
        // Cold slots load lazily, exactly as `get` would, before the
        // edits apply — an update addresses the document, not whatever
        // happens to be resident.
        // Bind the resident read *before* matching: a `match` scrutinee
        // temporary lives to the end of the match, and the cold arm
        // needs the write half of the same lock.
        let resident = read(&slot.pipeline).clone();
        let current = match resident {
            Some(p) => p,
            None => {
                let pipeline = self.build_spanned(&slot, obs::Stage::StoreLoad)?;
                self.metrics.add(obs::Counter::StoreLoads, 1);
                *write(&slot.pipeline) = Some(Arc::clone(&pipeline));
                pipeline
            }
        };
        if let Some(expected) = expected_generation {
            if expected != current.generation() {
                self.metrics.add(obs::Counter::UpdateConflicts, 1);
                return Err(StoreError::Conflict {
                    name: name.to_string(),
                    expected,
                    actual: current.generation(),
                });
            }
        }
        let mut span = self.metrics.span(obs::Stage::StoreUpdate);
        match self.apply_update(&slot, &current, name, edits) {
            Ok(report) => {
                span.set_outcome(obs::SpanOutcome::Ok);
                drop(guard);
                Ok(report)
            }
            Err(e) => {
                span.set_outcome(obs::SpanOutcome::ValidateError);
                Err(e)
            }
        }
    }

    /// The update work itself, under the slot's writer lock and the
    /// caller's `store_update` span: overlay, commit (spanned as
    /// `index_patch` or `index_rebuild`), successor pipeline, publish.
    fn apply_update(
        &self,
        slot: &Slot,
        current: &Arc<DocPipeline>,
        name: &str,
        edits: &[EditSpec],
    ) -> Result<UpdateReport, StoreError> {
        let rejected = |detail: String| StoreError::UpdateRejected {
            name: name.to_string(),
            detail,
        };
        let doc = current.doc();
        let mut up = doc.begin_update().map_err(|e| rejected(e.to_string()))?;
        for spec in edits {
            let edit = spec.resolve(doc).map_err(&rejected)?;
            up.apply(&edit).map_err(|e| rejected(e.to_string()))?;
        }
        self.metrics.record_max(
            obs::MaxGauge::UpdateOverlayHighWater,
            up.overlay_len() as u64,
        );
        let (stage, counter) = match up.strategy() {
            xmldb::CommitStrategy::Patch => (obs::Stage::IndexPatch, obs::Counter::IndexPatches),
            xmldb::CommitStrategy::Rebuild => {
                (obs::Stage::IndexRebuild, obs::Counter::IndexRebuilds)
            }
        };
        let mut ispan = self.metrics.span(stage);
        let (next_doc, stats) = up.commit();
        ispan.set_outcome(obs::SpanOutcome::Ok);
        self.metrics.add(counter, 1);

        let next_doc = Arc::new(next_doc);
        let doc_stats = next_doc.stats();
        let nalix = Nalix::successor(current.nalix(), Arc::clone(&next_doc), &stats)
            .with_cache_capacity(self.config.cache_capacity);
        let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let pipeline = Arc::new(DocPipeline {
            name: slot.name.clone(),
            generation,
            source: current.source().to_string(),
            stats: doc_stats,
            nalix,
        });
        if let Some(old) = write(&slot.pipeline).replace(Arc::clone(&pipeline)) {
            self.retire(old);
        }
        self.metrics.add(obs::Counter::DocUpdates, 1);
        Ok(UpdateReport { pipeline, stats })
    }

    /// Removes `name` from the registry entirely: the pipeline (if
    /// resident) is retired and later [`DocumentStore::get`] calls
    /// return [`StoreError::UnknownDocument`]. The default document
    /// is protected.
    pub fn evict(&self, name: &str) -> Result<(), StoreError> {
        if name == self.config.default_doc {
            return Err(StoreError::DefaultProtected {
                name: name.to_string(),
            });
        }
        let Some(slot) = write(&self.slots).remove(name) else {
            return Err(StoreError::UnknownDocument {
                name: name.to_string(),
            });
        };
        if let Some(old) = write(&slot.pipeline).take() {
            self.retire(old);
        }
        self.metrics.add(obs::Counter::StoreEvictions, 1);
        Ok(())
    }

    /// One status line per registered document, sorted by name.
    pub fn list(&self) -> Vec<DocStatus> {
        let slots: Vec<Arc<Slot>> = read(&self.slots).values().cloned().collect();
        let mut out: Vec<DocStatus> = slots
            .iter()
            .map(|slot| {
                let pipeline = read(&slot.pipeline).clone();
                DocStatus {
                    name: slot.name.clone(),
                    source: lock(&slot.spec).describe(),
                    loaded: pipeline.is_some(),
                    generation: slot.generation.load(Ordering::Relaxed),
                    nodes: pipeline.map(|p| p.stats().total_nodes()),
                    hits: slot.hits.load(Ordering::Relaxed),
                    is_default: slot.name == self.config.default_doc,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of currently loaded pipelines.
    pub fn resident(&self) -> usize {
        read(&self.slots)
            .values()
            .filter(|s| read(&s.pipeline).is_some())
            .count()
    }

    /// The process-wide view: store-level counters merged with every
    /// live pipeline's registry and with everything ever retired.
    /// Monotone across reloads and evictions.
    pub fn snapshot(&self) -> obs::MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        {
            let mut retired = lock(&self.retired);
            // Fold pipelines whose last in-flight reader has dropped:
            // their counters are final, so they move into the retained
            // base and the pipeline memory is released.
            let parked = std::mem::take(&mut retired.parked);
            for p in parked {
                match Arc::try_unwrap(p) {
                    Ok(quiesced) => retired.base.merge(&quiesced.nalix.metrics()),
                    Err(still_shared) => retired.parked.push(still_shared),
                }
            }
            snap.merge(&retired.base);
            for p in &retired.parked {
                snap.merge(&p.nalix.metrics());
            }
        }
        let slots: Vec<Arc<Slot>> = read(&self.slots).values().cloned().collect();
        for slot in slots {
            if let Some(p) = read(&slot.pipeline).clone() {
                snap.merge(&p.nalix.metrics());
            }
        }
        snap
    }

    /// Builds a fresh pipeline for `slot` under a `store_load` /
    /// `store_reload` stage span.
    fn build_spanned(
        &self,
        slot: &Slot,
        stage: obs::Stage,
    ) -> Result<Arc<DocPipeline>, StoreError> {
        let mut span = self.metrics.span(stage);
        match self.build(slot) {
            Ok(p) => {
                span.set_outcome(obs::SpanOutcome::Ok);
                Ok(p)
            }
            Err(e) => {
                span.set_outcome(obs::SpanOutcome::EvalError);
                Err(e)
            }
        }
    }

    /// The expensive part, deliberately outside every lock except the
    /// slot's own `loading` mutex: source load/parse, index build,
    /// catalog build, engine construction.
    fn build(&self, slot: &Slot) -> Result<Arc<DocPipeline>, StoreError> {
        let spec = lock(&slot.spec).clone();
        let doc = spec.load()?;
        let stats = doc.stats();
        let nalix = Nalix::with_metrics(doc, Arc::new(obs::MetricsRegistry::new()))
            .with_cache_capacity(self.config.cache_capacity);
        let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(Arc::new(DocPipeline {
            name: slot.name.clone(),
            generation,
            source: spec.describe(),
            stats,
            nalix,
        }))
    }

    /// Parks a replaced/evicted pipeline until its readers drain.
    fn retire(&self, old: Arc<DocPipeline>) {
        lock(&self.retired).parked.push(old);
    }

    /// Unloads coldest non-default pipelines until within capacity.
    /// Registrations and specs survive, so evicted-cold documents
    /// lazily rebuild on their next query.
    fn shrink_to_capacity(&self) {
        let max = self.config.max_resident.max(1);
        loop {
            let victim = {
                let slots = read(&self.slots);
                let loaded: Vec<&Arc<Slot>> = slots
                    .values()
                    .filter(|s| read(&s.pipeline).is_some())
                    .collect();
                if loaded.len() <= max {
                    return;
                }
                loaded
                    .into_iter()
                    .filter(|s| s.name != self.config.default_doc)
                    .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                    .cloned()
            };
            let Some(victim) = victim else { return };
            let guard = lock(&victim.loading);
            if let Some(old) = write(&victim.pipeline).take() {
                self.retire(old);
                self.metrics.add(obs::Counter::StoreEvictions, 1);
            }
            drop(guard);
        }
    }
}

fn new_slot(name: &str, spec: DocSpec) -> Slot {
    Slot {
        name: name.to_string(),
        spec: Mutex::new(spec),
        pipeline: RwLock::new(None),
        loading: Mutex::new(()),
        generation: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        last_used: AtomicU64::new(0),
    }
}

/// Names travel in URLs (`PUT /docs/:name`) and metrics labels; keep
/// them to one path-segment-safe token.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName {
            name: name.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StoreConfig {
        StoreConfig {
            default_doc: "bib".to_string(),
            max_resident: 2,
            cache_capacity: 64,
        }
    }

    #[test]
    fn lazy_load_and_default() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        assert_eq!(store.resident(), 0);
        let by_default = store.get(None).unwrap();
        let by_name = store.get(Some("bib")).unwrap();
        assert!(Arc::ptr_eq(&by_default, &by_name), "same snapshot");
        assert_eq!(by_default.generation(), 1);
        assert_eq!(store.resident(), 1);
    }

    #[test]
    fn unknown_document_is_typed_and_counted() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let err = store.get(Some("nope")).unwrap_err();
        assert_eq!(err.code(), "store.unknown_document");
        assert_eq!(store.snapshot().counter(obs::Counter::StoreMisses), 1);
    }

    #[test]
    fn invalid_names_rejected() {
        let store = DocumentStore::new(StoreConfig::default());
        for bad in ["", "a/b", "a b", &"x".repeat(65)] {
            let err = store.put(bad, DocSpec::parse("bib")).unwrap_err();
            assert_eq!(err.code(), "store.invalid_name", "{bad:?}");
        }
    }

    #[test]
    fn reload_bumps_generation_and_keeps_old_snapshot_working() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let old = store.get(Some("movies")).unwrap();
        let before = old
            .nalix()
            .ask("Find all the movies directed by Ron Howard.")
            .unwrap();
        let put = store.put("movies", DocSpec::parse("movies")).unwrap();
        assert!(put.reloaded);
        assert_eq!(put.pipeline.generation(), 2);
        // The retired snapshot still answers, bit-identically.
        let after_on_old = old
            .nalix()
            .ask("Find all the movies directed by Ron Howard.")
            .unwrap();
        assert_eq!(before, after_on_old);
        // New gets see the new generation.
        assert_eq!(store.get(Some("movies")).unwrap().generation(), 2);
    }

    #[test]
    fn evict_removes_registration_and_protects_default() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        store.get(Some("movies")).unwrap();
        store.evict("movies").unwrap();
        assert_eq!(
            store.get(Some("movies")).unwrap_err().code(),
            "store.unknown_document"
        );
        assert_eq!(
            store.evict("bib").unwrap_err().code(),
            "store.default_protected"
        );
        assert_eq!(
            store.evict("ghost").unwrap_err().code(),
            "store.unknown_document"
        );
    }

    #[test]
    fn capacity_unloads_coldest_but_keeps_registration() {
        let store = DocumentStore::with_builtins(small_config());
        store.get(Some("bib")).unwrap();
        store.get(Some("movies")).unwrap();
        store.get(Some("dblp")).unwrap(); // over capacity → unload one
        assert!(store.resident() <= 2);
        // The default is never the victim.
        let listing = store.list();
        let bib = listing.iter().find(|d| d.name == "bib").unwrap();
        assert!(bib.loaded);
        // The unloaded document is still registered and lazily rebuilds.
        let movies = store.get(Some("movies")).unwrap();
        assert!(movies.nalix().ask("Return every title.").is_ok());
    }

    #[test]
    fn snapshot_is_monotone_across_reload_and_evict() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let p = store.get(Some("movies")).unwrap();
        p.nalix().ask("Return every title.").unwrap();
        let before = store.snapshot();
        store.put("movies", DocSpec::parse("movies")).unwrap();
        drop(p); // quiesce the retired pipeline
        let mid = store.snapshot();
        assert!(mid.queries_total() >= before.queries_total());
        store.evict("movies").unwrap();
        let after = store.snapshot();
        assert!(after.queries_total() >= mid.queries_total());
        assert_eq!(after.counter(obs::Counter::StoreLoads), 1);
        assert_eq!(after.counter(obs::Counter::StoreReloads), 1);
        assert_eq!(after.counter(obs::Counter::StoreEvictions), 1);
    }

    /// The pre rank of the first element named `label`.
    fn pre_of(doc: &Document, label: &str) -> u32 {
        let id = doc.nodes_labeled(label)[0];
        doc.node(id).pre
    }

    #[test]
    fn update_inserts_patch_and_bump_generation() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let before = store.get(Some("movies")).unwrap();
        let movie = pre_of(before.doc(), "movie");
        let report = store
            .update(
                Some("movies"),
                &[EditSpec::InsertChild {
                    parent: movie,
                    node: xmldb::NewNode::Leaf {
                        label: "genre".into(),
                        text: "drama".into(),
                    },
                }],
                Some(before.generation()),
            )
            .unwrap();
        assert_eq!(report.stats.strategy, xmldb::CommitStrategy::Patch);
        assert_eq!(report.pipeline.generation(), before.generation() + 1);
        // New readers see the edit…
        let after = store.get(Some("movies")).unwrap();
        assert_eq!(after.generation(), report.pipeline.generation());
        assert_eq!(after.doc().nodes_labeled("genre").len(), 1);
        // …while the pinned snapshot still answers from its generation.
        assert!(before.doc().nodes_labeled("genre").is_empty());
        let snap = store.snapshot();
        assert_eq!(snap.counter(obs::Counter::DocUpdates), 1);
        assert_eq!(snap.counter(obs::Counter::IndexPatches), 1);
        assert_eq!(snap.counter(obs::Counter::IndexRebuilds), 0);
        assert_eq!(snap.max(obs::MaxGauge::UpdateOverlayHighWater), 1);
        assert_eq!(snap.stage(obs::Stage::StoreUpdate).ok(), 1);
        assert_eq!(snap.stage(obs::Stage::IndexPatch).ok(), 1);
    }

    #[test]
    fn update_conflict_is_typed_and_counted() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let p = store.get(Some("bib")).unwrap();
        let title = pre_of(p.doc(), "title");
        let edit = EditSpec::ReplaceValue {
            target: title + 1, // the title's text node follows it in pre order
            value: "New Title".into(),
        };
        let err = store
            .update(Some("bib"), std::slice::from_ref(&edit), Some(99))
            .unwrap_err();
        assert_eq!(err.code(), "store.conflict");
        assert_eq!(store.snapshot().counter(obs::Counter::UpdateConflicts), 1);
        // The right generation sails through.
        let report = store
            .update(Some("bib"), &[edit], Some(p.generation()))
            .unwrap();
        assert_eq!(report.pipeline.generation(), p.generation() + 1);
    }

    #[test]
    fn update_rejects_bad_edits_atomically() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let p = store.get(Some("bib")).unwrap();
        let title = pre_of(p.doc(), "title");
        let err = store
            .update(
                Some("bib"),
                &[
                    EditSpec::RenameLabel {
                        target: title,
                        label: "headline".into(),
                    },
                    EditSpec::DeleteSubtree { target: 9_999_999 },
                ],
                None,
            )
            .unwrap_err();
        assert_eq!(err.code(), "store.update_rejected");
        // All-or-nothing: the first (valid) edit did not land either.
        let now = store.get(Some("bib")).unwrap();
        assert_eq!(now.generation(), p.generation());
        assert!(now.doc().nodes_labeled("headline").is_empty());
        assert!(store
            .update(Some("bib"), &[], None)
            .is_err_and(|e| e.code() == "store.update_rejected"));
    }

    #[test]
    fn update_answers_reflect_the_edit() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        let p = store.get(Some("movies")).unwrap();
        let q = "Find all the movies directed by Ron Howard.";
        let before = p.nalix().ask(q).unwrap();
        // Delete one Ron Howard movie's director leaf's text? No — delete
        // a whole movie is too big for bib-sized docs; replace the
        // director value of one movie instead.
        let doc = p.doc();
        let director = doc
            .nodes_labeled("director")
            .iter()
            .copied()
            .find(|&d| doc.string_value(d) == "Ron Howard")
            .unwrap();
        let text_pre = doc.node(doc.first_child(director).unwrap()).pre;
        let report = store
            .update(
                Some("movies"),
                &[EditSpec::ReplaceValue {
                    target: text_pre,
                    value: "Rob Reiner".into(),
                }],
                None,
            )
            .unwrap();
        let after = report.pipeline.nalix().ask(q).unwrap();
        assert_eq!(after.len(), before.len() - 1);
        // The pinned pre-update pipeline still answers unchanged.
        assert_eq!(p.nalix().ask(q).unwrap(), before);
    }

    #[test]
    fn update_lazily_loads_cold_documents() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        assert_eq!(store.resident(), 0);
        let report = store
            .update(
                Some("movies"),
                &[EditSpec::InsertChild {
                    parent: 0,
                    node: xmldb::NewNode::Leaf {
                        label: "note".into(),
                        text: "edited cold".into(),
                    },
                }],
                None,
            )
            .unwrap();
        assert_eq!(report.pipeline.generation(), 2); // load (1) + update (2)
        assert!(store
            .update(
                Some("ghost"),
                &[EditSpec::DeleteSubtree { target: 1 }],
                None
            )
            .is_err_and(|e| e.code() == "store.unknown_document"));
    }

    #[test]
    fn list_reports_status() {
        let store = DocumentStore::with_builtins(StoreConfig::default());
        store.get(Some("bib")).unwrap();
        let listing = store.list();
        assert_eq!(
            listing.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            ["bib", "dblp", "movies"]
        );
        let bib = &listing[0];
        assert!(bib.loaded && bib.is_default && bib.hits == 1 && bib.nodes.is_some());
        assert!(!listing[1].loaded && listing[1].nodes.is_none());
    }
}
