//! `nalixd` — serve NaLIX natural language queries over HTTP.
//!
//! ```text
//! nalixd --addr 127.0.0.1:8080 --workers 8 --queue 64 --dataset bib
//! ```
//!
//! Boots a multi-document store (the builtin `bib` / `movies` / `dblp`
//! corpora are always registered; `--dataset` picks the default and is
//! preloaded), and serves `POST /query`, `POST /batch`, `GET /docs`,
//! `PUT /docs/:name`, `DELETE /docs/:name`, `GET /health`, and
//! `GET /metrics` until SIGTERM or SIGINT, then drains gracefully and
//! prints a final metrics snapshot to stderr. See `docs/SERVING.md`
//! and `docs/STORE.md`.

use server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use store::{DocSpec, DocumentStore, StoreConfig};

/// Set from the signal handler; polled by the watcher thread. Signal
/// handlers may only do async-signal-safe work, so the handler is a
/// single atomic store and everything else happens on a normal thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT. `signal(2)` is in libc,
/// which std already links; no external crate needed.
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

const USAGE: &str = "\
nalixd — serve NaLIX natural language queries over HTTP

USAGE:
    nalixd [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>      Listen address        [default: 127.0.0.1:8080]
    --workers <N>           Worker threads        [default: 8]
    --queue <N>             Admission queue size  [default: 64]
    --cache <N>             Translation cache capacity per document
                            (0 disables)          [default: 4096]
    --deadline-ms <N>       Default per-query evaluation deadline
                                                  [default: 2000]
    --dataset <NAME|PATH>   Default document: bib | movies | dblp |
                            path to an XML file   [default: bib]
    --max-docs <N>          Maximum resident documents; colder ones
                            are unloaded (and lazily rebuilt)
                                                  [default: 8]
    --idle-timeout-ms <N>   Close keep-alive connections idle this long
                                                  [default: 30000]
    --max-requests-per-conn <N>
                            Requests served per connection before it is
                            closed                [default: 10000]
    --max-connections <N>   Open-connection cap; accepts beyond it are
                            shed with 503         [default: 10240]
    --session-capacity <N>  Live conversational sessions kept; beyond it
                            the least-recently-used one is evicted
                                                  [default: 1024]
    --session-ttl-ms <N>    Idle time after which a session expires
                                                  [default: 1800000]
    --debug-delay-ms <N>    Inject latency into every handler (testing)
    --help                  Print this help

ENDPOINTS:
    POST   /query        {\"question\": \"...\", \"doc\": name?, \"deadline_ms\": n?,
                          \"session\": id?}   (see docs/SESSIONS.md)
    POST   /batch        {\"questions\": [\"...\"], \"doc\": name?}
    GET    /docs         list registered documents with stats
    PUT    /docs/<name>  load or hot-reload (body: {\"source\": ...} | text | empty)
    DELETE /docs/<name>  evict a document
    GET    /health       liveness + drain state
    GET    /metrics      Prometheus text format (store + all documents)
";

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    deadline_ms: u64,
    dataset: String,
    max_docs: usize,
    idle_timeout_ms: u64,
    max_requests_per_conn: usize,
    max_connections: usize,
    session_capacity: usize,
    session_ttl_ms: u64,
    debug_delay_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        workers: 8,
        queue: 64,
        cache: nalix::DEFAULT_CACHE_CAPACITY,
        deadline_ms: 2000,
        dataset: "bib".to_string(),
        max_docs: 8,
        idle_timeout_ms: 30_000,
        max_requests_per_conn: 10_000,
        max_connections: 10_240,
        session_capacity: nalix::session::DEFAULT_SESSION_CAPACITY,
        session_ttl_ms: nalix::session::DEFAULT_SESSION_TTL.as_millis() as u64,
        debug_delay_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new()); // empty = print usage, exit 0
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let parse_num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag}: not a number: {v}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value,
            "--workers" => args.workers = parse_num(&value)?.max(1) as usize,
            "--queue" => args.queue = parse_num(&value)? as usize,
            "--cache" => args.cache = parse_num(&value)? as usize,
            "--deadline-ms" => args.deadline_ms = parse_num(&value)?.max(1),
            "--dataset" => args.dataset = value,
            "--max-docs" => args.max_docs = parse_num(&value)?.max(1) as usize,
            "--idle-timeout-ms" => args.idle_timeout_ms = parse_num(&value)?.max(1),
            "--max-requests-per-conn" => {
                args.max_requests_per_conn = parse_num(&value)?.max(1) as usize
            }
            "--max-connections" => args.max_connections = parse_num(&value)?.max(1) as usize,
            "--session-capacity" => args.session_capacity = parse_num(&value)?.max(1) as usize,
            "--session-ttl-ms" => args.session_ttl_ms = parse_num(&value)?.max(1),
            "--debug-delay-ms" => args.debug_delay_ms = Some(parse_num(&value)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// The default document's registry name for a `--dataset` value: the
/// builtin name as-is, or the file stem for a path (`/data/corp.xml` →
/// served as `"corp"`).
fn default_doc_name(dataset: &str) -> String {
    if store::Builtin::from_name(dataset).is_some() {
        return dataset.to_string();
    }
    std::path::Path::new(dataset)
        .file_stem()
        .and_then(|s| s.to_str())
        .filter(|s| !s.is_empty())
        .unwrap_or("default")
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("nalixd: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let default_doc = default_doc_name(&args.dataset);
    let store = DocumentStore::with_builtins(StoreConfig {
        default_doc: default_doc.clone(),
        max_resident: args.max_docs,
        cache_capacity: args.cache,
    });
    // Preload the default document so the first query pays no load
    // latency and a bad --dataset fails at startup, not at first
    // request. `put` (rather than `register`) makes a file dataset
    // win over a builtin sharing its stem (e.g. `/data/bib.xml`).
    let preload = if store::Builtin::from_name(&args.dataset).is_some() {
        store.get(None).map(|_| ())
    } else {
        store
            .put(&default_doc, DocSpec::parse(&args.dataset))
            .map(|_| ())
    };
    if let Err(err) = preload {
        eprintln!("nalixd: {err}");
        return ExitCode::FAILURE;
    }

    let config = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: Duration::from_millis(args.deadline_ms),
        idle_timeout: Duration::from_millis(args.idle_timeout_ms),
        max_requests_per_conn: args.max_requests_per_conn,
        max_connections: args.max_connections,
        session_capacity: args.session_capacity,
        session_ttl: Duration::from_millis(args.session_ttl_ms),
        debug_handler_delay: args.debug_delay_ms.map(Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = match Server::bind(store, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("nalixd: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    eprintln!(
        "nalixd: serving default document \"{}\" (from \"{}\") on http://{} \
         ({} workers, queue {}, cache {}, max {} resident docs, \
         max {} connections)",
        default_doc,
        args.dataset,
        server.local_addr(),
        args.workers,
        args.queue,
        args.cache,
        args.max_docs,
        args.max_connections,
    );

    install_signal_handlers();
    let watcher_handle = handle.clone();
    std::thread::spawn(move || {
        while !SHUTDOWN.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("nalixd: signal received, draining");
        watcher_handle.shutdown();
    });

    match server.serve() {
        Ok(report) => {
            eprintln!(
                "nalixd: drained; served {} request(s), shed {}",
                report.served, report.shed
            );
            eprintln!("{}", report.snapshot);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nalixd: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
