//! `nalixd` — serve NaLIX natural language queries over HTTP.
//!
//! ```text
//! nalixd --addr 127.0.0.1:8080 --workers 8 --queue 64 --dataset bib
//! ```
//!
//! Loads an XML dataset, builds the NL pipeline once, and serves
//! `POST /query`, `POST /batch`, `GET /health`, and `GET /metrics`
//! until SIGTERM or SIGINT, then drains gracefully and prints a final
//! metrics snapshot to stderr. See `docs/SERVING.md`.

use server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use xmldb::Document;

/// Set from the signal handler; polled by the watcher thread. Signal
/// handlers may only do async-signal-safe work, so the handler is a
/// single atomic store and everything else happens on a normal thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT. `signal(2)` is in libc,
/// which std already links; no external crate needed.
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

const USAGE: &str = "\
nalixd — serve NaLIX natural language queries over HTTP

USAGE:
    nalixd [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>      Listen address        [default: 127.0.0.1:8080]
    --workers <N>           Worker threads        [default: 8]
    --queue <N>             Admission queue size  [default: 64]
    --cache <N>             Translation cache capacity (0 disables)
                                                  [default: 4096]
    --deadline-ms <N>       Default per-query evaluation deadline
                                                  [default: 2000]
    --dataset <NAME|PATH>   bib | movies | dblp | path to an XML file
                                                  [default: bib]
    --debug-delay-ms <N>    Inject latency into every handler (testing)
    --help                  Print this help

ENDPOINTS:
    POST /query    {\"question\": \"...\", \"deadline_ms\": n?} → answers
    POST /batch    {\"questions\": [\"...\"]}                  → results
    GET  /health   liveness + drain state
    GET  /metrics  Prometheus text format
";

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    deadline_ms: u64,
    dataset: String,
    debug_delay_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        workers: 8,
        queue: 64,
        cache: nalix::DEFAULT_CACHE_CAPACITY,
        deadline_ms: 2000,
        dataset: "bib".to_string(),
        debug_delay_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new()); // empty = print usage, exit 0
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let parse_num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag}: not a number: {v}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value,
            "--workers" => args.workers = parse_num(&value)?.max(1) as usize,
            "--queue" => args.queue = parse_num(&value)? as usize,
            "--cache" => args.cache = parse_num(&value)? as usize,
            "--deadline-ms" => args.deadline_ms = parse_num(&value)?.max(1),
            "--dataset" => args.dataset = value,
            "--debug-delay-ms" => args.debug_delay_ms = Some(parse_num(&value)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Loads a named built-in dataset or parses an XML file from disk.
fn load_dataset(name: &str) -> Result<Document, String> {
    match name {
        "bib" => Ok(xmldb::datasets::bib::bib()),
        "movies" => Ok(xmldb::datasets::movies::movies_and_books()),
        "dblp" => Ok(xmldb::datasets::dblp::generate(
            &xmldb::datasets::dblp::DblpConfig::default(),
        )),
        path => {
            let xml =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Document::parse_str(&xml).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("nalixd: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let doc = match load_dataset(&args.dataset) {
        Ok(doc) => doc,
        Err(msg) => {
            eprintln!("nalixd: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let nalix =
        nalix::Nalix::with_metrics(&doc, obs::global_handle()).with_cache_capacity(args.cache);

    let config = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: Duration::from_millis(args.deadline_ms),
        debug_handler_delay: args.debug_delay_ms.map(Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = match Server::bind(&nalix, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("nalixd: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    eprintln!(
        "nalixd: serving dataset \"{}\" on http://{} ({} workers, queue {}, cache {})",
        args.dataset,
        server.local_addr(),
        args.workers,
        args.queue,
        args.cache,
    );

    install_signal_handlers();
    let watcher_handle = handle.clone();
    std::thread::spawn(move || {
        while !SHUTDOWN.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("nalixd: signal received, draining");
        watcher_handle.shutdown();
    });

    match server.serve() {
        Ok(report) => {
            eprintln!(
                "nalixd: drained; served {} request(s), shed {}",
                report.served, report.shed
            );
            eprintln!("{}", report.snapshot);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nalixd: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
