//! The `nalixd` server proper: worker pool, admission control, routing.
//!
//! Architecture (one paragraph): an acceptor loop polls a nonblocking
//! [`TcpListener`] and `try_push`es each accepted connection into a
//! [`BoundedQueue`]; a fixed pool of worker threads pops connections
//! and runs the full read→route→answer→write cycle, one request per
//! connection. Overload is explicit: a full queue makes the *acceptor*
//! write `503 Service Unavailable` with `Retry-After` and move on, so
//! a saturated server keeps answering (with backpressure) instead of
//! accumulating unbounded work. Shutdown is a drain: the acceptor stops
//! admitting, the queue closes, workers finish every admitted request,
//! and [`Server::serve`] returns a final [`ServeReport`].
//!
//! The workers borrow the [`Nalix`] instance directly — no `Arc`, no
//! leak — because the whole pool lives inside one
//! [`std::thread::scope`] that `serve` blocks on.

use crate::http::{self, ReadError, Request, Response};
use crate::json::Json;
use crate::queue::{BoundedQueue, PushError};
use nalix::{Nalix, QueryError};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xquery::{EvalBudget, ExhaustedResource};

/// Everything tunable about a [`Server`], with production defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads. Each worker serves one request at a time.
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are shed with
    /// 503.
    pub queue_capacity: usize,
    /// Socket read timeout (slow-client defense).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-client defense).
    pub write_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// Evaluation deadline applied when the request names none.
    pub default_deadline: Duration,
    /// Hard cap on client-requested deadlines.
    pub max_deadline: Duration,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Test-only latency injected into every handled request, used to
    /// make overload and drain tests deterministic. `None` in
    /// production.
    pub debug_handler_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 8,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body: 1024 * 1024,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            retry_after_secs: 1,
            debug_handler_delay: None,
        }
    }
}

/// State shared between [`Server::serve`] and its [`ServerHandle`]s.
struct Shared {
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    started: Instant,
}

/// A clonable remote control for a running server: signal shutdown,
/// read the bound address. Obtained from [`Server::handle`] *before*
/// calling the blocking [`Server::serve`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish in-flight
    /// requests, return from [`Server::serve`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once [`shutdown`](ServerHandle::shutdown) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The address the listener is actually bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// What a completed [`Server::serve`] run did.
#[derive(Debug)]
pub struct ServeReport {
    /// Requests handed to a worker (whether they then succeeded or
    /// failed at the HTTP or query layer).
    pub served: u64,
    /// Connections shed with 503 because the queue was full.
    pub shed: u64,
    /// Final metrics snapshot, taken after the last worker exited.
    pub snapshot: obs::MetricsSnapshot,
}

/// A bound-but-not-yet-serving nalixd server.
pub struct Server<'n, 'd> {
    nalix: &'n Nalix<'d>,
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl<'n, 'd> Server<'n, 'd> {
    /// Binds the listener. Fails only on bind errors (port in use,
    /// bad address).
    pub fn bind(nalix: &'n Nalix<'d>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            nalix,
            listener,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                local_addr,
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the server until [`ServerHandle::shutdown`] is called,
    /// then drains and returns. Blocks the calling thread; the worker
    /// pool lives inside a [`std::thread::scope`] so workers can
    /// borrow the [`Nalix`] instance without `Arc` or leaking.
    pub fn serve(self) -> io::Result<ServeReport> {
        self.listener.set_nonblocking(true)?;
        let metrics = self.nalix.metrics_handle();
        let queue = BoundedQueue::<TcpStream>::new(self.config.queue_capacity);
        let served = AtomicU64::new(0);
        let shed = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let queue = &queue;
                let served = &served;
                let nalix = self.nalix;
                let config = &self.config;
                let shared = &self.shared;
                scope.spawn(move || {
                    while let Some(stream) = queue.pop() {
                        served.fetch_add(1, Ordering::Relaxed);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(stream, nalix, config, shared)
                        }));
                        if result.is_err() {
                            // The stream moved into the closure, so the
                            // client sees a reset rather than a 500;
                            // what matters is that the worker survives.
                            nalix.metrics_handle().add(obs::Counter::HttpBadRequests, 1);
                        }
                    }
                    obs::flush_hot();
                });
            }

            // Acceptor: this thread. Nonblocking accept + short sleep
            // keeps shutdown latency ~10ms without extra machinery.
            while !self.shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                        match queue.try_push(stream) {
                            Ok(depth) => {
                                metrics
                                    .record_max(obs::MaxGauge::QueueDepthHighWater, depth as u64);
                            }
                            Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                metrics.add(obs::Counter::HttpShed, 1);
                                shed_connection(stream, self.config.retry_after_secs);
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            queue.close();
            // Scope exit joins the workers: every admitted connection
            // is served before we return (graceful drain).
        });

        Ok(ServeReport {
            served: served.load(Ordering::SeqCst),
            shed: shed.load(Ordering::SeqCst),
            snapshot: self.nalix.metrics(),
        })
    }
}

/// Writes the overload response. Failures are ignored: the client is
/// being shed, and the acceptor must not block on it.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let body = error_body("http.overloaded", "server is at capacity", "retry shortly");
    let _ = Response::json(503, body)
        .with_header("Retry-After", retry_after_secs.to_string())
        .write_to(&mut stream);
    // Drain whatever request bytes already arrived (without blocking:
    // the acceptor must stay fast). Closing a socket with unread data
    // in its receive buffer sends RST, which can destroy the 503 we
    // just wrote before the client reads it.
    if stream.set_nonblocking(true).is_ok() {
        let mut sink = [0u8; 4096];
        use std::io::Read as _;
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// The full lifecycle of one admitted connection: read, route, write.
fn handle_connection(stream: TcpStream, nalix: &Nalix<'_>, config: &ServerConfig, shared: &Shared) {
    let metrics = nalix.metrics_handle();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let response = match http::read_request(&mut reader, config.max_body) {
        Ok(req) => {
            metrics.add(obs::Counter::HttpRequests, 1);
            if let Some(delay) = config.debug_handler_delay {
                std::thread::sleep(delay);
            }
            route(&req, nalix, config, shared)
        }
        Err(ReadError::Eof) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::BadRequest(msg)) => {
            Response::json(400, error_body("http.bad_request", &msg, "fix the request"))
        }
        Err(ReadError::TooLarge(msg)) => Response::json(
            413,
            error_body("http.payload_too_large", &msg, "send a smaller request"),
        ),
    };
    if matches!(response.status(), 400 | 404 | 405 | 413) {
        // Transport-level client errors. 422/504 are *successful*
        // NL-pipeline rejections, already visible as query spans.
        metrics.add(obs::Counter::HttpBadRequests, 1);
    }
    let _ = response.write_to(&mut write_half);
    let _ = write_half.flush();
}

/// Maps method+path to a handler, with proper 405/404 responses.
fn route(req: &Request, nalix: &Nalix<'_>, config: &ServerConfig, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => with_span(nalix, obs::Stage::HttpQuery, || {
            handle_query(req, nalix, config)
        }),
        ("POST", "/batch") => with_span(nalix, obs::Stage::HttpBatch, || {
            handle_batch(req, nalix, config)
        }),
        ("GET", "/health") => with_span(nalix, obs::Stage::HttpHealth, || handle_health(shared)),
        ("GET", "/metrics") => with_span(nalix, obs::Stage::HttpMetrics, || {
            Response::text(200, nalix.metrics().to_prometheus())
        }),
        (_, "/query") | (_, "/batch") => Response::json(
            405,
            error_body("http.method_not_allowed", "use POST", "send a POST request"),
        )
        .with_header("Allow", "POST".to_string()),
        (_, "/health") | (_, "/metrics") => Response::json(
            405,
            error_body("http.method_not_allowed", "use GET", "send a GET request"),
        )
        .with_header("Allow", "GET".to_string()),
        _ => Response::json(
            404,
            error_body(
                "http.not_found",
                "unknown path",
                "use /query, /batch, /health, or /metrics",
            ),
        ),
    }
}

/// Runs `f` under a stage span whose outcome reflects the HTTP status:
/// 2xx → Ok, anything else → EvalError-class failure for the span.
fn with_span(nalix: &Nalix<'_>, stage: obs::Stage, f: impl FnOnce() -> Response) -> Response {
    let metrics = nalix.metrics_handle();
    let mut span = metrics.span(stage);
    let response = f();
    span.set_outcome(if response.status() < 400 {
        obs::SpanOutcome::Ok
    } else {
        obs::SpanOutcome::EvalError
    });
    drop(span);
    response
}

/// `POST /query`: a JSON object `{"question": "...", "deadline_ms": n}`
/// or a bare `text/plain` question.
fn handle_query(req: &Request, nalix: &Nalix<'_>, config: &ServerConfig) -> Response {
    let (question, deadline_ms) = match parse_query_body(req) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let budget = budget_for(deadline_ms, config);
    match nalix.answer_full(&question, &budget) {
        Ok(answer) => {
            let body = Json::Obj(vec![
                (
                    "answers".to_string(),
                    Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
                ),
                ("count".to_string(), Json::Num(answer.values.len() as f64)),
                ("xquery".to_string(), Json::Str(answer.xquery.clone())),
                ("cached".to_string(), Json::Bool(answer.cached)),
                (
                    "warnings".to_string(),
                    Json::Arr(
                        answer
                            .warnings
                            .iter()
                            .map(|w| Json::Str(w.message()))
                            .collect(),
                    ),
                ),
            ]);
            Response::json(200, body.render())
        }
        Err(err) => query_error_response(&err),
    }
}

/// `POST /batch`: `{"questions": ["...", ...]}`, answered sequentially
/// on this worker, results in input order.
fn handle_batch(req: &Request, nalix: &Nalix<'_>, config: &ServerConfig) -> Response {
    /// Per-request cap on batch size; larger batches should be split
    /// by the client (keeps one worker from being pinned for minutes).
    const MAX_BATCH: usize = 256;
    let parsed = match Json::parse(body_str(req)) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        }
    };
    let Some(questions) = parsed.get("questions").and_then(Json::as_array) else {
        return Response::json(
            400,
            error_body(
                "http.bad_request",
                "missing \"questions\" array",
                "send {\"questions\": [\"...\"]}",
            ),
        );
    };
    if questions.len() > MAX_BATCH {
        return Response::json(
            413,
            error_body(
                "http.payload_too_large",
                &format!(
                    "batch of {} exceeds the {MAX_BATCH} question cap",
                    questions.len()
                ),
                "split the batch",
            ),
        );
    }
    let budget = budget_for(None, config);
    let mut results = Vec::with_capacity(questions.len());
    for q in questions {
        let Some(text) = q.as_str() else {
            results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(
                    "http.bad_request",
                    "question is not a string",
                    "send strings",
                ),
            )]));
            continue;
        };
        match nalix.answer_full(text, &budget) {
            Ok(answer) => results.push(Json::Obj(vec![
                (
                    "answers".to_string(),
                    Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
                ),
                ("count".to_string(), Json::Num(answer.values.len() as f64)),
            ])),
            Err(err) => results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(err.code(), &err.to_string(), err.suggestion()),
            )])),
        }
    }
    let body = Json::Obj(vec![
        ("count".to_string(), Json::Num(results.len() as f64)),
        ("results".to_string(), Json::Arr(results)),
    ]);
    Response::json(200, body.render())
}

/// `GET /health`: liveness plus drain state.
fn handle_health(shared: &Shared) -> Response {
    let status = if shared.shutdown.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let body = Json::Obj(vec![
        ("status".to_string(), Json::Str(status.to_string())),
        (
            "uptime_ms".to_string(),
            Json::Num(shared.started.elapsed().as_millis() as f64),
        ),
    ]);
    Response::json(200, body.render())
}

/// Extracts (question, deadline_ms) from a `/query` body, accepting
/// JSON or plain text.
fn parse_query_body(req: &Request) -> Result<(String, Option<u64>), Response> {
    let text = body_str(req);
    let looks_json = req
        .content_type
        .as_deref()
        .map(|t| t.contains("json"))
        .unwrap_or_else(|| text.trim_start().starts_with('{'));
    let (question, deadline) = if looks_json {
        let parsed = Json::parse(text).map_err(|e| {
            Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        })?;
        let question = parsed
            .get("question")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                Response::json(
                    400,
                    error_body(
                        "http.bad_request",
                        "missing \"question\" field",
                        "send {\"question\": \"...\"}",
                    ),
                )
            })?;
        (question, parsed.get("deadline_ms").and_then(Json::as_u64))
    } else {
        (text.trim().to_string(), None)
    };
    if question.trim().is_empty() {
        return Err(Response::json(
            400,
            error_body("http.bad_request", "empty question", "ask a question"),
        ));
    }
    Ok((question, deadline))
}

/// The request body as (lossy) UTF-8.
fn body_str(req: &Request) -> &str {
    std::str::from_utf8(&req.body).unwrap_or("")
}

/// The evaluation budget for one request: the client's deadline,
/// clamped to the configured maximum; the default when none given.
fn budget_for(deadline_ms: Option<u64>, config: &ServerConfig) -> EvalBudget {
    let requested = deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline);
    EvalBudget::default().with_time_limit(requested.min(config.max_deadline))
}

/// Maps a pipeline error to its HTTP response: stable code, rendered
/// message, rephrasing suggestion, and a status that distinguishes
/// "your question" (422) from "our evaluator" (500) from "out of time"
/// (504).
fn query_error_response(err: &QueryError) -> Response {
    let status = match err {
        QueryError::Parse { .. }
        | QueryError::Classify { .. }
        | QueryError::Validate { .. }
        | QueryError::Translate { .. } => 422,
        QueryError::Eval { .. } => 500,
        QueryError::ResourceExhausted { resource, .. } => match resource {
            ExhaustedResource::Time => 504,
            ExhaustedResource::Depth | ExhaustedResource::Tuples => 422,
        },
    };
    Response::json(
        status,
        error_body(err.code(), &err.to_string(), err.suggestion()),
    )
}

/// A rendered `{"error": {...}}` JSON body.
fn error_body(code: &str, message: &str, suggestion: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        error_obj(code, message, suggestion),
    )])
    .render()
}

/// The inner error object shared by `/query` and `/batch` bodies.
fn error_obj(code: &str, message: &str, suggestion: &str) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Str(code.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
        ("suggestion".to_string(), Json::Str(suggestion.to_string())),
    ])
}
