//! The `nalixd` server proper: epoll event loop, worker pool,
//! admission control, routing.
//!
//! Architecture (one paragraph): a single event-loop thread owns every
//! client socket, nonblocking, registered with a raw-FFI
//! [`epoll`](crate::epoll) instance. Readable sockets are drained into
//! per-connection incremental [`RequestParser`]s; each *complete*
//! request is `try_push`ed as a [`Job`] into a [`BoundedQueue`], and a
//! fixed pool of worker threads pops jobs, runs the route→answer
//! cycle, and hands the finished [`Response`] back to the loop through
//! a completion list plus a socketpair wakeup. The loop serializes the
//! response into the connection's out-buffer and writes it back,
//! partial-write aware. Connections are HTTP/1.1 keep-alive by default
//! and may pipeline; because the loop dispatches at most one in-flight
//! request per connection and only parses the next one after the
//! previous response is fully written, responses are in order by
//! construction. Overload is explicit: a full queue makes the *event
//! loop* answer `503 Service Unavailable` with `Retry-After` and close
//! that connection, so a saturated server keeps answering (with
//! backpressure) instead of accumulating unbounded work. Shutdown is a
//! drain: the listener is deregistered, idle connections close,
//! in-flight requests finish and flush, and [`Server::serve`] returns
//! a final [`ServeReport`].
//!
//! The workers are plainly spawned threads sharing the
//! [`DocumentStore`] through an `Arc` — the pipelines are `'static`,
//! so no scoped borrowing is needed and the store can hot-swap
//! documents underneath running requests (each request pins its own
//! snapshot for its lifetime).

use crate::epoll::{Epoll, Event, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::http::{ReadError, Request, RequestParser, Response};
use crate::json::Json;
use crate::queue::{BoundedQueue, PushError};
use nalix::QueryError;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use store::{DocSpec, DocumentStore, EditSpec, StoreError};
use xquery::{EvalBudget, ExhaustedResource};

/// Token for the listening socket in the epoll set.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for the worker-completion wakeup pipe.
const NOTIFY_TOKEN: u64 = u64::MAX - 1;
/// Event-loop tick: the upper bound on how stale a timeout sweep or a
/// shutdown-flag check can be.
const TICK_MS: i32 = 50;
/// Per-wakeup socket read chunk.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on bytes drained from a closing socket to avoid an RST
/// clobbering the response we just wrote.
const CLOSE_DRAIN_BUDGET: usize = 64 * 1024;

/// Everything tunable about a [`Server`], with production defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads. Each worker serves one request at a time.
    pub workers: usize,
    /// Admission queue capacity in *requests*; requests beyond it are
    /// shed with 503.
    pub queue_capacity: usize,
    /// How long a partially received request may sit before the
    /// connection is answered with `408 Request Timeout` (slow-client
    /// defense).
    pub read_timeout: Duration,
    /// How long a pending response write may stall before the
    /// connection is dropped (slow-reader defense).
    pub write_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// How long a keep-alive connection may sit with no request in
    /// progress before it is silently closed.
    pub idle_timeout: Duration,
    /// Requests served on one connection before it is closed (with
    /// `Connection: close` on the final response). Bounds per-client
    /// resource pinning.
    pub max_requests_per_conn: usize,
    /// Open-connection cap; accepts beyond it are shed with 503.
    pub max_connections: usize,
    /// Evaluation deadline applied when the request names none.
    pub default_deadline: Duration,
    /// Hard cap on client-requested deadlines.
    pub max_deadline: Duration,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Live conversational sessions kept at once; beyond it the
    /// least-recently-used session is evicted (its next follow-up gets
    /// a typed expired-context error).
    pub session_capacity: usize,
    /// Idle time after which a session expires. Checked lazily at the
    /// next checkout, so an expired session costs nothing until (and
    /// unless) it is asked for again.
    pub session_ttl: Duration,
    /// Test-only latency injected into every handled request, used to
    /// make overload and drain tests deterministic. `None` in
    /// production.
    pub debug_handler_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 8,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body: 1024 * 1024,
            idle_timeout: Duration::from_secs(30),
            max_requests_per_conn: 10_000,
            max_connections: 10_240,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            retry_after_secs: 1,
            session_capacity: nalix::session::DEFAULT_SESSION_CAPACITY,
            session_ttl: nalix::session::DEFAULT_SESSION_TTL,
            debug_handler_delay: None,
        }
    }
}

/// State shared between [`Server::serve`] and its [`ServerHandle`]s.
struct Shared {
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    started: Instant,
}

/// A clonable remote control for a running server: signal shutdown,
/// read the bound address. Obtained from [`Server::handle`] *before*
/// calling the blocking [`Server::serve`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish in-flight
    /// requests, return from [`Server::serve`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once [`shutdown`](ServerHandle::shutdown) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The address the listener is actually bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// What a completed [`Server::serve`] run did.
#[derive(Debug)]
pub struct ServeReport {
    /// Requests handed to a worker (whether they then succeeded or
    /// failed at the HTTP or query layer).
    pub served: u64,
    /// Requests shed with 503: the queue was full at dispatch, or the
    /// connection cap was hit at accept.
    pub shed: u64,
    /// Final merged metrics snapshot (store + every document, live and
    /// retired), taken after the last worker exited.
    pub snapshot: obs::MetricsSnapshot,
}

/// Everything a worker thread needs, behind one `Arc`.
struct Ctx {
    store: Arc<DocumentStore>,
    config: ServerConfig,
    shared: Arc<Shared>,
    /// Conversational sessions (LRU + TTL bounded), shared by all
    /// workers; counters land in the store's metrics registry.
    sessions: nalix::SessionStore,
}

/// One parsed request bound for a worker, tagged with the connection
/// it came from.
struct Job {
    token: u64,
    request: Request,
}

/// One finished response headed back to the event loop.
struct Done {
    token: u64,
    response: Response,
}

/// The worker→loop handoff: finished responses plus the wakeup pipe
/// that makes the loop notice them.
struct Completions {
    done: Mutex<Vec<Done>>,
    /// Write end of the wakeup socketpair, nonblocking. A full pipe is
    /// fine: it already guarantees a pending wakeup.
    notify: UnixStream,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Serialized response bytes awaiting write, and how far we got.
    out: Vec<u8>,
    out_pos: usize,
    /// A request from this connection is queued or being handled.
    in_flight: bool,
    /// Whether the in-flight request negotiated keep-alive.
    req_keep_alive: bool,
    /// Close the socket once `out` is fully flushed.
    close_after_write: bool,
    /// The peer sent EOF; no more requests will arrive.
    saw_eof: bool,
    requests_served: u64,
    last_activity: Instant,
    /// The epoll interest currently registered for this socket.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, max_body: usize, now: Instant) -> Self {
        Conn {
            stream,
            parser: RequestParser::new(max_body),
            out: Vec::new(),
            out_pos: 0,
            in_flight: false,
            req_keep_alive: false,
            close_after_write: false,
            saw_eof: false,
            requests_served: 0,
            last_activity: now,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn write_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Generation-tagged connection storage. A token is `(gen << 32) |
/// slot`; a stale token (connection closed, slot reused) fails the
/// generation check instead of addressing the wrong client.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn token_at(&self, idx: usize) -> u64 {
        ((self.gens[idx] as u64) << 32) | idx as u64
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(conn);
                idx
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        self.live += 1;
        self.token_at(idx)
    }

    fn index_of(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        (self.gens.get(idx).copied() == Some(gen)).then_some(idx)
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        let idx = self.index_of(token)?;
        self.slots.get_mut(idx).and_then(Option::as_mut)
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let idx = self.index_of(token)?;
        let conn = self.slots.get_mut(idx).and_then(Option::take);
        if conn.is_some() {
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.live -= 1;
        }
        conn
    }
}

/// What [`EventLoop::flush_step`] did with a connection's out-buffer.
enum Flush {
    /// The connection died (or was already gone) and has been closed.
    Closed,
    /// Bytes remain; the socket would block. Wait for `EPOLLOUT`.
    Pending,
    /// The out-buffer is empty.
    Drained,
}

/// What [`EventLoop::try_dispatch`] concluded for an idle connection.
enum Step {
    /// A request was handed to the worker pool.
    Dispatched,
    /// A loop-generated response (400/413/503) was staged for writing.
    Enqueued,
    /// No complete request is buffered yet.
    Idle,
    /// The connection was closed (EOF with nothing outstanding).
    Closed,
}

/// The single-threaded front half: epoll state, connections, and the
/// dispatch/completion plumbing.
struct EventLoop {
    epoll: Epoll,
    /// `None` once a drain begins.
    listener: Option<TcpListener>,
    notify_rx: UnixStream,
    slab: Slab,
    queue: Arc<BoundedQueue<Job>>,
    completions: Arc<Completions>,
    ctx: Arc<Ctx>,
    metrics: Arc<obs::MetricsRegistry>,
    draining: bool,
    shed: u64,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        let mut events = vec![Event::zeroed(); 1024];
        loop {
            if !self.draining && self.ctx.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.slab.live == 0 {
                return Ok(());
            }
            let n = self.epoll.wait(&mut events, TICK_MS)?;
            if n > 0 {
                self.metrics.add(obs::Counter::EpollWakeups, 1);
            }
            let now = Instant::now();
            for ev in events.iter().take(n).copied() {
                let (flags, token) = ({ ev.events }, { ev.data });
                match token {
                    LISTENER_TOKEN => self.accept_ready(now),
                    NOTIFY_TOKEN => self.drain_notify(),
                    token => self.conn_event(token, flags, now),
                }
            }
            self.process_completions();
            self.sweep_timeouts(Instant::now());
        }
    }

    /// Stops admission and closes every connection that has nothing
    /// admitted on it: idle keep-alive peers and half-read requests
    /// are dropped; in-flight and mid-write connections finish and
    /// flush first.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        let tokens: Vec<u64> = (0..self.slab.slots.len())
            .filter(|&idx| self.slab.slots[idx].is_some())
            .map(|idx| self.slab.token_at(idx))
            .collect();
        for token in tokens {
            let close_now = {
                let Some(conn) = self.slab.get_mut(token) else {
                    continue;
                };
                if conn.in_flight || conn.write_pending() {
                    conn.close_after_write = true;
                    false
                } else {
                    true
                }
            };
            if close_now {
                self.close(token);
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.slab.live >= self.ctx.config.max_connections {
                        self.shed += 1;
                        self.metrics.add(obs::Counter::HttpShed, 1);
                        shed_connection(stream, self.ctx.config.retry_after_secs);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self
                        .slab
                        .insert(Conn::new(stream, self.ctx.config.max_body, now));
                    if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP, token).is_err() {
                        self.slab.remove(token);
                        continue;
                    }
                    self.metrics.record_max(
                        obs::MaxGauge::OpenConnectionsHighWater,
                        self.slab.live as u64,
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, flags: u32, now: Instant) {
        if self.slab.get_mut(token).is_none() {
            return; // stale token: closed earlier in this batch
        }
        if flags & (EPOLLERR | EPOLLHUP) != 0 {
            // Full hangup or socket error: nothing further can be
            // written, so a pending response is moot. If a request is
            // still in flight its worker finishes (the admission
            // contract), but the completion finds no connection.
            self.close(token);
            return;
        }
        if flags & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(token, now);
        } else if flags & EPOLLOUT != 0 {
            self.pump(token, now);
        }
    }

    fn readable(&mut self, token: u64, now: Instant) {
        // Backpressure: never buffer much beyond one max-size request
        // per connection. Level-triggered epoll re-reports the rest.
        let soft_cap = self.ctx.config.max_body + 2 * crate::http::MAX_LINE;
        let mut dead = false;
        {
            let Some(conn) = self.slab.get_mut(token) else {
                return;
            };
            if conn.in_flight || conn.write_pending() || conn.close_after_write {
                return; // not reading while a response is owed
            }
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                if conn.parser.buffered() > soft_cap {
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.feed(&chunk[..n]);
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close(token);
            return;
        }
        self.pump(token, now);
    }

    /// Drives one connection as far as it can go right now: flush
    /// pending bytes, then either close, wait, or parse-and-dispatch
    /// the next pipelined request. The loop (rather than recursion)
    /// makes the flush→respond→flush chain for loop-generated
    /// responses terminate visibly.
    fn pump(&mut self, token: u64, now: Instant) {
        enum Next {
            Close,
            Wait,
            Dispatch,
        }
        loop {
            match self.flush_step(token, now) {
                Flush::Closed => return,
                Flush::Pending => break,
                Flush::Drained => {}
            }
            let next = {
                let Some(conn) = self.slab.get_mut(token) else {
                    return;
                };
                if conn.close_after_write {
                    Next::Close
                } else if conn.in_flight {
                    Next::Wait
                } else {
                    Next::Dispatch
                }
            };
            match next {
                Next::Close => {
                    self.graceful_close(token);
                    return;
                }
                Next::Wait => break,
                Next::Dispatch => match self.try_dispatch(token, now) {
                    Step::Enqueued => continue,
                    Step::Dispatched | Step::Idle => break,
                    Step::Closed => return,
                },
            }
        }
        self.update_interest(token);
    }

    /// Writes as much of the out-buffer as the socket will take.
    fn flush_step(&mut self, token: u64, now: Instant) -> Flush {
        let mut result = Flush::Drained;
        {
            let Some(conn) = self.slab.get_mut(token) else {
                return Flush::Closed;
            };
            while conn.write_pending() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        result = Flush::Closed;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        result = Flush::Pending;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        result = Flush::Closed;
                        break;
                    }
                }
            }
            if matches!(result, Flush::Drained) {
                conn.out.clear();
                conn.out_pos = 0;
            }
        }
        if matches!(result, Flush::Closed) {
            self.close(token);
        }
        result
    }

    /// Polls the connection's parser for the next complete request and
    /// either dispatches it to the worker pool, sheds it, or stages a
    /// parse-error response.
    fn try_dispatch(&mut self, token: u64, now: Instant) -> Step {
        if self.draining {
            // Belt and braces: begin_drain already closed or flagged
            // every connection, so a pipelined follow-up request never
            // starts during a drain.
            self.close(token);
            return Step::Closed;
        }
        enum Outcome {
            Dispatch(Request),
            Error(Response),
            CloseEof,
            Idle,
        }
        let outcome = {
            let Some(conn) = self.slab.get_mut(token) else {
                return Step::Closed;
            };
            match conn.parser.poll() {
                Ok(Some(request)) => Outcome::Dispatch(request),
                Ok(None) => {
                    if conn.saw_eof {
                        // Clean close between requests, or a request
                        // truncated mid-flight: either way there is
                        // nobody left to answer.
                        Outcome::CloseEof
                    } else {
                        Outcome::Idle
                    }
                }
                Err(ReadError::BadRequest(msg)) => Outcome::Error(Response::json(
                    400,
                    error_body("http.bad_request", &msg, "fix the request"),
                )),
                Err(ReadError::TooLarge(msg)) => Outcome::Error(Response::json(
                    413,
                    error_body("http.payload_too_large", &msg, "send a smaller request"),
                )),
                Err(ReadError::Io(_)) | Err(ReadError::Eof) => Outcome::CloseEof,
            }
        };
        match outcome {
            Outcome::Idle => Step::Idle,
            Outcome::CloseEof => {
                self.close(token);
                Step::Closed
            }
            Outcome::Error(response) => {
                self.metrics.add(obs::Counter::HttpBadRequests, 1);
                match self.slab.get_mut(token) {
                    Some(conn) => {
                        // Parse errors poison the connection: framing
                        // is unreliable past this point, so answer and
                        // close.
                        stage_response(conn, &response, false, now);
                        Step::Enqueued
                    }
                    None => Step::Closed,
                }
            }
            Outcome::Dispatch(request) => {
                let max_requests = self.ctx.config.max_requests_per_conn as u64;
                let retry_after = self.ctx.config.retry_after_secs;
                let Some(conn) = self.slab.get_mut(token) else {
                    return Step::Closed;
                };
                if conn.requests_served >= 1 {
                    self.metrics.add(obs::Counter::HttpKeepaliveReuse, 1);
                }
                let at_cap = conn.requests_served + 1 >= max_requests;
                conn.req_keep_alive = request.keep_alive && !at_cap;
                match self.queue.try_push(Job { token, request }) {
                    Ok(depth) => {
                        conn.in_flight = true;
                        self.metrics.add(obs::Counter::HttpRequests, 1);
                        self.metrics
                            .record_max(obs::MaxGauge::QueueDepthHighWater, depth as u64);
                        Step::Dispatched
                    }
                    Err(PushError::Full(_)) | Err(PushError::Closed(_)) => {
                        self.shed += 1;
                        self.metrics.add(obs::Counter::HttpShed, 1);
                        let response = Response::json(
                            503,
                            error_body("http.overloaded", "server is at capacity", "retry shortly"),
                        )
                        .with_header("Retry-After", retry_after.to_string());
                        stage_response(conn, &response, false, now);
                        Step::Enqueued
                    }
                }
            }
        }
    }

    /// Hands finished worker responses back to their connections.
    fn process_completions(&mut self) {
        let done = {
            let mut guard = self
                .completions
                .done
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        let now = Instant::now();
        for item in done {
            if matches!(item.response.status(), 400 | 404 | 405 | 413) {
                // Transport-level client errors. 422/504 are
                // *successful* NL-pipeline rejections, already visible
                // as query spans.
                self.metrics.add(obs::Counter::HttpBadRequests, 1);
            }
            let Some(conn) = self.slab.get_mut(item.token) else {
                continue; // client went away mid-handling
            };
            conn.requests_served += 1;
            let keep_alive = conn.req_keep_alive && !self.draining;
            stage_response(conn, &item.response, keep_alive, now);
            self.pump(item.token, now);
        }
    }

    /// Empties the wakeup pipe; the completion list is what carries
    /// the data.
    fn drain_notify(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.notify_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Applies the three per-connection clocks: write stalls, 408 for
    /// half-received requests, and the keep-alive idle timeout.
    fn sweep_timeouts(&mut self, now: Instant) {
        enum Fate {
            Close,
            Timeout408,
        }
        let mut expired: Vec<(u64, Fate)> = Vec::new();
        for idx in 0..self.slab.slots.len() {
            let Some(conn) = self.slab.slots[idx].as_ref() else {
                continue;
            };
            if conn.in_flight {
                continue; // the worker owns the clock (EvalBudget)
            }
            let idle = now.saturating_duration_since(conn.last_activity);
            let token = self.slab.token_at(idx);
            if conn.write_pending() || conn.close_after_write {
                if idle > self.ctx.config.write_timeout {
                    expired.push((token, Fate::Close));
                }
            } else if conn.parser.mid_request() {
                if idle > self.ctx.config.read_timeout {
                    expired.push((token, Fate::Timeout408));
                }
            } else if idle > self.ctx.config.idle_timeout {
                expired.push((token, Fate::Close));
            }
        }
        for (token, fate) in expired {
            match fate {
                Fate::Close => self.close(token),
                Fate::Timeout408 => {
                    self.metrics.add(obs::Counter::HttpTimeouts, 1);
                    let response = Response::json(
                        408,
                        error_body(
                            "http.request_timeout",
                            "timed out waiting for the rest of the request",
                            "send the complete request promptly",
                        ),
                    );
                    if let Some(conn) = self.slab.get_mut(token) {
                        stage_response(conn, &response, false, now);
                    }
                    self.pump(token, now);
                }
            }
        }
    }

    /// Closes after draining already-received bytes, so the kernel
    /// does not turn unread data into an RST that destroys the
    /// response in flight to the client.
    fn graceful_close(&mut self, token: u64) {
        if let Some(conn) = self.slab.get_mut(token) {
            let mut sink = [0u8; 4096];
            let mut budget = CLOSE_DRAIN_BUDGET;
            loop {
                match conn.stream.read(&mut sink) {
                    Ok(n) if n > 0 && n <= budget => budget -= n,
                    _ => break,
                }
            }
        }
        self.close(token);
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.slab.remove(token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
        }
    }

    /// Re-registers the socket for exactly the events the connection
    /// can act on: `EPOLLOUT` while a response is buffered, `EPOLLIN`
    /// while waiting for the next request, and *nothing* while a
    /// worker holds the request (errors and hangups are always
    /// reported regardless, so a dead client still gets noticed
    /// without a level-triggered busy loop).
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.slab.get_mut(token) else {
            return;
        };
        let want = if conn.write_pending() {
            EPOLLOUT
        } else if !conn.in_flight && !conn.close_after_write {
            EPOLLIN | EPOLLRDHUP
        } else {
            0
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, want, token).is_ok() {
                conn.interest = want;
            }
        }
    }
}

/// Serializes a response into the connection's out-buffer and flips
/// the connection back to write mode.
fn stage_response(conn: &mut Conn, response: &Response, keep_alive: bool, now: Instant) {
    conn.out = response.serialize(keep_alive);
    conn.out_pos = 0;
    conn.close_after_write = !keep_alive;
    conn.in_flight = false;
    conn.last_activity = now;
}

/// A worker thread: pop, route, hand back, repeat until the queue
/// closes.
fn worker_loop(
    queue: &BoundedQueue<Job>,
    served: &AtomicU64,
    ctx: &Ctx,
    completions: &Completions,
) {
    while let Some(job) = queue.pop() {
        served.fetch_add(1, Ordering::Relaxed);
        if let Some(delay) = ctx.config.debug_handler_delay {
            std::thread::sleep(delay);
        }
        let response = match catch_unwind(AssertUnwindSafe(|| route(&job.request, ctx))) {
            Ok(response) => response,
            Err(_) => Response::json(
                500,
                error_body(
                    "http.internal",
                    "the handler failed unexpectedly",
                    "retry; report this if it repeats",
                ),
            ),
        };
        {
            let mut done = completions.done.lock().unwrap_or_else(|e| e.into_inner());
            done.push(Done {
                token: job.token,
                response,
            });
        }
        // Wake the event loop. WouldBlock means the pipe already holds
        // unread wakeups, which serves the same purpose.
        let _ = (&completions.notify).write(&[1u8]);
    }
    obs::flush_hot();
}

/// A bound-but-not-yet-serving nalixd server over a [`DocumentStore`].
pub struct Server {
    store: Arc<DocumentStore>,
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener. Accepts an owned [`DocumentStore`] or an
    /// existing `Arc` (share it to drive the store from outside the
    /// server, e.g. preloading). Fails only on bind errors (port in
    /// use, bad address).
    pub fn bind(store: impl Into<Arc<DocumentStore>>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            store: store.into(),
            listener,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                local_addr,
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The document store this server fronts.
    pub fn store(&self) -> &Arc<DocumentStore> {
        &self.store
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the server until [`ServerHandle::shutdown`] is called,
    /// then drains and returns. Blocks the calling thread on the
    /// event loop; the worker pool is plain spawned threads sharing
    /// the store via `Arc`.
    pub fn serve(self) -> io::Result<ServeReport> {
        crate::epoll::raise_nofile_limit();
        self.listener.set_nonblocking(true)?;
        let metrics = self.store.metrics_handle();
        let ctx = Arc::new(Ctx {
            store: Arc::clone(&self.store),
            config: self.config.clone(),
            shared: Arc::clone(&self.shared),
            sessions: nalix::SessionStore::with_metrics(
                self.config.session_capacity,
                self.config.session_ttl,
                Arc::clone(&metrics),
            ),
        });
        let queue = Arc::new(BoundedQueue::<Job>::new(self.config.queue_capacity));
        let served = Arc::new(AtomicU64::new(0));

        let epoll = Epoll::new()?;
        epoll.add(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        let (notify_rx, notify_tx) = UnixStream::pair()?;
        notify_rx.set_nonblocking(true)?;
        notify_tx.set_nonblocking(true)?;
        epoll.add(notify_rx.as_raw_fd(), EPOLLIN, NOTIFY_TOKEN)?;
        let completions = Arc::new(Completions {
            done: Mutex::new(Vec::new()),
            notify: notify_tx,
        });

        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let served = Arc::clone(&served);
                let ctx = Arc::clone(&ctx);
                let completions = Arc::clone(&completions);
                std::thread::spawn(move || worker_loop(&queue, &served, &ctx, &completions))
            })
            .collect();

        let mut event_loop = EventLoop {
            epoll,
            listener: Some(self.listener),
            notify_rx,
            slab: Slab::new(),
            queue: Arc::clone(&queue),
            completions,
            ctx,
            metrics,
            draining: false,
            shed: 0,
        };
        let result = event_loop.run();
        // Drain the worker pool even if the loop failed: every
        // admitted request is served before we report.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        // The loop thread (this thread) counted admissions, sheds, and
        // timeouts; flush its hot buffers so the final snapshot sees
        // them.
        obs::flush_hot();
        result?;

        Ok(ServeReport {
            served: served.load(Ordering::SeqCst),
            shed: event_loop.shed,
            snapshot: self.store.snapshot(),
        })
    }
}

/// Writes the overload response on a just-accepted (still blocking)
/// socket. Failures are ignored: the client is being shed, and the
/// event loop must not block on it.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let body = error_body("http.overloaded", "server is at capacity", "retry shortly");
    let _ = Response::json(503, body)
        .with_header("Retry-After", retry_after_secs.to_string())
        .write_to(&mut stream);
    // Drain whatever request bytes already arrived (without blocking:
    // the event loop must stay fast). Closing a socket with unread
    // data in its receive buffer sends RST, which can destroy the 503
    // we just wrote before the client reads it.
    if stream.set_nonblocking(true).is_ok() {
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Maps method+path to a handler, with proper 405/404 responses.
fn route(req: &Request, ctx: &Ctx) -> Response {
    let metrics = ctx.store.metrics_handle();
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => with_span(&metrics, obs::Stage::HttpQuery, || handle_query(req, ctx)),
        ("POST", "/batch") => with_span(&metrics, obs::Stage::HttpBatch, || handle_batch(req, ctx)),
        ("GET", "/health") => with_span(&metrics, obs::Stage::HttpHealth, || {
            handle_health(&ctx.shared)
        }),
        ("GET", "/metrics") => with_span(&metrics, obs::Stage::HttpMetrics, || {
            Response::text(200, ctx.store.snapshot().to_prometheus())
        }),
        ("GET", "/docs") => with_span(&metrics, obs::Stage::HttpDocs, || {
            handle_docs_list(&ctx.store)
        }),
        ("POST", path) if update_doc_name(path).is_some() => {
            with_span(&metrics, obs::Stage::HttpUpdate, || {
                handle_docs_update(req, &ctx.store)
            })
        }
        ("PUT", path) if path.strip_prefix("/docs/").is_some() => {
            with_span(&metrics, obs::Stage::HttpDocs, || {
                handle_docs_put(req, &ctx.store)
            })
        }
        ("DELETE", path) if path.strip_prefix("/docs/").is_some() => {
            with_span(&metrics, obs::Stage::HttpDocs, || {
                handle_docs_delete(req, &ctx.store)
            })
        }
        (_, "/query") | (_, "/batch") => Response::json(
            405,
            error_body("http.method_not_allowed", "use POST", "send a POST request"),
        )
        .with_header("Allow", "POST".to_string()),
        (_, "/health") | (_, "/metrics") => Response::json(
            405,
            error_body("http.method_not_allowed", "use GET", "send a GET request"),
        )
        .with_header("Allow", "GET".to_string()),
        (_, "/docs") => Response::json(
            405,
            error_body("http.method_not_allowed", "use GET", "send a GET request"),
        )
        .with_header("Allow", "GET".to_string()),
        (_, path) if update_doc_name(path).is_some() => Response::json(
            405,
            error_body(
                "http.method_not_allowed",
                "use POST to apply edits",
                "send a POST request",
            ),
        )
        .with_header("Allow", "POST".to_string()),
        (_, path) if path.starts_with("/docs/") => Response::json(
            405,
            error_body(
                "http.method_not_allowed",
                "use PUT to load/reload, DELETE to evict, or POST /docs/<name>/update to edit",
                "send a PUT, DELETE, or POST request",
            ),
        )
        .with_header("Allow", "PUT, DELETE".to_string()),
        _ => Response::json(
            404,
            error_body(
                "http.not_found",
                "unknown path",
                "use /query, /batch, /docs, /health, or /metrics",
            ),
        ),
    }
}

/// Runs `f` under a stage span whose outcome reflects the HTTP status:
/// 2xx → Ok, anything else → EvalError-class failure for the span.
fn with_span(
    metrics: &obs::MetricsRegistry,
    stage: obs::Stage,
    f: impl FnOnce() -> Response,
) -> Response {
    let mut span = metrics.span(stage);
    let response = f();
    span.set_outcome(if response.status() < 400 {
        obs::SpanOutcome::Ok
    } else {
        obs::SpanOutcome::EvalError
    });
    drop(span);
    response
}

/// `POST /query`: a JSON object `{"question": "...", "doc": "name"?,
/// "deadline_ms": n?, "session": "id"?, "backend": "xquery"|"sql"?}`
/// or a bare `text/plain` question (served by the default document on
/// the default backend). With a `session` id the
/// question may be a follow-up ("Of those, ...", "What about ...?")
/// resolved against the previous turn.
fn handle_query(req: &Request, ctx: &Ctx) -> Response {
    let parsed = match parse_query_body(req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    if let Some(id) = parsed.session.clone() {
        return handle_session_query(&parsed, &id, ctx);
    }
    // Stateless requests have no previous turn, so an anaphoric
    // follow-up cannot be resolved: answer with the typed
    // missing-context error (and its rephrasing suggestion) instead of
    // letting the parser reject the fragment as ungrammatical.
    if let Some(follow) = nalix::detect_follow_up(&parsed.question) {
        return query_error_response(&QueryError::missing_context(follow.phrase()));
    }
    let pipeline = match ctx.store.get(parsed.doc.as_deref()) {
        Ok(p) => p,
        Err(err) => return store_error_response(&err),
    };
    let budget = budget_for(parsed.deadline_ms, &ctx.config);
    let backend = parsed.backend.unwrap_or_else(|| pipeline.nalix().backend());
    match pipeline
        .nalix()
        .answer_full_on(backend, &parsed.question, &budget)
    {
        Ok(answer) => Response::json(
            200,
            answer_json(&answer, pipeline.name(), pipeline.generation(), None).render(),
        ),
        Err(err) => query_error_response(&err),
    }
}

/// `POST /query` with a `"session"` id: checkout, resolve the question
/// against the previous turn, answer, commit the new turn back.
///
/// A session pins its document by *name and load generation* — plain
/// values, never a snapshot handle — so a hot reload or an eviction
/// retires the conversation (typed expired-context error on the next
/// follow-up) instead of the conversation pinning a retired snapshot.
fn handle_session_query(parsed: &QueryBody, id: &str, ctx: &Ctx) -> Response {
    let follow = nalix::detect_follow_up(&parsed.question);
    let session = match ctx.sessions.checkout(id) {
        nalix::SessionCheckout::Live(s) => Some(s),
        nalix::SessionCheckout::Expired => {
            if follow.is_some() {
                return query_error_response(&QueryError::expired_context(format!(
                    "session \"{id}\" sat idle past the server's session time-to-live"
                )));
            }
            None
        }
        // Absent covers both "never created" and "evicted under the
        // session cap" — the server cannot tell them apart, and either
        // way there is no context to resolve a follow-up against.
        nalix::SessionCheckout::Absent => {
            if follow.is_some() {
                return query_error_response(&QueryError::expired_context(format!(
                    "session \"{id}\" is not (or is no longer) known to the server"
                )));
            }
            None
        }
    };
    // The document for this turn: an explicit "doc" wins, then the
    // session's pinned document, then the store default.
    let explicit = parsed.doc.as_deref();
    let want = explicit.or_else(|| session.as_ref().map(|s| s.doc.as_str()));
    let pipeline = match ctx.store.get(want) {
        Ok(p) => p,
        Err(err) => {
            if explicit.is_none() {
                if let Some(s) = &session {
                    // The pinned document was deleted out from under
                    // the conversation: retire the session rather than
                    // leave it naming a dead document forever.
                    ctx.sessions.invalidate(id);
                    return query_error_response(&QueryError::expired_context(format!(
                        "the document \"{}\" this conversation was about is no longer loaded",
                        s.doc
                    )));
                }
            }
            return store_error_response(&err);
        }
    };
    let (name, generation) = (pipeline.name().to_string(), pipeline.generation());
    // Context survives only on the exact snapshot identity it was
    // built against: same document name, same load generation.
    let mut session = match session {
        Some(s) if s.doc == name && s.generation == generation => s,
        Some(s) => {
            ctx.sessions.invalidate(id);
            if follow.is_some() {
                let reason = if s.doc == name {
                    format!("the document \"{name}\" was reloaded since the previous turn")
                } else {
                    format!(
                        "the conversation moved from document \"{}\" to \"{name}\"",
                        s.doc
                    )
                };
                return query_error_response(&QueryError::expired_context(reason));
            }
            nalix::Session::new(name.clone(), generation)
        }
        None => nalix::Session::new(name.clone(), generation),
    };
    let budget = budget_for(parsed.deadline_ms, &ctx.config);
    let backend = parsed.backend.unwrap_or_else(|| pipeline.nalix().backend());
    match pipeline.nalix().answer_turn_on(
        backend,
        &parsed.question,
        session.prior.as_ref(),
        &budget,
    ) {
        Ok(turn) => {
            session.record_turn(turn.turn);
            let body = answer_json(&turn.answer, &name, generation, Some((id, session.turns)));
            ctx.sessions.commit(id, session);
            Response::json(200, body.render())
        }
        Err(err) => {
            // A failed turn keeps the prior context intact (and the
            // TTL clock fresh): the user rephrases against the same
            // conversation.
            ctx.sessions.commit(id, session);
            query_error_response(&err)
        }
    }
}

/// The success body shared by stateless and session `/query` replies;
/// session replies additionally echo the session id and turn number.
fn answer_json(
    answer: &nalix::Answer,
    doc: &str,
    generation: u64,
    session: Option<(&str, u64)>,
) -> Json {
    let mut fields = vec![
        (
            "answers".to_string(),
            Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
        ),
        ("count".to_string(), Json::Num(answer.values.len() as f64)),
        ("xquery".to_string(), Json::Str(answer.xquery.clone())),
        (
            "backend".to_string(),
            Json::Str(answer.backend.name().to_string()),
        ),
        ("cached".to_string(), Json::Bool(answer.cached)),
        (
            "warnings".to_string(),
            Json::Arr(
                answer
                    .warnings
                    .iter()
                    .map(|w| Json::Str(w.message()))
                    .collect(),
            ),
        ),
        ("doc".to_string(), Json::Str(doc.to_string())),
        ("generation".to_string(), Json::Num(generation as f64)),
    ];
    if let Some((id, turn)) = session {
        fields.push(("session".to_string(), Json::Str(id.to_string())));
        fields.push(("turn".to_string(), Json::Num(turn as f64)));
    }
    Json::Obj(fields)
}

/// `POST /batch`: `{"questions": ["...", ...], "doc": "name"?,
/// "backend": "xquery"|"sql"?}`, answered sequentially on this worker
/// against one pinned snapshot, results in input order.
fn handle_batch(req: &Request, ctx: &Ctx) -> Response {
    /// Per-request cap on batch size; larger batches should be split
    /// by the client (keeps one worker from being pinned for minutes).
    const MAX_BATCH: usize = 256;
    let parsed = match Json::parse(body_str(req)) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        }
    };
    let Some(questions) = parsed.get("questions").and_then(Json::as_array) else {
        return Response::json(
            400,
            error_body(
                "http.bad_request",
                "missing \"questions\" array",
                "send {\"questions\": [\"...\"]}",
            ),
        );
    };
    if questions.len() > MAX_BATCH {
        return Response::json(
            413,
            error_body(
                "http.payload_too_large",
                &format!(
                    "batch of {} exceeds the {MAX_BATCH} question cap",
                    questions.len()
                ),
                "split the batch",
            ),
        );
    }
    let doc = parsed.get("doc").and_then(Json::as_str);
    let backend = match parse_backend(&parsed) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    // One snapshot for the whole batch: a concurrent reload must not
    // make half the answers come from the old document and half from
    // the new one.
    let pipeline = match ctx.store.get(doc) {
        Ok(p) => p,
        Err(err) => return store_error_response(&err),
    };
    let backend = backend.unwrap_or_else(|| pipeline.nalix().backend());
    let budget = budget_for(None, &ctx.config);
    let mut results = Vec::with_capacity(questions.len());
    for q in questions {
        let Some(text) = q.as_str() else {
            results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(
                    "http.bad_request",
                    "question is not a string",
                    "send strings",
                ),
            )]));
            continue;
        };
        match pipeline.nalix().answer_full_on(backend, text, &budget) {
            Ok(answer) => results.push(Json::Obj(vec![
                (
                    "answers".to_string(),
                    Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
                ),
                ("count".to_string(), Json::Num(answer.values.len() as f64)),
            ])),
            Err(err) => results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(err.code(), &err.to_string(), err.suggestion()),
            )])),
        }
    }
    let body = Json::Obj(vec![
        ("count".to_string(), Json::Num(results.len() as f64)),
        ("results".to_string(), Json::Arr(results)),
        ("doc".to_string(), Json::Str(pipeline.name().to_string())),
        ("backend".to_string(), Json::Str(backend.name().to_string())),
    ]);
    Response::json(200, body.render())
}

/// `GET /health`: liveness plus drain state.
fn handle_health(shared: &Shared) -> Response {
    let status = if shared.shutdown.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let body = Json::Obj(vec![
        ("status".to_string(), Json::Str(status.to_string())),
        (
            "uptime_ms".to_string(),
            Json::Num(shared.started.elapsed().as_millis() as f64),
        ),
    ]);
    Response::json(200, body.render())
}

/// `GET /docs`: every registered document with residency, size, and
/// hit statistics.
fn handle_docs_list(store: &DocumentStore) -> Response {
    let docs = store
        .list()
        .into_iter()
        .map(|d| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(d.name)),
                ("source".to_string(), Json::Str(d.source)),
                ("loaded".to_string(), Json::Bool(d.loaded)),
                ("generation".to_string(), Json::Num(d.generation as f64)),
                (
                    "nodes".to_string(),
                    d.nodes.map_or(Json::Num(0.0), |n| Json::Num(n as f64)),
                ),
                ("hits".to_string(), Json::Num(d.hits as f64)),
                ("default".to_string(), Json::Bool(d.is_default)),
            ])
        })
        .collect::<Vec<_>>();
    let body = Json::Obj(vec![
        (
            "default".to_string(),
            Json::Str(store.default_doc().to_string()),
        ),
        ("count".to_string(), Json::Num(docs.len() as f64)),
        ("docs".to_string(), Json::Arr(docs)),
    ]);
    Response::json(200, body.render())
}

/// `PUT /docs/:name`: load or hot-reload a document. The body is
/// `{"source": "bib" | "movies" | "dblp" | "/path/to.xml"}`, a bare
/// `text/plain` source, or empty (the name doubles as the source —
/// `PUT /docs/movies` loads the builtin).
fn handle_docs_put(req: &Request, store: &DocumentStore) -> Response {
    let Some(name) = doc_name(req) else {
        return bad_doc_path();
    };
    let text = body_str(req).trim();
    let source = if text.is_empty() {
        name.to_string()
    } else if text.starts_with('{') {
        match Json::parse(text) {
            Ok(v) => match v.get("source").and_then(Json::as_str) {
                Some(s) => s.to_string(),
                None => {
                    return Response::json(
                        400,
                        error_body(
                            "http.bad_request",
                            "missing \"source\" field",
                            "send {\"source\": \"bib\"} or a builtin/path as plain text",
                        ),
                    )
                }
            },
            Err(e) => {
                return Response::json(
                    400,
                    error_body("http.bad_request", &e.to_string(), "send valid JSON"),
                )
            }
        }
    } else {
        text.to_string()
    };
    match store.put(name, DocSpec::parse(&source)) {
        Ok(report) => {
            let p = &report.pipeline;
            let body = Json::Obj(vec![
                ("doc".to_string(), Json::Str(p.name().to_string())),
                ("source".to_string(), Json::Str(p.source().to_string())),
                ("generation".to_string(), Json::Num(p.generation() as f64)),
                (
                    "nodes".to_string(),
                    Json::Num(p.stats().total_nodes() as f64),
                ),
                ("reloaded".to_string(), Json::Bool(report.reloaded)),
            ]);
            Response::json(200, body.render())
        }
        Err(err) => store_error_response(&err),
    }
}

/// `DELETE /docs/:name`: evict a document. Later queries naming it
/// get a typed 404.
fn handle_docs_delete(req: &Request, store: &DocumentStore) -> Response {
    let Some(name) = doc_name(req) else {
        return bad_doc_path();
    };
    match store.evict(name) {
        Ok(()) => Response::json(
            200,
            Json::Obj(vec![("evicted".to_string(), Json::Str(name.to_string()))]).render(),
        ),
        Err(err) => store_error_response(&err),
    }
}

/// `POST /docs/:name/update`: apply a batch of node-level edits to a
/// resident document. The body is `{"edits": [...],
/// "expected_generation": n?}`; each edit is an object tagged by
/// `"op"`:
///
/// * `{"op": "insert_child", "parent": pre, "node": {...}}`
/// * `{"op": "insert_sibling", "after": pre, "node": {...}}`
/// * `{"op": "delete_subtree", "target": pre}`
/// * `{"op": "replace_value", "target": pre, "value": "..."}`
/// * `{"op": "rename_label", "target": pre, "label": "..."}`
///
/// Nodes are addressed by pre-order rank in the generation being
/// edited, and new nodes are `{"kind": "element"|"leaf"|"text",
/// "label"?, "text"?}` or `{"kind": "attribute", "name", "value"}`.
/// The batch is atomic; the response echoes the new generation, and a
/// stale `expected_generation` is answered with a typed `409`.
fn handle_docs_update(req: &Request, store: &DocumentStore) -> Response {
    let Some(name) = update_doc_name(&req.path) else {
        return bad_doc_path();
    };
    let parsed = match Json::parse(body_str(req)) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        }
    };
    let Some(edits_json) = parsed.get("edits").and_then(Json::as_array) else {
        return Response::json(
            400,
            error_body(
                "http.bad_request",
                "missing \"edits\" array",
                "send {\"edits\": [{\"op\": \"...\", ...}]}",
            ),
        );
    };
    let mut edits = Vec::with_capacity(edits_json.len());
    for (i, edit) in edits_json.iter().enumerate() {
        match parse_edit_spec(edit) {
            Ok(spec) => edits.push(spec),
            Err(detail) => {
                return Response::json(
                    400,
                    error_body(
                        "http.bad_request",
                        &format!("edit #{i}: {detail}"),
                        "see POST /docs/<name>/update for the edit shapes",
                    ),
                )
            }
        }
    }
    let expected = parsed.get("expected_generation").and_then(Json::as_u64);
    match store.update(Some(name), &edits, expected) {
        Ok(report) => {
            let p = &report.pipeline;
            let strategy = match report.stats.strategy {
                xmldb::CommitStrategy::Patch => "patch",
                xmldb::CommitStrategy::Rebuild => "rebuild",
            };
            let body = Json::Obj(vec![
                ("doc".to_string(), Json::Str(p.name().to_string())),
                ("generation".to_string(), Json::Num(p.generation() as f64)),
                ("strategy".to_string(), Json::Str(strategy.to_string())),
                ("edits".to_string(), Json::Num(report.stats.edits as f64)),
                (
                    "inserted".to_string(),
                    Json::Num(report.stats.inserted as f64),
                ),
                (
                    "deleted".to_string(),
                    Json::Num(report.stats.deleted as f64),
                ),
                (
                    "nodes".to_string(),
                    Json::Num(p.stats().total_nodes() as f64),
                ),
            ]);
            Response::json(200, body.render())
        }
        Err(err) => store_error_response(&err),
    }
}

/// One `{"op": ...}` object from an update batch, as a store edit.
fn parse_edit_spec(edit: &Json) -> Result<EditSpec, String> {
    let op = edit
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\"")?;
    let pre = |field: &str| -> Result<u32, String> {
        let n = edit
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{field}\""))?;
        u32::try_from(n).map_err(|_| format!("\"{field}\" out of range"))
    };
    let string = |field: &str| -> Result<String, String> {
        edit.get(field)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing \"{field}\" string"))
    };
    match op {
        "insert_child" => Ok(EditSpec::InsertChild {
            parent: pre("parent")?,
            node: parse_new_node(edit.get("node").ok_or("missing \"node\"")?)?,
        }),
        "insert_sibling" => Ok(EditSpec::InsertSibling {
            after: pre("after")?,
            node: parse_new_node(edit.get("node").ok_or("missing \"node\"")?)?,
        }),
        "delete_subtree" => Ok(EditSpec::DeleteSubtree {
            target: pre("target")?,
        }),
        "replace_value" => Ok(EditSpec::ReplaceValue {
            target: pre("target")?,
            value: string("value")?,
        }),
        "rename_label" => Ok(EditSpec::RenameLabel {
            target: pre("target")?,
            label: string("label")?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// A `{"kind": ...}` node payload for the insert ops.
fn parse_new_node(node: &Json) -> Result<xmldb::NewNode, String> {
    let kind = node
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("node missing \"kind\"")?;
    let string = |field: &str| -> Result<String, String> {
        node.get(field)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("node missing \"{field}\" string"))
    };
    match kind {
        "element" => Ok(xmldb::NewNode::Element {
            label: string("label")?,
        }),
        "leaf" => Ok(xmldb::NewNode::Leaf {
            label: string("label")?,
            text: string("text")?,
        }),
        "text" => Ok(xmldb::NewNode::Text {
            text: string("text")?,
        }),
        "attribute" => Ok(xmldb::NewNode::Attribute {
            name: string("name")?,
            value: string("value")?,
        }),
        other => Err(format!("unknown node kind {other:?}")),
    }
}

/// The `:name` segment of a `/docs/:name/update` path, rejecting
/// nested segments.
fn update_doc_name(path: &str) -> Option<&str> {
    let name = path.strip_prefix("/docs/")?.strip_suffix("/update")?;
    if name.is_empty() || name.contains('/') {
        None
    } else {
        Some(name)
    }
}

/// The `:name` segment of a `/docs/:name` path, rejecting nested
/// segments.
fn doc_name(req: &Request) -> Option<&str> {
    let rest = req.path.strip_prefix("/docs/")?;
    if rest.is_empty() || rest.contains('/') {
        None
    } else {
        Some(rest)
    }
}

fn bad_doc_path() -> Response {
    Response::json(
        404,
        error_body(
            "http.not_found",
            "expected /docs/<name>",
            "name exactly one document in the path",
        ),
    )
}

/// What `POST /query` carries, after body parsing.
struct QueryBody {
    question: String,
    deadline_ms: Option<u64>,
    doc: Option<String>,
    session: Option<String>,
    backend: Option<nalix::BackendKind>,
}

/// Parse an optional `"backend"` field; anything but a known backend
/// name is the typed `backend.unknown` error.
fn parse_backend(parsed: &Json) -> Result<Option<nalix::BackendKind>, Response> {
    match parsed.get("backend") {
        None => Ok(None),
        Some(v) => match v.as_str().and_then(nalix::BackendKind::parse) {
            Some(k) => Ok(Some(k)),
            None => Err(Response::json(
                400,
                error_body(
                    "backend.unknown",
                    &format!("unknown backend {}", v.render()),
                    "send \"backend\": \"xquery\" or \"sql\", or omit it for the server default",
                ),
            )),
        },
    }
}

/// Cap on client-chosen session ids: they are stored verbatim as map
/// keys, so an unbounded id would be an unbounded allocation the LRU
/// cap cannot see.
const MAX_SESSION_ID: usize = 128;

/// Extracts the question, optional deadline, and optional document
/// name from a `/query` body, accepting JSON or plain text.
fn parse_query_body(req: &Request) -> Result<QueryBody, Response> {
    let text = body_str(req);
    let looks_json = req
        .content_type
        .as_deref()
        .map(|t| t.contains("json"))
        .unwrap_or_else(|| text.trim_start().starts_with('{'));
    let parsed = if looks_json {
        let parsed = Json::parse(text).map_err(|e| {
            Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        })?;
        let question = parsed
            .get("question")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                Response::json(
                    400,
                    error_body(
                        "http.bad_request",
                        "missing \"question\" field",
                        "send {\"question\": \"...\"}",
                    ),
                )
            })?;
        let session = match parsed.get("session").and_then(Json::as_str) {
            Some(id) if id.is_empty() || id.len() > MAX_SESSION_ID => {
                return Err(Response::json(
                    400,
                    error_body(
                        "http.bad_request",
                        &format!("\"session\" must be 1..={MAX_SESSION_ID} bytes"),
                        "send a short opaque session id",
                    ),
                ));
            }
            other => other.map(str::to_string),
        };
        QueryBody {
            question,
            deadline_ms: parsed.get("deadline_ms").and_then(Json::as_u64),
            doc: parsed.get("doc").and_then(Json::as_str).map(str::to_string),
            session,
            backend: parse_backend(&parsed)?,
        }
    } else {
        QueryBody {
            question: text.trim().to_string(),
            deadline_ms: None,
            doc: None,
            session: None,
            backend: None,
        }
    };
    if parsed.question.trim().is_empty() {
        return Err(Response::json(
            400,
            error_body("http.bad_request", "empty question", "ask a question"),
        ));
    }
    Ok(parsed)
}

/// The request body as (lossy) UTF-8.
fn body_str(req: &Request) -> &str {
    std::str::from_utf8(&req.body).unwrap_or("")
}

/// The evaluation budget for one request: the client's deadline,
/// clamped to the configured maximum; the default when none given.
fn budget_for(deadline_ms: Option<u64>, config: &ServerConfig) -> EvalBudget {
    let requested = deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline);
    EvalBudget::default().with_time_limit(requested.min(config.max_deadline))
}

/// Maps a store error to its HTTP response: an unknown document is the
/// client naming something that is not there (404), a lost
/// optimistic-concurrency race is a conflict (409), and everything
/// else is a bad request (400).
fn store_error_response(err: &StoreError) -> Response {
    let status = match err {
        StoreError::UnknownDocument { .. } => 404,
        StoreError::Conflict { .. } => 409,
        StoreError::InvalidName { .. }
        | StoreError::Load { .. }
        | StoreError::DefaultProtected { .. }
        | StoreError::UpdateRejected { .. } => 400,
    };
    Response::json(
        status,
        error_body(err.code(), &err.to_string(), err.suggestion()),
    )
}

/// Maps a pipeline error to its HTTP response: stable code, rendered
/// message, rephrasing suggestion, and a status that distinguishes
/// "your question" (422) from "our evaluator" (500) from "out of time"
/// (504) from "your conversation context is gone" (410).
fn query_error_response(err: &QueryError) -> Response {
    let status = match err {
        QueryError::Parse { .. }
        | QueryError::Classify { .. }
        | QueryError::Validate { .. }
        | QueryError::Translate { .. }
        | QueryError::MissingContext { .. }
        | QueryError::UpdateIntent { .. } => 422,
        QueryError::ExpiredContext { .. } => 410,
        QueryError::Eval { .. } => 500,
        QueryError::ResourceExhausted { resource, .. } => match resource {
            ExhaustedResource::Time => 504,
            ExhaustedResource::Depth | ExhaustedResource::Tuples => 422,
        },
    };
    Response::json(
        status,
        error_body(err.code(), &err.to_string(), err.suggestion()),
    )
}

/// A rendered `{"error": {...}}` JSON body.
fn error_body(code: &str, message: &str, suggestion: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        error_obj(code, message, suggestion),
    )])
    .render()
}

/// The inner error object shared by `/query` and `/batch` bodies.
fn error_obj(code: &str, message: &str, suggestion: &str) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Str(code.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
        ("suggestion".to_string(), Json::Str(suggestion.to_string())),
    ])
}
