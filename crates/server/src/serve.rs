//! The `nalixd` server proper: worker pool, admission control, routing.
//!
//! Architecture (one paragraph): an acceptor loop polls a nonblocking
//! [`TcpListener`] and `try_push`es each accepted connection into a
//! [`BoundedQueue`]; a fixed pool of worker threads pops connections
//! and runs the full read→route→answer→write cycle, one request per
//! connection. Overload is explicit: a full queue makes the *acceptor*
//! write `503 Service Unavailable` with `Retry-After` and move on, so
//! a saturated server keeps answering (with backpressure) instead of
//! accumulating unbounded work. Shutdown is a drain: the acceptor stops
//! admitting, the queue closes, workers finish every admitted request,
//! and [`Server::serve`] returns a final [`ServeReport`].
//!
//! The workers are plainly spawned threads sharing the
//! [`DocumentStore`] through an `Arc` — the pipelines are `'static`,
//! so no scoped borrowing is needed and the store can hot-swap
//! documents underneath running requests (each request pins its own
//! snapshot for its lifetime).

use crate::http::{self, ReadError, Request, Response};
use crate::json::Json;
use crate::queue::{BoundedQueue, PushError};
use nalix::QueryError;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::{DocSpec, DocumentStore, StoreError};
use xquery::{EvalBudget, ExhaustedResource};

/// Everything tunable about a [`Server`], with production defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads. Each worker serves one request at a time.
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are shed with
    /// 503.
    pub queue_capacity: usize,
    /// Socket read timeout (slow-client defense).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-client defense).
    pub write_timeout: Duration,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// Evaluation deadline applied when the request names none.
    pub default_deadline: Duration,
    /// Hard cap on client-requested deadlines.
    pub max_deadline: Duration,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Test-only latency injected into every handled request, used to
    /// make overload and drain tests deterministic. `None` in
    /// production.
    pub debug_handler_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 8,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body: 1024 * 1024,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            retry_after_secs: 1,
            debug_handler_delay: None,
        }
    }
}

/// State shared between [`Server::serve`] and its [`ServerHandle`]s.
struct Shared {
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    started: Instant,
}

/// A clonable remote control for a running server: signal shutdown,
/// read the bound address. Obtained from [`Server::handle`] *before*
/// calling the blocking [`Server::serve`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish in-flight
    /// requests, return from [`Server::serve`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once [`shutdown`](ServerHandle::shutdown) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The address the listener is actually bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }
}

/// What a completed [`Server::serve`] run did.
#[derive(Debug)]
pub struct ServeReport {
    /// Requests handed to a worker (whether they then succeeded or
    /// failed at the HTTP or query layer).
    pub served: u64,
    /// Connections shed with 503 because the queue was full.
    pub shed: u64,
    /// Final merged metrics snapshot (store + every document, live and
    /// retired), taken after the last worker exited.
    pub snapshot: obs::MetricsSnapshot,
}

/// Everything a worker thread needs, behind one `Arc`.
struct Ctx {
    store: Arc<DocumentStore>,
    config: ServerConfig,
    shared: Arc<Shared>,
}

/// A bound-but-not-yet-serving nalixd server over a [`DocumentStore`].
pub struct Server {
    store: Arc<DocumentStore>,
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener. Accepts an owned [`DocumentStore`] or an
    /// existing `Arc` (share it to drive the store from outside the
    /// server, e.g. preloading). Fails only on bind errors (port in
    /// use, bad address).
    pub fn bind(store: impl Into<Arc<DocumentStore>>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            store: store.into(),
            listener,
            config,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                local_addr,
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The document store this server fronts.
    pub fn store(&self) -> &Arc<DocumentStore> {
        &self.store
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the server until [`ServerHandle::shutdown`] is called,
    /// then drains and returns. Blocks the calling thread; the worker
    /// pool is plain spawned threads sharing the store via `Arc`.
    pub fn serve(self) -> io::Result<ServeReport> {
        self.listener.set_nonblocking(true)?;
        let metrics = self.store.metrics_handle();
        let ctx = Arc::new(Ctx {
            store: Arc::clone(&self.store),
            config: self.config.clone(),
            shared: Arc::clone(&self.shared),
        });
        let queue = Arc::new(BoundedQueue::<TcpStream>::new(self.config.queue_capacity));
        let served = Arc::new(AtomicU64::new(0));
        let mut shed = 0u64;

        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let served = Arc::clone(&served);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop() {
                        served.fetch_add(1, Ordering::Relaxed);
                        let result =
                            catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &ctx)));
                        if result.is_err() {
                            // The stream moved into the closure, so the
                            // client sees a reset rather than a 500;
                            // what matters is that the worker survives.
                            ctx.store
                                .metrics_handle()
                                .add(obs::Counter::HttpBadRequests, 1);
                        }
                    }
                    obs::flush_hot();
                })
            })
            .collect();

        // Acceptor: this thread. Nonblocking accept + short sleep
        // keeps shutdown latency ~10ms without extra machinery.
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    match queue.try_push(stream) {
                        Ok(depth) => {
                            metrics.record_max(obs::MaxGauge::QueueDepthHighWater, depth as u64);
                        }
                        Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                            shed += 1;
                            metrics.add(obs::Counter::HttpShed, 1);
                            shed_connection(stream, self.config.retry_after_secs);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        queue.close();
        // Joining the workers completes the drain: every admitted
        // connection is served before we return.
        for w in workers {
            let _ = w.join();
        }

        Ok(ServeReport {
            served: served.load(Ordering::SeqCst),
            shed,
            snapshot: self.store.snapshot(),
        })
    }
}

/// Writes the overload response. Failures are ignored: the client is
/// being shed, and the acceptor must not block on it.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let body = error_body("http.overloaded", "server is at capacity", "retry shortly");
    let _ = Response::json(503, body)
        .with_header("Retry-After", retry_after_secs.to_string())
        .write_to(&mut stream);
    // Drain whatever request bytes already arrived (without blocking:
    // the acceptor must stay fast). Closing a socket with unread data
    // in its receive buffer sends RST, which can destroy the 503 we
    // just wrote before the client reads it.
    if stream.set_nonblocking(true).is_ok() {
        let mut sink = [0u8; 4096];
        use std::io::Read as _;
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// The full lifecycle of one admitted connection: read, route, write.
fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let metrics = ctx.store.metrics_handle();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let response = match http::read_request(&mut reader, ctx.config.max_body) {
        Ok(req) => {
            metrics.add(obs::Counter::HttpRequests, 1);
            if let Some(delay) = ctx.config.debug_handler_delay {
                std::thread::sleep(delay);
            }
            route(&req, ctx)
        }
        Err(ReadError::Eof) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::BadRequest(msg)) => {
            Response::json(400, error_body("http.bad_request", &msg, "fix the request"))
        }
        Err(ReadError::TooLarge(msg)) => Response::json(
            413,
            error_body("http.payload_too_large", &msg, "send a smaller request"),
        ),
    };
    if matches!(response.status(), 400 | 404 | 405 | 413) {
        // Transport-level client errors. 422/504 are *successful*
        // NL-pipeline rejections, already visible as query spans.
        metrics.add(obs::Counter::HttpBadRequests, 1);
    }
    let _ = response.write_to(&mut write_half);
    let _ = write_half.flush();
}

/// Maps method+path to a handler, with proper 405/404 responses.
fn route(req: &Request, ctx: &Ctx) -> Response {
    let metrics = ctx.store.metrics_handle();
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => with_span(&metrics, obs::Stage::HttpQuery, || handle_query(req, ctx)),
        ("POST", "/batch") => with_span(&metrics, obs::Stage::HttpBatch, || handle_batch(req, ctx)),
        ("GET", "/health") => with_span(&metrics, obs::Stage::HttpHealth, || {
            handle_health(&ctx.shared)
        }),
        ("GET", "/metrics") => with_span(&metrics, obs::Stage::HttpMetrics, || {
            Response::text(200, ctx.store.snapshot().to_prometheus())
        }),
        ("GET", "/docs") => with_span(&metrics, obs::Stage::HttpDocs, || {
            handle_docs_list(&ctx.store)
        }),
        ("PUT", path) if path.strip_prefix("/docs/").is_some() => {
            with_span(&metrics, obs::Stage::HttpDocs, || {
                handle_docs_put(req, &ctx.store)
            })
        }
        ("DELETE", path) if path.strip_prefix("/docs/").is_some() => {
            with_span(&metrics, obs::Stage::HttpDocs, || {
                handle_docs_delete(req, &ctx.store)
            })
        }
        (_, "/query") | (_, "/batch") => Response::json(
            405,
            error_body("http.method_not_allowed", "use POST", "send a POST request"),
        )
        .with_header("Allow", "POST".to_string()),
        (_, "/health") | (_, "/metrics") => Response::json(
            405,
            error_body("http.method_not_allowed", "use GET", "send a GET request"),
        )
        .with_header("Allow", "GET".to_string()),
        (_, "/docs") => Response::json(
            405,
            error_body("http.method_not_allowed", "use GET", "send a GET request"),
        )
        .with_header("Allow", "GET".to_string()),
        (_, path) if path.starts_with("/docs/") => Response::json(
            405,
            error_body(
                "http.method_not_allowed",
                "use PUT to load/reload or DELETE to evict",
                "send a PUT or DELETE request",
            ),
        )
        .with_header("Allow", "PUT, DELETE".to_string()),
        _ => Response::json(
            404,
            error_body(
                "http.not_found",
                "unknown path",
                "use /query, /batch, /docs, /health, or /metrics",
            ),
        ),
    }
}

/// Runs `f` under a stage span whose outcome reflects the HTTP status:
/// 2xx → Ok, anything else → EvalError-class failure for the span.
fn with_span(
    metrics: &obs::MetricsRegistry,
    stage: obs::Stage,
    f: impl FnOnce() -> Response,
) -> Response {
    let mut span = metrics.span(stage);
    let response = f();
    span.set_outcome(if response.status() < 400 {
        obs::SpanOutcome::Ok
    } else {
        obs::SpanOutcome::EvalError
    });
    drop(span);
    response
}

/// `POST /query`: a JSON object `{"question": "...", "doc": "name"?,
/// "deadline_ms": n?}` or a bare `text/plain` question (served by the
/// default document).
fn handle_query(req: &Request, ctx: &Ctx) -> Response {
    let parsed = match parse_query_body(req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let pipeline = match ctx.store.get(parsed.doc.as_deref()) {
        Ok(p) => p,
        Err(err) => return store_error_response(&err),
    };
    let budget = budget_for(parsed.deadline_ms, &ctx.config);
    match pipeline.nalix().answer_full(&parsed.question, &budget) {
        Ok(answer) => {
            let body = Json::Obj(vec![
                (
                    "answers".to_string(),
                    Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
                ),
                ("count".to_string(), Json::Num(answer.values.len() as f64)),
                ("xquery".to_string(), Json::Str(answer.xquery.clone())),
                ("cached".to_string(), Json::Bool(answer.cached)),
                (
                    "warnings".to_string(),
                    Json::Arr(
                        answer
                            .warnings
                            .iter()
                            .map(|w| Json::Str(w.message()))
                            .collect(),
                    ),
                ),
                ("doc".to_string(), Json::Str(pipeline.name().to_string())),
                (
                    "generation".to_string(),
                    Json::Num(pipeline.generation() as f64),
                ),
            ]);
            Response::json(200, body.render())
        }
        Err(err) => query_error_response(&err),
    }
}

/// `POST /batch`: `{"questions": ["...", ...], "doc": "name"?}`,
/// answered sequentially on this worker against one pinned snapshot,
/// results in input order.
fn handle_batch(req: &Request, ctx: &Ctx) -> Response {
    /// Per-request cap on batch size; larger batches should be split
    /// by the client (keeps one worker from being pinned for minutes).
    const MAX_BATCH: usize = 256;
    let parsed = match Json::parse(body_str(req)) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        }
    };
    let Some(questions) = parsed.get("questions").and_then(Json::as_array) else {
        return Response::json(
            400,
            error_body(
                "http.bad_request",
                "missing \"questions\" array",
                "send {\"questions\": [\"...\"]}",
            ),
        );
    };
    if questions.len() > MAX_BATCH {
        return Response::json(
            413,
            error_body(
                "http.payload_too_large",
                &format!(
                    "batch of {} exceeds the {MAX_BATCH} question cap",
                    questions.len()
                ),
                "split the batch",
            ),
        );
    }
    let doc = parsed.get("doc").and_then(Json::as_str);
    // One snapshot for the whole batch: a concurrent reload must not
    // make half the answers come from the old document and half from
    // the new one.
    let pipeline = match ctx.store.get(doc) {
        Ok(p) => p,
        Err(err) => return store_error_response(&err),
    };
    let budget = budget_for(None, &ctx.config);
    let mut results = Vec::with_capacity(questions.len());
    for q in questions {
        let Some(text) = q.as_str() else {
            results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(
                    "http.bad_request",
                    "question is not a string",
                    "send strings",
                ),
            )]));
            continue;
        };
        match pipeline.nalix().answer_full(text, &budget) {
            Ok(answer) => results.push(Json::Obj(vec![
                (
                    "answers".to_string(),
                    Json::Arr(answer.values.iter().cloned().map(Json::Str).collect()),
                ),
                ("count".to_string(), Json::Num(answer.values.len() as f64)),
            ])),
            Err(err) => results.push(Json::Obj(vec![(
                "error".to_string(),
                error_obj(err.code(), &err.to_string(), err.suggestion()),
            )])),
        }
    }
    let body = Json::Obj(vec![
        ("count".to_string(), Json::Num(results.len() as f64)),
        ("results".to_string(), Json::Arr(results)),
        ("doc".to_string(), Json::Str(pipeline.name().to_string())),
    ]);
    Response::json(200, body.render())
}

/// `GET /health`: liveness plus drain state.
fn handle_health(shared: &Shared) -> Response {
    let status = if shared.shutdown.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let body = Json::Obj(vec![
        ("status".to_string(), Json::Str(status.to_string())),
        (
            "uptime_ms".to_string(),
            Json::Num(shared.started.elapsed().as_millis() as f64),
        ),
    ]);
    Response::json(200, body.render())
}

/// `GET /docs`: every registered document with residency, size, and
/// hit statistics.
fn handle_docs_list(store: &DocumentStore) -> Response {
    let docs = store
        .list()
        .into_iter()
        .map(|d| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(d.name)),
                ("source".to_string(), Json::Str(d.source)),
                ("loaded".to_string(), Json::Bool(d.loaded)),
                ("generation".to_string(), Json::Num(d.generation as f64)),
                (
                    "nodes".to_string(),
                    d.nodes.map_or(Json::Num(0.0), |n| Json::Num(n as f64)),
                ),
                ("hits".to_string(), Json::Num(d.hits as f64)),
                ("default".to_string(), Json::Bool(d.is_default)),
            ])
        })
        .collect::<Vec<_>>();
    let body = Json::Obj(vec![
        (
            "default".to_string(),
            Json::Str(store.default_doc().to_string()),
        ),
        ("count".to_string(), Json::Num(docs.len() as f64)),
        ("docs".to_string(), Json::Arr(docs)),
    ]);
    Response::json(200, body.render())
}

/// `PUT /docs/:name`: load or hot-reload a document. The body is
/// `{"source": "bib" | "movies" | "dblp" | "/path/to.xml"}`, a bare
/// `text/plain` source, or empty (the name doubles as the source —
/// `PUT /docs/movies` loads the builtin).
fn handle_docs_put(req: &Request, store: &DocumentStore) -> Response {
    let Some(name) = doc_name(req) else {
        return bad_doc_path();
    };
    let text = body_str(req).trim();
    let source = if text.is_empty() {
        name.to_string()
    } else if text.starts_with('{') {
        match Json::parse(text) {
            Ok(v) => match v.get("source").and_then(Json::as_str) {
                Some(s) => s.to_string(),
                None => {
                    return Response::json(
                        400,
                        error_body(
                            "http.bad_request",
                            "missing \"source\" field",
                            "send {\"source\": \"bib\"} or a builtin/path as plain text",
                        ),
                    )
                }
            },
            Err(e) => {
                return Response::json(
                    400,
                    error_body("http.bad_request", &e.to_string(), "send valid JSON"),
                )
            }
        }
    } else {
        text.to_string()
    };
    match store.put(name, DocSpec::parse(&source)) {
        Ok(report) => {
            let p = &report.pipeline;
            let body = Json::Obj(vec![
                ("doc".to_string(), Json::Str(p.name().to_string())),
                ("source".to_string(), Json::Str(p.source().to_string())),
                ("generation".to_string(), Json::Num(p.generation() as f64)),
                (
                    "nodes".to_string(),
                    Json::Num(p.stats().total_nodes() as f64),
                ),
                ("reloaded".to_string(), Json::Bool(report.reloaded)),
            ]);
            Response::json(200, body.render())
        }
        Err(err) => store_error_response(&err),
    }
}

/// `DELETE /docs/:name`: evict a document. Later queries naming it
/// get a typed 404.
fn handle_docs_delete(req: &Request, store: &DocumentStore) -> Response {
    let Some(name) = doc_name(req) else {
        return bad_doc_path();
    };
    match store.evict(name) {
        Ok(()) => Response::json(
            200,
            Json::Obj(vec![("evicted".to_string(), Json::Str(name.to_string()))]).render(),
        ),
        Err(err) => store_error_response(&err),
    }
}

/// The `:name` segment of a `/docs/:name` path, rejecting nested
/// segments.
fn doc_name(req: &Request) -> Option<&str> {
    let rest = req.path.strip_prefix("/docs/")?;
    if rest.is_empty() || rest.contains('/') {
        None
    } else {
        Some(rest)
    }
}

fn bad_doc_path() -> Response {
    Response::json(
        404,
        error_body(
            "http.not_found",
            "expected /docs/<name>",
            "name exactly one document in the path",
        ),
    )
}

/// What `POST /query` carries, after body parsing.
struct QueryBody {
    question: String,
    deadline_ms: Option<u64>,
    doc: Option<String>,
}

/// Extracts the question, optional deadline, and optional document
/// name from a `/query` body, accepting JSON or plain text.
fn parse_query_body(req: &Request) -> Result<QueryBody, Response> {
    let text = body_str(req);
    let looks_json = req
        .content_type
        .as_deref()
        .map(|t| t.contains("json"))
        .unwrap_or_else(|| text.trim_start().starts_with('{'));
    let parsed = if looks_json {
        let parsed = Json::parse(text).map_err(|e| {
            Response::json(
                400,
                error_body("http.bad_request", &e.to_string(), "send valid JSON"),
            )
        })?;
        let question = parsed
            .get("question")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                Response::json(
                    400,
                    error_body(
                        "http.bad_request",
                        "missing \"question\" field",
                        "send {\"question\": \"...\"}",
                    ),
                )
            })?;
        QueryBody {
            question,
            deadline_ms: parsed.get("deadline_ms").and_then(Json::as_u64),
            doc: parsed.get("doc").and_then(Json::as_str).map(str::to_string),
        }
    } else {
        QueryBody {
            question: text.trim().to_string(),
            deadline_ms: None,
            doc: None,
        }
    };
    if parsed.question.trim().is_empty() {
        return Err(Response::json(
            400,
            error_body("http.bad_request", "empty question", "ask a question"),
        ));
    }
    Ok(parsed)
}

/// The request body as (lossy) UTF-8.
fn body_str(req: &Request) -> &str {
    std::str::from_utf8(&req.body).unwrap_or("")
}

/// The evaluation budget for one request: the client's deadline,
/// clamped to the configured maximum; the default when none given.
fn budget_for(deadline_ms: Option<u64>, config: &ServerConfig) -> EvalBudget {
    let requested = deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline);
    EvalBudget::default().with_time_limit(requested.min(config.max_deadline))
}

/// Maps a store error to its HTTP response: an unknown document is the
/// client naming something that is not there (404); everything else is
/// a bad request (400).
fn store_error_response(err: &StoreError) -> Response {
    let status = match err {
        StoreError::UnknownDocument { .. } => 404,
        StoreError::InvalidName { .. }
        | StoreError::Load { .. }
        | StoreError::DefaultProtected { .. } => 400,
    };
    Response::json(
        status,
        error_body(err.code(), &err.to_string(), err.suggestion()),
    )
}

/// Maps a pipeline error to its HTTP response: stable code, rendered
/// message, rephrasing suggestion, and a status that distinguishes
/// "your question" (422) from "our evaluator" (500) from "out of time"
/// (504).
fn query_error_response(err: &QueryError) -> Response {
    let status = match err {
        QueryError::Parse { .. }
        | QueryError::Classify { .. }
        | QueryError::Validate { .. }
        | QueryError::Translate { .. } => 422,
        QueryError::Eval { .. } => 500,
        QueryError::ResourceExhausted { resource, .. } => match resource {
            ExhaustedResource::Time => 504,
            ExhaustedResource::Depth | ExhaustedResource::Tuples => 422,
        },
    };
    Response::json(
        status,
        error_body(err.code(), &err.to_string(), err.suggestion()),
    )
}

/// A rendered `{"error": {...}}` JSON body.
fn error_body(code: &str, message: &str, suggestion: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        error_obj(code, message, suggestion),
    )])
    .render()
}

/// The inner error object shared by `/query` and `/batch` bodies.
fn error_obj(code: &str, message: &str, suggestion: &str) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Str(code.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
        ("suggestion".to_string(), Json::Str(suggestion.to_string())),
    ])
}
