//! A minimal, dependency-free JSON value: parse, inspect, render.
//!
//! The serving layer needs exactly enough JSON to decode
//! `{"question": "...", "deadline_ms": 500}`-shaped request bodies and
//! encode response objects, without pulling a serialisation framework
//! into a workspace that vendors its dependencies. The parser is a
//! bounded recursive-descent over the full JSON grammar (objects,
//! arrays, strings with `\uXXXX` escapes and surrogate pairs, numbers,
//! literals) with an explicit nesting limit, and — like everything on
//! the serving path — it never panics: malformed input comes back as a
//! [`JsonError`] with a byte offset.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deeper input is hostile
/// (stack-exhaustion shaped), not a realistic query body.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the grammar implies).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse `text` as a single JSON value (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .rev() // duplicate keys: last wins, as in parse
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, for whole-numbered
    /// [`Json::Num`]s within `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element slice, for [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text. Non-finite numbers render as
    /// `null` (JSON has no NaN/Inf), whole numbers without a decimal
    /// point.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    /// One `\uXXXX` code unit (the caller has already consumed `\u`).
    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos.saturating_add(4);
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let text = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chunk_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.push_chunk(&mut out, chunk_start)?;
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.push_chunk(&mut out, chunk_start)?;
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must be followed by
                                // `\uXXXX` with a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(c).unwrap_or('\u{FFFD}')
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(hi)).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            chunk_start = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                    chunk_start = self.pos;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Copy the raw (escape-free) bytes `[chunk_start, pos)` into
    /// `out`, validating UTF-8.
    fn push_chunk(&mut self, out: &mut String, chunk_start: usize) -> Result<(), JsonError> {
        if chunk_start == self.pos {
            return Ok(());
        }
        let Some(chunk) = self.bytes.get(chunk_start..self.pos) else {
            return Err(self.err("string bounds error"));
        };
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8 in string"))?;
        out.push_str(text);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = Json::parse(r#"{"question": "Find \"XML\" books.", "deadline_ms": 250}"#).unwrap();
        assert_eq!(
            v.get("question").and_then(Json::as_str),
            Some("Find \"XML\" books.")
        );
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_arrays_literals_numbers() {
        let v = Json::parse(r#"[null, true, false, -1.5e2, "x"]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0], Json::Null);
        assert_eq!(items[1], Json::Bool(true));
        assert_eq!(items[3], Json::Num(-150.0));
        assert_eq!(items[4].as_str(), Some("x"));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""é😀""#).unwrap(),
            Json::Str("é😀".to_owned())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\udc00""#).is_err()); // lone low surrogate
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn render_roundtrips() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n".into(), Json::Num(42.0)),
            ("f".into(), Json::Num(1.5)),
            ("nan".into(), Json::Num(f64::NAN)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"nan":null,"a":[null,true]}"#
        );
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(
            back.get("s").and_then(Json::as_str),
            Some("a\"b\\c\nd\u{1}")
        );
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
