#![warn(missing_docs)]
// The server sits in front of the NL→answer pipeline; a panic in the
// serving layer would turn the paper's Sec. 4 "always answer with
// feedback" contract into a dropped connection, so the escape hatches
// are denied just as in the query-path crates. (Worker panics are
// additionally contained with `catch_unwind`, but that is a backstop,
// not a license.)
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # server — `nalixd`, a std-only HTTP front end for NaLIX
//!
//! The paper (Sec. 1) frames NaLIX as an *interactive* system: a user
//! types a natural language question, the system answers or explains
//! why it cannot. This crate is that loop as a network service — a
//! deliberately small HTTP/1.1 server built on [`std::net`] plus a
//! raw-FFI `epoll` event loop (no async runtime, no external
//! dependencies) with the four properties a query front end actually
//! needs under load:
//!
//! 1. **Event-driven I/O** — one loop thread owns every client socket
//!    nonblocking and feeds complete requests to the workers, so an
//!    idle keep-alive connection costs a slab slot, not a thread.
//!    10k+ concurrent connections are a configuration question
//!    ([`ServerConfig::max_connections`]), not an architecture one.
//! 2. **Admission control** — a fixed worker pool fed by a bounded
//!    queue ([`queue::BoundedQueue`]) of parsed requests. Concurrency
//!    is capped by construction, not by hope.
//! 3. **Load shedding** — a full queue makes the event loop answer
//!    `503` + `Retry-After` immediately ([`ServerConfig::queue_capacity`]).
//!    An overloaded nalixd stays responsive; it just says no.
//! 4. **Graceful drain** — [`ServerHandle::shutdown`] (wired to
//!    SIGTERM in the `nalixd` binary) stops admission, finishes every
//!    in-flight request, and returns a final [`ServeReport`] with the
//!    metrics snapshot.
//!
//! Connections are keep-alive by default (HTTP/1.1 semantics,
//! `Connection: close` honored) and may pipeline; the loop answers
//! strictly in order, times out idle connections
//! ([`ServerConfig::idle_timeout`]), and answers `408` when a request
//! stalls half-received.
//!
//! The server fronts a [`store::DocumentStore`]: one process serves
//! many named corpora, each behind its own fully wired pipeline, with
//! lazy loading, hot reload, and eviction administered over HTTP.
//! Requests pin the snapshot they observed for their whole lifetime,
//! so a reload mid-request is invisible to that request.
//!
//! Endpoints: `POST /query` (one NL question — optionally
//! `{"doc": "name"}` to pick a corpus — → answers + XQuery or a typed
//! error with a stable `code`), `POST /batch`, `GET /docs` (listing),
//! `PUT /docs/:name` (load/hot-reload), `DELETE /docs/:name` (evict),
//! `GET /health`, `GET /metrics` (Prometheus text, merged across the
//! store and every document). See `docs/SERVING.md` for the wire
//! contract and tuning guide, and `docs/STORE.md` for the multi-corpus
//! semantics.
//!
//! ## Example
//!
//! ```
//! use server::{Server, ServerConfig};
//! use store::{DocumentStore, StoreConfig};
//! use std::io::{Read, Write};
//!
//! let store = DocumentStore::with_builtins(StoreConfig::default());
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".to_string(), // port 0: pick a free port
//!     workers: 2,
//!     ..ServerConfig::default()
//! };
//! let server = Server::bind(store, config).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//!
//! let client = std::thread::spawn(move || {
//!     let mut s = std::net::TcpStream::connect(addr).unwrap();
//!     let body = r#"{"question": "Return every title.", "doc": "bib"}"#;
//!     // `Connection: close` so `read_to_string` sees EOF; keep-alive
//!     // clients read `Content-Length`-framed responses instead (see
//!     // `http::read_response`).
//!     write!(
//!         s,
//!         "POST /query HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
//!         body.len(),
//!         body
//!     )
//!     .unwrap();
//!     let mut reply = String::new();
//!     s.read_to_string(&mut reply).unwrap();
//!     handle.shutdown();
//!     reply
//! });
//!
//! let report = server.serve().unwrap(); // blocks until shutdown
//! let reply = client.join().unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert_eq!(report.served, 1);
//! ```

mod epoll;
pub mod http;
pub mod json;
pub mod queue;
mod serve;

pub use epoll::raise_nofile_limit;
pub use serve::{ServeReport, Server, ServerConfig, ServerHandle};
