//! Minimal raw-FFI `epoll` binding for the event loop — std-only, no
//! external crates, mirroring the `signal(2)` FFI pattern in the
//! `nalixd` binary: libc is already linked by std, so declaring the
//! four syscall wrappers we need is all it takes.
//!
//! Level-triggered only (the loop re-arms interest explicitly via
//! [`Epoll::modify`]), which keeps the readiness contract simple:
//! an event means "this operation will not block right now", and a
//! missed drain just means another wakeup.
//!
//! Linux-only, like the rest of the serving subsystem's FFI; a kqueue
//! sibling is the natural BSD/macOS port (see `docs/SERVING.md`).

use std::io;
use std::os::fd::RawFd;

/// Readable (or peer closed: EOF is a read event).
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition; always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hangup; always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32-bit and 64-bit layouts match); natural
/// alignment elsewhere.
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct Event {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// The caller's token, passed back verbatim.
    pub data: u64,
}

impl Event {
    /// A zeroed event, for buffer initialization.
    pub fn zeroed() -> Self {
        Event { events: 0, data: 0 }
    }
}

unsafe extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Reads `errno` via the `io::Error` conversion std already provides.
fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// An owned epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_error());
        }
        Ok(())
    }

    /// Registers `fd` for level-triggered `events`, tagged with
    /// `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of a registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`. Errors are ignored by callers on the close
    /// path (the kernel drops registrations with the fd anyway).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for events, filling `events` from the
    /// front. Returns the number filled; 0 on timeout. `EINTR` (a
    /// signal landed on this thread) is reported as 0, not an error —
    /// the loop's shutdown flag check handles the cause.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(i32::MAX as usize) as i32;
        // SAFETY: the buffer is valid for `max` entries for the call.
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        if rc < 0 {
            let err = last_error();
            if err.raw_os_error() == Some(EINTR) {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

/// Best-effort bump of `RLIMIT_NOFILE` to its hard limit, so "a client
/// costs a connection slot, not a thread" is not silently capped at
/// the shell's default 1024 soft limit. Failures are ignored: the
/// server still runs, just with fewer slots.
pub fn raise_nofile_limit() {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid out-pointer for both calls.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < lim.max {
            lim.cur = lim.max;
            setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_round_trip() {
        let ep = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        ep.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");

        let mut events = vec![Event::zeroed(); 8];
        // Nothing written yet: a 0ms wait times out empty.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        a.write_all(b"x").expect("write");
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 42);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // Re-arm for write interest: immediately ready.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 7).expect("mod");
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        ep.delete(b.as_raw_fd()).expect("del");
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }
}
