//! Bounded, incremental HTTP/1.1 request parsing and response writing.
//!
//! `nalixd` speaks a deliberately small slice of HTTP/1.1, but it
//! speaks it carefully: requests are parsed *incrementally* by a
//! per-connection [`RequestParser`] state machine that consumes bytes
//! as the event loop reads them off a nonblocking socket, and yields
//! only *complete* requests. Keep-alive and pipelining are first-class:
//! [`Request::keep_alive`] captures the negotiated connection
//! persistence (HTTP/1.1 defaults to keep-alive, `Connection: close`
//! and HTTP/1.0 opt out), and a parser instance keeps consuming
//! pipelined requests from the same buffer.
//!
//! The parser is strict where laxness becomes request smuggling once
//! responses share a connection (RFC 9112 §6):
//!
//! * `Content-Length` must be a pure digit string; duplicates with
//!   differing values, signs (`+5`), empty values, or embedded
//!   whitespace are rejected with 400.
//! * `Transfer-Encoding` is parsed as a token list: `chunked` bodies
//!   are decoded (strict hex sizes, mandatory CRLF after each chunk's
//!   data, trailers consumed and discarded), `identity` is a no-op,
//!   anything else is 400 — and a request carrying *both*
//!   `Transfer-Encoding` and `Content-Length` is always rejected.
//!   The body cap is enforced incrementally as chunks accumulate, so
//!   a client cannot stream past `max_body` before being cut off.
//! * Header names may not be empty or contain whitespace (which also
//!   rejects obsolete line folding).
//! * Interior `\r` bytes are preserved in header values but rejected
//!   in the request line; only a single `\r` immediately before the
//!   `\n` terminator is stripped.
//!
//! Hard limits cap every dimension an unauthenticated client controls:
//! request-line and header-line length ([`MAX_LINE`] bytes of content,
//! exactly), header count ([`MAX_HEADERS`]), and body size (the
//! caller's `max_body`). Each limit failure maps to a precise HTTP
//! status instead of an allocation.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Maximum length of the request line and of each header line
/// (terminator excluded). A line of exactly this many bytes is
/// accepted; one more is rejected.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read off the socket.
#[derive(Debug)]
pub enum ReadError {
    /// The socket failed or timed out mid-request.
    Io(io::Error),
    /// The bytes were not a parseable HTTP/1.1 request; the payload is
    /// a human-readable reason.
    BadRequest(String),
    /// A limit tripped: request line, header block, or body too large.
    TooLarge(String),
    /// The client closed the connection before sending a request line
    /// (common with health checkers probing the port); not an error
    /// worth logging.
    Eof,
}

impl ReadError {
    fn bad(msg: &str) -> Self {
        ReadError::BadRequest(msg.to_string())
    }
}

/// One parsed request: method, target, selected headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// `Content-Type` header value, lower-cased, if present.
    pub content_type: Option<String>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should persist after this exchange:
    /// HTTP/1.1 unless `Connection: close`; HTTP/1.0 only with an
    /// explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Parse progress of the in-flight request.
#[derive(Debug)]
enum State {
    /// Waiting for (the rest of) the request line.
    RequestLine,
    /// Waiting for (more) header lines.
    Headers,
    /// Headers complete; waiting for `Content-Length` body bytes.
    Body,
    /// Chunked body: waiting for a `<hex-size>[;ext]` line.
    ChunkSize,
    /// Chunked body: waiting for this many data bytes plus the
    /// mandatory trailing CRLF.
    ChunkData(usize),
    /// Chunked body: the zero-size chunk arrived; consuming trailer
    /// lines until the blank line that ends the request.
    ChunkTrailer,
}

/// Accumulated fields of the request being parsed.
#[derive(Debug, Default)]
struct Partial {
    method: String,
    path: String,
    http11: bool,
    wants_close: bool,
    wants_keep_alive: bool,
    content_type: Option<String>,
    content_length: Option<usize>,
    saw_transfer_encoding: bool,
    chunked: bool,
    headers_seen: usize,
    /// Decoded body bytes accumulated so far (chunked requests only;
    /// `Content-Length` bodies are sliced straight out of the buffer).
    body: Vec<u8>,
}

/// An incremental HTTP/1.1 request parser: feed it bytes as they
/// arrive, poll it for complete requests.
///
/// One parser serves one connection for its whole life; pipelined
/// requests are consumed from the same buffer in order. All limits
/// ([`MAX_LINE`], [`MAX_HEADERS`], the constructor's `max_body`) are
/// enforced *during* accumulation, so a hostile client cannot make the
/// buffer grow past one request's caps before being rejected.
///
/// ```
/// use server::http::RequestParser;
/// let mut p = RequestParser::new(1024);
/// p.feed(b"GET /health HTTP/1.1\r\n\r\nGET /metrics");
/// let first = p.poll().unwrap().expect("complete");
/// assert_eq!(first.path, "/health");
/// assert!(first.keep_alive);
/// assert!(p.poll().unwrap().is_none()); // second request incomplete
/// p.feed(b" HTTP/1.1\r\nConnection: close\r\n\r\n");
/// let second = p.poll().unwrap().expect("complete");
/// assert_eq!(second.path, "/metrics");
/// assert!(!second.keep_alive);
/// ```
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    buf: Vec<u8>,
    pos: usize,
    state: State,
    partial: Partial,
}

impl RequestParser {
    /// A fresh parser enforcing `max_body` on request bodies.
    pub fn new(max_body: usize) -> Self {
        RequestParser {
            max_body,
            buf: Vec::new(),
            pos: 0,
            state: State::RequestLine,
            partial: Partial::default(),
        }
    }

    /// Appends newly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fed but not yet consumed into a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when at least one byte of an unfinished request has
    /// arrived — the caller's read timeout should answer `408`; an
    /// idle connection (nothing buffered, nothing in progress) should
    /// just be closed.
    pub fn mid_request(&self) -> bool {
        !matches!(self.state, State::RequestLine) || self.buffered() > 0
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// `Ok(Some(_))` yields the next pipelined request; `Ok(None)`
    /// means more bytes are needed; `Err(_)` poisons the connection
    /// (the caller should answer 400/413 and close — the parser makes
    /// no attempt to resynchronize a malformed stream).
    pub fn poll(&mut self) -> Result<Option<Request>, ReadError> {
        loop {
            match self.state {
                State::RequestLine => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    // RFC 9112 §2.2: ignore blank line(s) before the
                    // request line (sloppy clients after a POST).
                    if line.is_empty() {
                        continue;
                    }
                    self.start_request(&line)?;
                    self.state = State::Headers;
                }
                State::Headers => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if line.is_empty() {
                        self.finish_headers()?;
                        self.state = if self.partial.chunked {
                            State::ChunkSize
                        } else {
                            State::Body
                        };
                    } else {
                        if self.partial.headers_seen >= MAX_HEADERS {
                            return Err(ReadError::TooLarge("too many headers".to_string()));
                        }
                        self.header_line(&line)?;
                        self.partial.headers_seen += 1;
                    }
                }
                State::Body => {
                    let need = self.partial.content_length.unwrap_or(0);
                    if self.buffered() < need {
                        return Ok(None);
                    }
                    let body = self.buf[self.pos..self.pos + need].to_vec();
                    self.pos += need;
                    return Ok(Some(self.complete(body)));
                }
                State::ChunkSize => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    let size = parse_chunk_size(&line)?;
                    // Incremental cap: the decoded body may never grow
                    // past max_body, however many chunks it arrives in.
                    if self.partial.body.len().saturating_add(size) > self.max_body {
                        return Err(ReadError::TooLarge(format!(
                            "chunked body exceeds the {} byte limit",
                            self.max_body
                        )));
                    }
                    self.state = if size == 0 {
                        State::ChunkTrailer
                    } else {
                        State::ChunkData(size)
                    };
                }
                State::ChunkData(size) => {
                    // Wait for the whole chunk plus its CRLF; `size` is
                    // already capped by max_body, so buffering it whole
                    // is bounded.
                    if self.buffered() < size + 2 {
                        return Ok(None);
                    }
                    let data = &self.buf[self.pos..self.pos + size + 2];
                    if &data[size..] != b"\r\n" {
                        return Err(ReadError::bad("chunk data not terminated by CRLF"));
                    }
                    self.partial.body.extend_from_slice(&data[..size]);
                    self.pos += size + 2;
                    self.compact();
                    self.state = State::ChunkSize;
                }
                State::ChunkTrailer => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if line.is_empty() {
                        let body = std::mem::take(&mut self.partial.body);
                        return Ok(Some(self.complete(body)));
                    }
                    // Trailer fields are header-shaped; count them
                    // against the same cap, validate the shape, and
                    // discard the content (nalixd acts on none).
                    if self.partial.headers_seen >= MAX_HEADERS {
                        return Err(ReadError::TooLarge("too many headers".to_string()));
                    }
                    let Some((name, _)) = line.split_once(':') else {
                        return Err(ReadError::bad("malformed trailer"));
                    };
                    if name.is_empty() || name.bytes().any(|b| b.is_ascii_whitespace()) {
                        return Err(ReadError::bad("malformed trailer name"));
                    }
                    self.partial.headers_seen += 1;
                }
            }
        }
    }

    /// Finalises the in-flight request with the given decoded body and
    /// resets the parser for the next pipelined request.
    fn complete(&mut self, body: Vec<u8>) -> Request {
        self.compact();
        let partial = std::mem::take(&mut self.partial);
        self.state = State::RequestLine;
        let keep_alive = if partial.wants_close {
            false
        } else if partial.http11 {
            true
        } else {
            partial.wants_keep_alive
        };
        Request {
            method: partial.method,
            path: partial.path,
            content_type: partial.content_type,
            body,
            keep_alive,
        }
    }

    /// Extracts the next `\n`- (or `\r\n`-) terminated line, stripping
    /// only the terminator, enforcing [`MAX_LINE`] on the content.
    /// `Ok(None)` means the terminator has not arrived yet.
    fn take_line(&mut self) -> Result<Option<String>, ReadError> {
        // A line of MAX_LINE content bytes plus "\r\n" spans
        // MAX_LINE + 2 wire bytes; if no terminator shows up within
        // that window the line can never be legal.
        let window = self.buf.len().min(self.pos + MAX_LINE + 2);
        let Some(nl) = self.buf[self.pos..window].iter().position(|&b| b == b'\n') else {
            if self.buf.len() - self.pos >= MAX_LINE + 2 {
                return Err(ReadError::TooLarge("header line too long".to_string()));
            }
            return Ok(None);
        };
        let start = self.pos;
        let mut end = start + nl;
        self.pos = end + 1;
        if end > start && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        if end - start > MAX_LINE {
            return Err(ReadError::TooLarge("header line too long".to_string()));
        }
        let line = String::from_utf8(self.buf[start..end].to_vec())
            .map_err(|_| ReadError::bad("request is not UTF-8"))?;
        Ok(Some(line))
    }

    /// Reclaims consumed buffer space between requests.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 8 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Parses the request line into the partial request.
    fn start_request(&mut self, line: &str) -> Result<(), ReadError> {
        // A bare CR anywhere in the request line is a desync hazard
        // (some peer might have treated it as a terminator).
        if line.contains('\r') {
            return Err(ReadError::bad("bare CR in request line"));
        }
        let mut parts = line.split_ascii_whitespace();
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) => (m, t, v),
            _ => return Err(ReadError::bad("malformed request line")),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ReadError::bad("unsupported HTTP version"));
        }
        self.partial.http11 = version == "HTTP/1.1";
        self.partial.method = method.to_string();
        // Strip the query string; nalixd routes on the path alone.
        self.partial.path = target.split('?').next().unwrap_or(target).to_string();
        Ok(())
    }

    /// Parses one header line into the partial request.
    fn header_line(&mut self, line: &str) -> Result<(), ReadError> {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::bad("malformed header"));
        };
        // RFC 9112 §5.1: no whitespace between name and colon; this
        // also rejects obsolete line folding (leading whitespace).
        if name.is_empty() || name.bytes().any(|b| b.is_ascii_whitespace()) {
            return Err(ReadError::bad("malformed header name"));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed = parse_content_length(value)?;
                if let Some(prev) = self.partial.content_length {
                    if prev != parsed {
                        return Err(ReadError::bad("conflicting Content-Length headers"));
                    }
                }
                self.partial.content_length = Some(parsed);
            }
            "content-type" => self.partial.content_type = Some(value.to_ascii_lowercase()),
            "transfer-encoding" => {
                self.partial.saw_transfer_encoding = true;
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "chunked" => self.partial.chunked = true,
                        "identity" | "" => {}
                        _ => return Err(ReadError::bad("unsupported transfer encoding")),
                    }
                }
            }
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => self.partial.wants_close = true,
                        "keep-alive" => self.partial.wants_keep_alive = true,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Cross-header validation once the blank line arrives.
    fn finish_headers(&mut self) -> Result<(), ReadError> {
        // Both framing headers present is the classic smuggling vector
        // (RFC 9112 §6.1); reject even when the encoding is identity.
        if self.partial.saw_transfer_encoding && self.partial.content_length.is_some() {
            return Err(ReadError::bad(
                "both Transfer-Encoding and Content-Length present",
            ));
        }
        let length = self.partial.content_length.unwrap_or(0);
        if length > self.max_body {
            return Err(ReadError::TooLarge(format!(
                "body of {length} bytes exceeds the {} byte limit",
                self.max_body
            )));
        }
        Ok(())
    }
}

/// Strict chunk-size line per RFC 9112 §7.1: a nonempty run of hex
/// digits, optionally followed by `;extensions` (parsed past, acted on
/// never). No sign, no leading whitespace, no bare extension line.
/// The caller still bounds the returned size against `max_body`
/// (which also keeps the later `+ 2` for the chunk's CRLF from
/// overflowing).
fn parse_chunk_size(line: &str) -> Result<usize, ReadError> {
    let digits = line.split(';').next().unwrap_or(line).trim_end();
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ReadError::bad("unparseable chunk size"));
    }
    // 16 hex digits fit u64; anything longer is an attack, not a body.
    if digits.len() > 16 {
        return Err(ReadError::bad("chunk size out of range"));
    }
    let size =
        u64::from_str_radix(digits, 16).map_err(|_| ReadError::bad("unparseable chunk size"))?;
    usize::try_from(size).map_err(|_| ReadError::bad("chunk size out of range"))
}

/// Strict `Content-Length` per RFC 9112 §6.2: a nonempty string of
/// ASCII digits, nothing else — no sign, no whitespace, no comma list.
fn parse_content_length(value: &str) -> Result<usize, ReadError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ReadError::bad("unparseable Content-Length"));
    }
    value
        .parse()
        .map_err(|_| ReadError::bad("Content-Length out of range"))
}

/// Reads one request from `reader`, enforcing `max_body` on the body —
/// the blocking convenience wrapper over [`RequestParser`] (the event
/// loop feeds the parser directly).
///
/// `reader` should wrap a stream with a read timeout set; this function
/// performs no timing of its own.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let mut parser = RequestParser::new(max_body);
    loop {
        if let Some(req) = parser.poll()? {
            return Ok(req);
        }
        let chunk = reader.fill_buf().map_err(ReadError::Io)?;
        if chunk.is_empty() {
            return Err(if parser.mid_request() {
                ReadError::bad("connection closed mid-request")
            } else {
                ReadError::Eof
            });
        }
        let n = chunk.len();
        parser.feed(chunk);
        reader.consume(n);
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    content_type: &'static str,
    extra_headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and a JSON body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A response with the given status and a plain-text body.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds an extra header (e.g. `Retry-After`, `Allow`).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// The response status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialises the full wire form. `keep_alive` selects the
    /// `Connection` header: the event loop passes the negotiated
    /// per-connection decision; one-shot writers pass `false`.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = String::with_capacity(160);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialises the response with `Connection: close` and writes it
    /// to `out` — the one-shot path (shed responses, tests).
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(&self.serialize(false))?;
        out.flush()
    }
}

/// The canonical reason phrase for the status codes nalixd emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response as read back by a *client* (tests, the loadgen): the
/// status line, raw header lines, and the framed body.
///
/// Keep-alive aware: [`read_response`] consumes exactly one
/// `Content-Length`-framed response and leaves the stream positioned
/// at the next, so clients no longer need `Connection: close` plus
/// read-to-EOF to delimit replies.
#[derive(Debug)]
pub struct RawResponse {
    /// The status line, e.g. `HTTP/1.1 200 OK`.
    pub status_line: String,
    /// Header lines, verbatim, terminator stripped.
    pub headers: Vec<String>,
    /// The response body.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// The numeric status code (0 when the status line is malformed).
    pub fn status(&self) -> u16 {
        self.status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// The value of the named header, case-insensitive, trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find_map(|h| {
            let (n, v) = h.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }

    /// The body as (lossy) UTF-8.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads exactly one framed response off `reader`. Errors with
/// `UnexpectedEof` when the peer closed before a full response.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<RawResponse> {
    let read_line = |r: &mut R| -> io::Result<String> {
        let mut raw = Vec::new();
        r.read_until(b'\n', &mut raw)?;
        if raw.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while matches!(raw.last(), Some(b'\n' | b'\r')) {
            raw.pop();
        }
        String::from_utf8(raw)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response line"))
    };
    let status_line = read_line(reader)?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
        headers.push(line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(RawResponse {
        status_line,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        let mut r = BufReader::new(raw.as_bytes());
        read_request(&mut r, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: Application/JSON\r\n\
             Content-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.content_type.as_deref(), Some("application/json"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn strips_query_string_and_handles_bare_lf() {
        let req = parse("GET /health?probe=1 HTTP/1.1\n\n").unwrap();
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_negotiation() {
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive);
        let list = parse("GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n").unwrap();
        assert!(!list.keep_alive, "close token found in a list");
    }

    #[test]
    fn rejects_oversized_and_garbage() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::TooLarge(_))
        ));
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn decodes_a_chunked_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"Wikipedia");
        assert!(req.keep_alive);
        // Uppercase hex sizes, a chunk extension, and trailer fields.
        let req = parse(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             A;name=value\r\n0123456789\r\n0\r\nX-Checksum: abc\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"0123456789");
        // An empty chunked body is just the last-chunk marker.
        let req = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    /// The decoder is incremental: a chunked request split at every
    /// byte boundary still assembles, and a pipelined request after
    /// the trailer parses from the same buffer.
    #[test]
    fn chunked_incremental_and_pipelined() {
        let wire = "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    3\r\nabc\r\n0\r\n\r\nGET /health HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new(1024);
        let mut got = Vec::new();
        for b in wire.as_bytes() {
            p.feed(&[*b]);
            while let Some(req) = p.poll().expect("clean parse") {
                got.push(req);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].body, b"abc");
        assert_eq!(got[1].path, "/health");
        assert!(!p.mid_request());
    }

    #[test]
    fn chunk_size_edge_cases() {
        let chunked = |tail: &str| {
            parse(&format!(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{tail}"
            ))
        };
        for bad in [
            "\r\nabc\r\n0\r\n\r\n",      // empty size line
            "g\r\nabc\r\n0\r\n\r\n",     // non-hex digit
            "+3\r\nabc\r\n0\r\n\r\n",    // sign
            " 3\r\nabc\r\n0\r\n\r\n",    // leading whitespace
            "3 3\r\nabc\r\n0\r\n\r\n",   // embedded whitespace
            ";x\r\nabc\r\n0\r\n\r\n",    // bare extension, no size
            "0x3\r\nabc\r\n0\r\n\r\n",   // radix prefix is not hex
            "123456789abcdef01\r\n",     // 17 hex digits: out of range
            "ffffffffffffffff\r\n",      // u64::MAX: over max_body
            "3\r\nabcd\r\n0\r\n\r\n",    // data overruns into the CRLF
            "4\r\nabc\r\n\r\n0\r\n\r\n", // data one byte short
        ] {
            assert!(
                chunked(bad).is_err(),
                "chunk stream {bad:?} must be rejected"
            );
        }
        // The body cap is enforced on the *decoded* total: two chunks
        // that each fit but sum past max_body are cut off mid-stream.
        let mut big = String::from("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        for _ in 0..3 {
            big.push_str("190\r\n");
            big.push_str(&"x".repeat(0x190));
            big.push_str("\r\n");
        }
        big.push_str("0\r\n\r\n");
        assert!(matches!(parse(&big), Err(ReadError::TooLarge(_))));
    }

    /// Regression (RFC 9112 §6.2): duplicate `Content-Length` headers
    /// with differing values used to be last-one-wins, and `+5` parsed
    /// fine via `usize::from_str`'s sign tolerance.
    #[test]
    fn content_length_is_strict() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nabcde"),
            Err(ReadError::BadRequest(_)),
        ));
        // Identical duplicates are allowed (a proxy may have merged).
        let req =
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
        for bad in ["+5", "-5", "", " ", "4 4", "0x10", "5,5"] {
            assert!(
                matches!(
                    parse(&format!(
                        "POST / HTTP/1.1\r\nContent-Length:{bad}\r\n\r\nabcde"
                    )),
                    Err(ReadError::BadRequest(_)),
                ),
                "Content-Length {bad:?} must be rejected"
            );
        }
    }

    /// Regression: `Transfer-Encoding: identity` used to trip the
    /// blanket chunked rejection; TE+CL together must always fail.
    #[test]
    fn transfer_encoding_tokens() {
        let req = parse("GET / HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n").unwrap();
        assert!(req.body.is_empty(), "identity is a no-op, not chunked");
        let req = parse(
            "POST / HTTP/1.1\r\nTransfer-Encoding: identity, chunked\r\n\r\n\
             2\r\nok\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"ok", "chunked as the final token decodes");
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        for framing_pair in [
            "Transfer-Encoding: identity\r\nContent-Length: 4",
            "Transfer-Encoding: chunked\r\nContent-Length: 4",
        ] {
            assert!(
                matches!(
                    parse(&format!("POST / HTTP/1.1\r\n{framing_pair}\r\n\r\nabcd")),
                    Err(ReadError::BadRequest(_))
                ),
                "Transfer-Encoding plus Content-Length is a smuggling vector"
            );
        }
    }

    /// Regression: `read_line` used to strip *every* `\r` in a line
    /// (so `a\rb` in a header value became `ab`) and accepted a bare
    /// CR in the request line.
    #[test]
    fn interior_cr_preserved_in_headers_rejected_in_request_line() {
        let req = parse("GET / HTTP/1.1\r\nX-Odd: a\rb\r\n\r\n").unwrap();
        assert_eq!(req.content_type, None);
        // The value survived verbatim: prove it via content-type.
        let req2 = parse("GET / HTTP/1.1\r\nContent-Type: a\rb\r\n\r\n").unwrap();
        assert_eq!(req2.content_type.as_deref(), Some("a\rb"));
        drop(req);
        assert!(matches!(
            parse("GET /a\rb HTTP/1.1\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
    }

    /// Regression: the line cap is exactly [`MAX_LINE`] content bytes.
    #[test]
    fn line_cap_is_exact() {
        let path = "a".repeat(MAX_LINE - "GET  HTTP/1.1".len());
        let ok = parse(&format!("GET {path} HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(ok.path.len(), path.len());
        let too_long = "a".repeat(MAX_LINE - "GET  HTTP/1.1".len() + 1);
        assert!(matches!(
            parse(&format!("GET {too_long} HTTP/1.1\r\n\r\n")),
            Err(ReadError::TooLarge(_))
        ));
        // And a terminator-free flood is cut off at the cap, not
        // buffered forever.
        let mut p = RequestParser::new(1024);
        p.feed("x".repeat(MAX_LINE + 2).as_bytes());
        assert!(matches!(p.poll(), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn rejects_whitespace_in_header_names() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length : 4\r\n\r\nabcd"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x\r\n folded: y\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn caps_header_count() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
        // Exactly MAX_HEADERS is fine.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(parse(&raw).is_ok());
    }

    /// The incremental surface: byte-at-a-time feeding and pipelining.
    #[test]
    fn incremental_and_pipelined_parsing() {
        let wire =
            "POST /query HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /health HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new(1024);
        let mut got = Vec::new();
        for b in wire.as_bytes() {
            p.feed(&[*b]);
            while let Some(req) = p.poll().expect("clean parse") {
                got.push(req);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].path, "/query");
        assert_eq!(got[0].body, b"abc");
        assert_eq!(got[1].path, "/health");
        assert!(!p.mid_request());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn mid_request_tracks_partial_bytes() {
        let mut p = RequestParser::new(1024);
        assert!(!p.mid_request());
        p.feed(b"POST /q");
        assert!(p.mid_request());
        p.feed(b"uery HTTP/1.1\r\nContent-Length: 2\r\n\r\nab");
        assert!(p.poll().unwrap().is_some());
        assert!(!p.mid_request());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(503, "{}".to_string())
            .with_header("Retry-After", "1".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let ka = Response::text(200, "ok".to_string()).serialize(true);
        let ka = String::from_utf8(ka).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn client_side_framed_reading() {
        let alive = Response::json(200, "{\"a\":1}".to_string()).serialize(true);
        let closed = Response::json(408, "{}".to_string()).serialize(false);
        let wire: Vec<u8> = alive.into_iter().chain(closed).collect();
        let mut r = BufReader::new(wire.as_slice());
        let first = read_response(&mut r).unwrap();
        assert_eq!(first.status(), 200);
        assert_eq!(first.header("connection"), Some("keep-alive"));
        assert_eq!(first.body_str(), "{\"a\":1}");
        let second = read_response(&mut r).unwrap();
        assert_eq!(second.status_line, "HTTP/1.1 408 Request Timeout");
        assert!(read_response(&mut r).is_err(), "EOF after two responses");
    }
}
