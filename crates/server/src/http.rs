//! Bounded HTTP/1.1 request parsing and response writing.
//!
//! `nalixd` speaks a deliberately small slice of HTTP/1.1: one request
//! per connection (`Connection: close` on every response, so admission
//! control is per *request*), `Content-Length` bodies only (chunked
//! transfer encoding is rejected with 400 rather than half-implemented)
//! and hard limits on every dimension an unauthenticated client
//! controls — request-line length, header count and size, and body
//! size. Each limit failure maps to a precise HTTP status instead of an
//! allocation: a slow-loris client hits the socket read timeout, a
//! shouting one hits [`ReadError::TooLarge`].

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Maximum length of the request line and of each header line.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be read off the socket.
#[derive(Debug)]
pub enum ReadError {
    /// The socket failed or timed out mid-request.
    Io(io::Error),
    /// The bytes were not a parseable HTTP/1.1 request; the payload is
    /// a human-readable reason.
    BadRequest(String),
    /// A limit tripped: request line, header block, or body too large.
    TooLarge(String),
    /// The client closed the connection before sending a request line
    /// (common with health checkers probing the port); not an error
    /// worth logging.
    Eof,
}

impl ReadError {
    fn bad(msg: &str) -> Self {
        ReadError::BadRequest(msg.to_string())
    }
}

/// One parsed request: method, target, selected headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// `Content-Type` header value, lower-cased, if present.
    pub content_type: Option<String>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request from `reader`, enforcing `max_body` on the body.
///
/// `reader` should wrap a stream with a read timeout set; this function
/// performs no timing of its own.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ReadError> {
    let line = read_line(reader)?;
    if line.is_empty() {
        return Err(ReadError::Eof);
    }
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(ReadError::bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::bad("unsupported HTTP version"));
    }
    // Strip the query string; nalixd routes on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    let mut content_type = None;
    let mut chunked = false;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(ReadError::TooLarge("too many headers".to_string()));
        }
        let header = read_line(reader)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::bad("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::bad("unparseable Content-Length"))?;
            }
            "content-type" => content_type = Some(value.to_ascii_lowercase()),
            "transfer-encoding" => chunked = true,
            _ => {}
        }
    }
    if chunked {
        return Err(ReadError::bad(
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }
    if content_length > max_body {
        return Err(ReadError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(Request {
        method: method.to_string(),
        path,
        content_type,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, capped at [`MAX_LINE`]
/// bytes, returning it without the terminator. An immediate EOF yields
/// an empty string (distinguished from a blank line by the caller via
/// position: a blank line mid-headers ends the header block).
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, ReadError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    buf.push(byte[0]);
                }
                if buf.len() > MAX_LINE {
                    return Err(ReadError::TooLarge("request line too long".to_string()));
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    String::from_utf8(buf).map_err(|_| ReadError::bad("request is not UTF-8"))
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    content_type: &'static str,
    extra_headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and a JSON body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A response with the given status and a plain-text body.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds an extra header (e.g. `Retry-After`, `Allow`).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// The response status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialises the response and writes it to `out`. Always sends
    /// `Connection: close`; the server's connection model is one
    /// request per connection.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let mut head = String::with_capacity(160);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// The canonical reason phrase for the status codes nalixd emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        let mut r = BufReader::new(raw.as_bytes());
        read_request(&mut r, 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: Application/JSON\r\n\
             Content-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.content_type.as_deref(), Some("application/json"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn strips_query_string_and_handles_bare_lf() {
        let req = parse("GET /health?probe=1 HTTP/1.1\n\n").unwrap();
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_chunked_and_oversized_and_garbage() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::TooLarge(_))
        ));
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn caps_header_count() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(503, "{}".to_string())
            .with_header("Retry-After", "1".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
