//! A bounded MPMC admission queue with explicit overload behavior.
//!
//! The queue is the server's single admission-control point: the
//! event-loop thread [`try_push`](BoundedQueue::try_push)es each
//! fully parsed *request* (not a connection — parsing happens in the
//! loop, so a slow sender can never occupy a worker) and *never
//! blocks* — when the queue is full the push fails, handing the
//! request back so the loop can write a 503 with `Retry-After` and
//! move on (load shedding, not load absorbing). Workers block in
//! [`pop`](BoundedQueue::pop) until work arrives or the queue is
//! closed *and drained*, which is exactly the graceful shutdown
//! contract: close stops admission, but every request already
//! admitted is still served.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused; the item is handed back in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed this item.
    Full(T),
    /// The queue has been closed — the server is draining.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A `Mutex`+`Condvar` bounded queue. Capacity 0 is legal and sheds
/// every push — useful in tests.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity (the shed threshold), as passed to
    /// [`new`](BoundedQueue::new).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push. On success returns the queue depth *after*
    /// the push (for the high-water gauge); on failure returns the item
    /// so the caller can shed it with a proper response.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocking pop. Returns `None` only when the queue is closed and
    /// every admitted item has been handed out — the worker-exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail with
    /// [`PushError::Closed`], and once the backlog drains every blocked
    /// [`pop`](BoundedQueue::pop) returns `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_and_depth() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = BoundedQueue::new(0);
        assert!(matches!(q.try_push(7), Err(PushError::Full(7))));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        // Admitted items still come out, in order, before the None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || q.pop()));
        }
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let total = 200u32;
        let consumed = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            consumers.push(thread::spawn(move || {
                while q.pop().is_some() {
                    consumed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            }));
        }
        let mut pushed = 0u32;
        while pushed < total {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                thread::yield_now();
            }
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(std::sync::atomic::Ordering::SeqCst), total);
    }
}
