//! Loopback integration tests: a real listener, real sockets, real
//! worker threads — asserting the three serving contracts (fidelity to
//! the in-process pipeline, explicit overload, graceful drain).

use nalix::Nalix;
use server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use xquery::EvalBudget;

/// A config suitable for tests: ephemeral port, small pool.
fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 16,
        ..ServerConfig::default()
    }
}

/// Sends one raw HTTP request and returns (status line, body).
fn send(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("write");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read");
    let status = reply.lines().next().unwrap_or("").to_string();
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_query(addr: SocketAddr, question: &str) -> (String, String) {
    let body = format!("{{\"question\": {:?}}}", question);
    send(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// Runs `f` against a serving nalixd and tears the server down after.
fn with_server<F, R>(config: ServerConfig, f: F) -> (R, server::ServeReport)
where
    F: FnOnce(SocketAddr) -> R + Send,
    R: Send,
{
    let doc = xmldb::datasets::bib::bib();
    let nalix = Nalix::new(&doc);
    let server = Server::bind(&nalix, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let mut out = None;
    let mut report = None;
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            // Shut down even if `f` panics: otherwise `serve()` below
            // never returns and the whole test binary hangs instead of
            // reporting the panic.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
            handle.shutdown();
            match r {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        report = Some(server.serve().expect("serve"));
        out = Some(worker.join().expect("client panicked"));
    });
    (out.expect("client result"), report.expect("serve report"))
}

/// The serving contract: answers over HTTP are bit-identical to the
/// in-process `Nalix::answer_full`, under 8-way client concurrency.
#[test]
fn concurrent_clients_get_in_process_answers() {
    let questions = [
        "Return every title.",
        "Return the authors of every book.",
        "Return every publisher.",
        "Return the price of every book.",
        "Return every title.",
        "Return the authors of every book.",
        "Return every publisher.",
        "Return the price of every book.",
    ];

    // Ground truth, computed in-process on an identical pipeline.
    let doc = xmldb::datasets::bib::bib();
    let oracle = Nalix::new(&doc);
    let expected: Vec<Vec<String>> = questions
        .iter()
        .map(|q| {
            oracle
                .answer_full(q, &EvalBudget::default())
                .expect("oracle answers")
                .values
        })
        .collect();

    let (bodies, report) = with_server(test_config(), |addr| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = questions
                .iter()
                .map(|q| scope.spawn(move || post_query(addr, q)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });

    for ((status, body), expected_values) in bodies.iter().zip(&expected) {
        assert_eq!(status, "HTTP/1.1 200 OK", "body: {body}");
        let parsed = server::json::Json::parse(body).expect("valid JSON body");
        let answers: Vec<String> = parsed
            .get("answers")
            .and_then(server::json::Json::as_array)
            .expect("answers array")
            .iter()
            .map(|v| v.as_str().expect("string answer").to_string())
            .collect();
        assert_eq!(
            &answers, expected_values,
            "HTTP answers differ from in-process"
        );
        assert!(parsed
            .get("xquery")
            .and_then(server::json::Json::as_str)
            .is_some());
    }
    assert_eq!(report.served, 8);
    assert_eq!(report.shed, 0);
}

/// Pipeline rejections surface as stable machine-readable codes with
/// the right statuses.
#[test]
fn error_codes_reach_the_wire() {
    let ((unknown, empty, not_found, wrong_method), _report) = with_server(test_config(), |addr| {
        (
            post_query(addr, "Frobnicate the quuxes zzyzx."),
            post_query(addr, ""),
            send(addr, "GET /nope HTTP/1.1\r\n\r\n"),
            send(addr, "GET /query HTTP/1.1\r\n\r\n"),
        )
    });
    assert_eq!(unknown.0, "HTTP/1.1 422 Unprocessable Entity");
    assert!(
        unknown.1.contains("\"code\":\"classify.unknown_term\"")
            || unknown.1.contains("\"code\":\"parse.ungrammatical\"")
            || unknown.1.contains("\"code\":\"validate.rejected\""),
        "body: {}",
        unknown.1
    );
    assert_eq!(empty.0, "HTTP/1.1 400 Bad Request");
    assert!(empty.1.contains("\"code\":\"http.bad_request\""));
    assert_eq!(not_found.0, "HTTP/1.1 404 Not Found");
    assert!(not_found.1.contains("\"code\":\"http.not_found\""));
    assert_eq!(wrong_method.0, "HTTP/1.1 405 Method Not Allowed");
    assert!(wrong_method
        .1
        .contains("\"code\":\"http.method_not_allowed\""));
}

/// Health, metrics, and batch endpoints answer sensibly.
#[test]
fn auxiliary_endpoints_work() {
    let ((health, metrics, batch), _report) = with_server(test_config(), |addr| {
        let batch_body = r#"{"questions": ["Return every title.", "Zzyzx."]}"#;
        (
            send(addr, "GET /health HTTP/1.1\r\n\r\n"),
            send(addr, "GET /metrics HTTP/1.1\r\n\r\n"),
            send(
                addr,
                &format!(
                    "POST /batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                    batch_body.len(),
                    batch_body
                ),
            ),
        )
    });
    assert_eq!(health.0, "HTTP/1.1 200 OK");
    assert!(health.1.contains("\"status\":\"ok\""), "body: {}", health.1);
    assert_eq!(metrics.0, "HTTP/1.1 200 OK");
    assert!(
        metrics.1.contains("nalix_stage_spans_total"),
        "prometheus body: {}",
        metrics.1
    );
    assert_eq!(batch.0, "HTTP/1.1 200 OK");
    let parsed = server::json::Json::parse(&batch.1).expect("valid batch JSON");
    let results = parsed
        .get("results")
        .and_then(server::json::Json::as_array)
        .expect("results array");
    assert_eq!(results.len(), 2);
    assert!(results[0].get("answers").is_some());
    assert!(results[1].get("error").is_some());
}

/// Overload contract: with one slow worker and a tiny queue, excess
/// connections are shed with 503 + Retry-After instead of queueing
/// unboundedly — and the server keeps answering afterwards.
#[test]
fn overload_sheds_with_503_and_retry_after() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    };
    let ((sheds, ok_after), report) = with_server(config, |addr| {
        // Fire 8 concurrent requests at a server that can hold at most
        // 2 (1 in-flight + 1 queued): at least 6 must be shed.
        let replies = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        let mut s = TcpStream::connect(addr).expect("connect");
                        s.write_all(b"GET /health HTTP/1.1\r\n\r\n").expect("write");
                        let mut reply = String::new();
                        s.read_to_string(&mut reply).expect("read");
                        reply
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect::<Vec<_>>()
        });
        let sheds: Vec<String> = replies
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 503"))
            .cloned()
            .collect();
        // After the burst clears, the server still answers.
        std::thread::sleep(Duration::from_millis(700));
        let ok_after = send(addr, "GET /health HTTP/1.1\r\n\r\n");
        (sheds, ok_after)
    });
    assert!(
        sheds.len() >= 6,
        "expected at least 6 shed responses, got {}",
        sheds.len()
    );
    for shed in &sheds {
        assert!(shed.contains("Retry-After: 1\r\n"), "reply: {shed}");
        assert!(
            shed.contains("\"code\":\"http.overloaded\""),
            "reply: {shed}"
        );
    }
    assert_eq!(ok_after.0, "HTTP/1.1 200 OK");
    assert_eq!(report.shed, sheds.len() as u64);
}

/// Drain contract: shutdown during an in-flight request lets that
/// request complete with a full 200, and the listener then refuses new
/// connections.
#[test]
fn graceful_drain_completes_in_flight_requests() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        debug_handler_delay: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    };
    let doc = xmldb::datasets::bib::bib();
    let nalix = Nalix::new(&doc);
    let server = Server::bind(&nalix, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    let mut in_flight_reply = None;
    std::thread::scope(|scope| {
        let client = scope.spawn(move || {
            let body = r#"{"question": "Return every title."}"#;
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(
                s,
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .expect("write");
            let mut reply = String::new();
            s.read_to_string(&mut reply).expect("read");
            reply
        });
        let stopper = scope.spawn(move || {
            // Give the request time to be admitted, then shut down
            // while the (delayed) handler is still working on it.
            std::thread::sleep(Duration::from_millis(150));
            handle.shutdown();
        });
        let report = server.serve().expect("serve");
        stopper.join().expect("stopper");
        in_flight_reply = Some(client.join().expect("client"));
        assert_eq!(report.served, 1, "in-flight request must be served");
    });

    let reply = in_flight_reply.expect("reply");
    assert!(
        reply.starts_with("HTTP/1.1 200 OK"),
        "in-flight request must complete during drain; got: {reply}"
    );
    // serve() has returned, so the listener is gone: new connections
    // must be refused (or reset), not silently queued.
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-drain connections must be refused"
    );
}
