//! Loopback integration tests: a real listener, real sockets, real
//! worker threads — asserting the serving contracts (fidelity to the
//! in-process pipeline, explicit overload, graceful drain) plus the
//! multi-document store surface (`"doc"` routing, `GET`/`PUT`/`DELETE
//! /docs`, hot reload under concurrent load, typed eviction errors).

use nalix::Nalix;
use server::http::{read_response, RawResponse};
use server::json::Json;
use server::{Server, ServerConfig};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use store::{DocumentStore, StoreConfig};
use xquery::EvalBudget;

/// A config suitable for tests: ephemeral port, small pool.
fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 16,
        ..ServerConfig::default()
    }
}

/// The store every test server fronts: the three builtins, `bib`
/// default.
fn test_store() -> Arc<DocumentStore> {
    Arc::new(DocumentStore::with_builtins(StoreConfig::default()))
}

/// Sends one raw HTTP request on a fresh connection and returns
/// (status line, body). Reads the `Content-Length`-framed response
/// rather than to EOF: the server keeps connections alive by default
/// now, so EOF would only come after the idle timeout.
fn send(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.write_all(raw.as_bytes()).expect("write");
    let mut reader = BufReader::new(s);
    let response = read_response(&mut reader).expect("read response");
    (response.status_line.clone(), response.body_str())
}

/// A persistent keep-alive client: one connection, many framed
/// request/response exchanges.
struct KeepAliveClient {
    reader: BufReader<TcpStream>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> Self {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        KeepAliveClient {
            reader: BufReader::new(s),
        }
    }

    fn write_raw(&mut self, raw: &str) {
        self.reader
            .get_mut()
            .write_all(raw.as_bytes())
            .expect("write");
    }

    fn read_one(&mut self) -> RawResponse {
        read_response(&mut self.reader).expect("read response")
    }

    /// True when the server has closed the connection (clean EOF).
    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0))
    }
}

fn query_request(question: &str) -> String {
    let body = format!("{{\"question\": {question:?}}}");
    format!(
        "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

fn post_query(addr: SocketAddr, question: &str) -> (String, String) {
    let body = format!("{{\"question\": {:?}}}", question);
    post(addr, "/query", &body)
}

fn post_query_on(addr: SocketAddr, doc: &str, question: &str) -> (String, String) {
    let body = format!("{{\"question\": {:?}, \"doc\": {:?}}}", question, doc);
    post(addr, "/query", &body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

fn put_doc(addr: SocketAddr, name: &str, body: &str) -> (String, String) {
    send(
        addr,
        &format!(
            "PUT /docs/{name} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

fn delete_doc(addr: SocketAddr, name: &str) -> (String, String) {
    send(addr, &format!("DELETE /docs/{name} HTTP/1.1\r\n\r\n"))
}

/// Runs `f` against a serving nalixd (over `store`) and tears the
/// server down after.
fn with_store_server<F, R>(
    store: Arc<DocumentStore>,
    config: ServerConfig,
    f: F,
) -> (R, server::ServeReport)
where
    F: FnOnce(SocketAddr) -> R + Send,
    R: Send,
{
    let server = Server::bind(store, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let mut out = None;
    let mut report = None;
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            // Shut down even if `f` panics: otherwise `serve()` below
            // never returns and the whole test binary hangs instead of
            // reporting the panic.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
            handle.shutdown();
            match r {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        report = Some(server.serve().expect("serve"));
        out = Some(worker.join().expect("client panicked"));
    });
    (out.expect("client result"), report.expect("serve report"))
}

fn with_server<F, R>(config: ServerConfig, f: F) -> (R, server::ServeReport)
where
    F: FnOnce(SocketAddr) -> R + Send,
    R: Send,
{
    with_store_server(test_store(), config, f)
}

fn answers_of(body: &str) -> Vec<String> {
    Json::parse(body)
        .expect("valid JSON body")
        .get("answers")
        .and_then(Json::as_array)
        .expect("answers array")
        .iter()
        .map(|v| v.as_str().expect("string answer").to_string())
        .collect()
}

/// The serving contract: answers over HTTP are bit-identical to the
/// in-process `Nalix::answer_full`, under 8-way client concurrency.
#[test]
fn concurrent_clients_get_in_process_answers() {
    let questions = [
        "Return every title.",
        "Return the authors of every book.",
        "Return every publisher.",
        "Return the price of every book.",
        "Return every title.",
        "Return the authors of every book.",
        "Return every publisher.",
        "Return the price of every book.",
    ];

    // Ground truth, computed in-process on an identical pipeline.
    let oracle = Nalix::new(xmldb::datasets::bib::bib());
    let expected: Vec<Vec<String>> = questions
        .iter()
        .map(|q| {
            oracle
                .answer_full(q, &EvalBudget::default())
                .expect("oracle answers")
                .values
        })
        .collect();

    let (bodies, report) = with_server(test_config(), |addr| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = questions
                .iter()
                .map(|q| scope.spawn(move || post_query(addr, q)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });

    for ((status, body), expected_values) in bodies.iter().zip(&expected) {
        assert_eq!(status, "HTTP/1.1 200 OK", "body: {body}");
        let parsed = Json::parse(body).expect("valid JSON body");
        assert_eq!(
            &answers_of(body),
            expected_values,
            "HTTP answers differ from in-process"
        );
        assert!(parsed.get("xquery").and_then(Json::as_str).is_some());
        // The default document is reported back.
        assert_eq!(parsed.get("doc").and_then(Json::as_str), Some("bib"));
    }
    assert_eq!(report.served, 8);
    assert_eq!(report.shed, 0);
}

/// Pipeline rejections surface as stable machine-readable codes with
/// the right statuses.
#[test]
fn error_codes_reach_the_wire() {
    let ((unknown, empty, not_found, wrong_method), _report) = with_server(test_config(), |addr| {
        (
            post_query(addr, "Frobnicate the quuxes zzyzx."),
            post_query(addr, ""),
            send(addr, "GET /nope HTTP/1.1\r\n\r\n"),
            send(addr, "GET /query HTTP/1.1\r\n\r\n"),
        )
    });
    assert_eq!(unknown.0, "HTTP/1.1 422 Unprocessable Entity");
    assert!(
        unknown.1.contains("\"code\":\"classify.unknown_term\"")
            || unknown.1.contains("\"code\":\"parse.ungrammatical\"")
            || unknown.1.contains("\"code\":\"validate.rejected\""),
        "body: {}",
        unknown.1
    );
    assert_eq!(empty.0, "HTTP/1.1 400 Bad Request");
    assert!(empty.1.contains("\"code\":\"http.bad_request\""));
    assert_eq!(not_found.0, "HTTP/1.1 404 Not Found");
    assert!(not_found.1.contains("\"code\":\"http.not_found\""));
    assert_eq!(wrong_method.0, "HTTP/1.1 405 Method Not Allowed");
    assert!(wrong_method
        .1
        .contains("\"code\":\"http.method_not_allowed\""));
}

/// Health, metrics, and batch endpoints answer sensibly.
#[test]
fn auxiliary_endpoints_work() {
    let ((health, metrics, batch), _report) = with_server(test_config(), |addr| {
        let batch_body = r#"{"questions": ["Return every title.", "Zzyzx."]}"#;
        (
            send(addr, "GET /health HTTP/1.1\r\n\r\n"),
            send(addr, "GET /metrics HTTP/1.1\r\n\r\n"),
            post(addr, "/batch", batch_body),
        )
    });
    assert_eq!(health.0, "HTTP/1.1 200 OK");
    assert!(health.1.contains("\"status\":\"ok\""), "body: {}", health.1);
    assert_eq!(metrics.0, "HTTP/1.1 200 OK");
    assert!(
        metrics.1.contains("nalix_stage_spans_total"),
        "prometheus body: {}",
        metrics.1
    );
    // The store counter families are exported even before any store
    // operation happened.
    assert!(
        metrics.1.contains("store_loads"),
        "prometheus body: {}",
        metrics.1
    );
    assert_eq!(batch.0, "HTTP/1.1 200 OK");
    let parsed = Json::parse(&batch.1).expect("valid batch JSON");
    let results = parsed
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert_eq!(results.len(), 2);
    assert!(results[0].get("answers").is_some());
    assert!(results[1].get("error").is_some());
}

/// The admin surface round-trips: list, load a second corpus, query
/// it, reload it, evict it, and observe the typed 404 afterwards.
#[test]
fn docs_admin_surface_round_trips() {
    let (out, _report) = with_server(test_config(), |addr| {
        let listing_before = send(addr, "GET /docs HTTP/1.1\r\n\r\n");
        let load = put_doc(addr, "movies", "");
        let query = post_query_on(
            addr,
            "movies",
            "Find all the movies directed by Ron Howard.",
        );
        let reload = put_doc(addr, "movies", r#"{"source": "movies"}"#);
        let listing_after = send(addr, "GET /docs HTTP/1.1\r\n\r\n");
        let evict = delete_doc(addr, "movies");
        let after_evict = post_query_on(addr, "movies", "Return every title.");
        let evict_default = delete_doc(addr, "bib");
        (
            listing_before,
            load,
            query,
            reload,
            listing_after,
            evict,
            after_evict,
            evict_default,
        )
    });
    let (listing_before, load, query, reload, listing_after, evict, after_evict, evict_default) =
        out;

    assert_eq!(listing_before.0, "HTTP/1.1 200 OK");
    let parsed = Json::parse(&listing_before.1).expect("docs JSON");
    assert_eq!(parsed.get("default").and_then(Json::as_str), Some("bib"));
    assert_eq!(
        parsed.get("docs").and_then(Json::as_array).map(|d| d.len()),
        Some(3)
    );

    assert_eq!(load.0, "HTTP/1.1 200 OK", "body: {}", load.1);
    let parsed = Json::parse(&load.1).expect("put JSON");
    assert_eq!(parsed.get("generation").and_then(Json::as_u64), Some(1));
    // `with_builtins` registers movies but never loads it, so this PUT
    // is a first load, not a reload.
    assert!(load.1.contains("\"reloaded\":false"), "body: {}", load.1);

    assert_eq!(query.0, "HTTP/1.1 200 OK", "body: {}", query.1);
    let parsed = Json::parse(&query.1).expect("query JSON");
    assert_eq!(parsed.get("doc").and_then(Json::as_str), Some("movies"));
    assert!(!answers_of(&query.1).is_empty());

    assert_eq!(reload.0, "HTTP/1.1 200 OK", "body: {}", reload.1);
    let parsed = Json::parse(&reload.1).expect("reload JSON");
    assert_eq!(parsed.get("generation").and_then(Json::as_u64), Some(2));
    assert!(reload.1.contains("\"reloaded\":true"), "body: {}", reload.1);

    assert_eq!(listing_after.0, "HTTP/1.1 200 OK");
    assert!(
        listing_after.1.contains("\"name\":\"movies\""),
        "body: {}",
        listing_after.1
    );

    assert_eq!(evict.0, "HTTP/1.1 200 OK", "body: {}", evict.1);
    assert!(evict.1.contains("\"evicted\":\"movies\""));

    // Typed, 404-mapped error after eviction — not a panic, not a 500.
    assert_eq!(after_evict.0, "HTTP/1.1 404 Not Found");
    assert!(
        after_evict
            .1
            .contains("\"code\":\"store.unknown_document\""),
        "body: {}",
        after_evict.1
    );

    assert_eq!(evict_default.0, "HTTP/1.1 400 Bad Request");
    assert!(
        evict_default
            .1
            .contains("\"code\":\"store.default_protected\""),
        "body: {}",
        evict_default.1
    );
}

/// Two corpora served from one process answer independently and
/// bit-identically to their in-process oracles; a batch pins one
/// snapshot via its `"doc"` field.
#[test]
fn per_document_routing_matches_oracles() {
    let bib_q = "Return every title.";
    let movies_q = "Find all the movies directed by Ron Howard.";
    let bib_oracle = Nalix::new(xmldb::datasets::bib::bib())
        .ask(bib_q)
        .expect("bib oracle");
    let movies_oracle = Nalix::new(xmldb::datasets::movies::movies_and_books())
        .ask(movies_q)
        .expect("movies oracle");

    let ((bib_reply, movies_reply, batch_reply), _report) = with_server(test_config(), |addr| {
        (
            post_query_on(addr, "bib", bib_q),
            post_query_on(addr, "movies", movies_q),
            post(
                addr,
                "/batch",
                &format!("{{\"questions\": [{movies_q:?}], \"doc\": \"movies\"}}"),
            ),
        )
    });

    assert_eq!(bib_reply.0, "HTTP/1.1 200 OK", "body: {}", bib_reply.1);
    assert_eq!(answers_of(&bib_reply.1), bib_oracle);
    assert_eq!(
        movies_reply.0, "HTTP/1.1 200 OK",
        "body: {}",
        movies_reply.1
    );
    assert_eq!(answers_of(&movies_reply.1), movies_oracle);

    assert_eq!(batch_reply.0, "HTTP/1.1 200 OK");
    let parsed = Json::parse(&batch_reply.1).expect("batch JSON");
    assert_eq!(parsed.get("doc").and_then(Json::as_str), Some("movies"));
    let results = parsed
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    let batch_answers: Vec<String> = results[0]
        .get("answers")
        .and_then(Json::as_array)
        .expect("answers")
        .iter()
        .map(|v| v.as_str().expect("string").to_string())
        .collect();
    assert_eq!(batch_answers, movies_oracle);
}

/// Hot reload under concurrent load: 8 clients hammer two corpora
/// while the server hot-reloads one of them; every request completes
/// (zero transport errors) and every answer is bit-identical to the
/// oracle — whichever snapshot generation it observed.
#[test]
fn hot_reload_under_concurrent_load_is_invisible() {
    let bib_q = "Return every title.";
    let movies_q = "Find all the movies directed by Ron Howard.";
    let bib_oracle = Nalix::new(xmldb::datasets::bib::bib())
        .ask(bib_q)
        .expect("bib oracle");
    let movies_oracle = Nalix::new(xmldb::datasets::movies::movies_and_books())
        .ask(movies_q)
        .expect("movies oracle");

    let config = ServerConfig {
        workers: 8,
        queue_capacity: 64,
        ..test_config()
    };
    let (replies, report) = with_store_server(test_store(), config, |addr| {
        std::thread::scope(|scope| {
            let clients: Vec<_> = (0..8)
                .map(|i| {
                    scope.spawn(move || {
                        let (doc, q) = if i % 2 == 0 {
                            ("bib", bib_q)
                        } else {
                            ("movies", movies_q)
                        };
                        (0..5)
                            .map(|_| (doc, post_query_on(addr, doc, q)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let reloader = scope.spawn(move || {
                for _ in 0..3 {
                    std::thread::sleep(Duration::from_millis(30));
                    let (status, body) = put_doc(addr, "movies", "");
                    assert_eq!(status, "HTTP/1.1 200 OK", "reload failed: {body}");
                }
            });
            let replies: Vec<(_, _)> = clients
                .into_iter()
                .flat_map(|c| c.join().expect("client"))
                .collect();
            reloader.join().expect("reloader");
            replies
        })
    });

    assert_eq!(replies.len(), 40, "zero dropped requests");
    let mut generations_seen = std::collections::BTreeSet::new();
    for (doc, (status, body)) in &replies {
        assert_eq!(status, "HTTP/1.1 200 OK", "body: {body}");
        let expected = if *doc == "bib" {
            &bib_oracle
        } else {
            &movies_oracle
        };
        assert_eq!(&answers_of(body), expected, "doc {doc}: answers diverged");
        if *doc == "movies" {
            let parsed = Json::parse(body).expect("JSON");
            generations_seen.insert(parsed.get("generation").and_then(Json::as_u64));
        }
    }
    // 0 shed: every request was admitted and served.
    assert_eq!(report.shed, 0);
    // The merged final snapshot accounts for the retired generations'
    // work too: all 40 queries plus 3 reload spans are visible.
    assert!(report.snapshot.queries_total() >= 40);
    assert!(report.snapshot.stage(obs::Stage::StoreReload).spans() >= 2);
    drop(generations_seen); // which generations were observed is timing-dependent
}

/// Overload contract: with one slow worker and a tiny queue, excess
/// connections are shed with 503 + Retry-After instead of queueing
/// unboundedly — and the server keeps answering afterwards.
#[test]
fn overload_sheds_with_503_and_retry_after() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    };
    let ((sheds, ok_after), report) = with_server(config, |addr| {
        // Fire 8 concurrent requests at a server that can hold at most
        // 2 (1 in-flight + 1 queued): at least 6 must be shed.
        let replies = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        // `Connection: close` so read-to-EOF delimits
                        // the reply without waiting for the idle
                        // timeout on the admitted (200) connections.
                        let mut s = TcpStream::connect(addr).expect("connect");
                        s.write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
                            .expect("write");
                        let mut reply = String::new();
                        s.read_to_string(&mut reply).expect("read");
                        reply
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect::<Vec<_>>()
        });
        let sheds: Vec<String> = replies
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 503"))
            .cloned()
            .collect();
        // After the burst clears, the server still answers.
        std::thread::sleep(Duration::from_millis(700));
        let ok_after = send(addr, "GET /health HTTP/1.1\r\n\r\n");
        (sheds, ok_after)
    });
    assert!(
        sheds.len() >= 6,
        "expected at least 6 shed responses, got {}",
        sheds.len()
    );
    for shed in &sheds {
        assert!(shed.contains("Retry-After: 1\r\n"), "reply: {shed}");
        assert!(
            shed.contains("\"code\":\"http.overloaded\""),
            "reply: {shed}"
        );
    }
    assert_eq!(ok_after.0, "HTTP/1.1 200 OK");
    assert_eq!(report.shed, sheds.len() as u64);
}

/// Drain contract: shutdown during an in-flight request lets that
/// request complete with a full 200, and the listener then refuses new
/// connections.
#[test]
fn graceful_drain_completes_in_flight_requests() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        debug_handler_delay: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    };
    let server = Server::bind(test_store(), config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    let mut in_flight_reply = None;
    std::thread::scope(|scope| {
        let client = scope.spawn(move || {
            let body = r#"{"question": "Return every title."}"#;
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(
                s,
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .expect("write");
            let mut reply = String::new();
            s.read_to_string(&mut reply).expect("read");
            reply
        });
        let stopper = scope.spawn(move || {
            // Give the request time to be admitted, then shut down
            // while the (delayed) handler is still working on it.
            std::thread::sleep(Duration::from_millis(150));
            handle.shutdown();
        });
        let report = server.serve().expect("serve");
        stopper.join().expect("stopper");
        in_flight_reply = Some(client.join().expect("client"));
        assert_eq!(report.served, 1, "in-flight request must be served");
    });

    let reply = in_flight_reply.expect("reply");
    assert!(
        reply.starts_with("HTTP/1.1 200 OK"),
        "in-flight request must complete during drain; got: {reply}"
    );
    // serve() has returned, so the listener is gone: new connections
    // must be refused (or reset), not silently queued.
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-drain connections must be refused"
    );
}

/// Evicting a document *between* a client's requests mid-traffic
/// yields the typed 404 on the next request, never a panic or a
/// connection reset (the DELETE and the queries race freely here).
#[test]
fn eviction_mid_traffic_is_a_typed_error() {
    let store = test_store();
    let (outcomes, _report) = with_store_server(Arc::clone(&store), test_config(), |addr| {
        // Warm the document, then race queries against an eviction.
        let (status, body) = put_doc(addr, "dblp", "");
        assert_eq!(status, "HTTP/1.1 200 OK", "body: {body}");
        std::thread::scope(|scope| {
            let queriers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        (0..6)
                            .map(|_| post_query_on(addr, "dblp", "Return every year."))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let evictor = scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                delete_doc(addr, "dblp")
            });
            let outcomes: Vec<(String, String)> = queriers
                .into_iter()
                .flat_map(|q| q.join().expect("querier"))
                .collect();
            let (status, body) = evictor.join().expect("evictor");
            assert_eq!(status, "HTTP/1.1 200 OK", "evict failed: {body}");
            outcomes
        })
    });
    assert_eq!(outcomes.len(), 24, "every request got a response");
    for (status, body) in &outcomes {
        // Before the eviction: 200s. After: typed 404s. Nothing else.
        assert!(
            status == "HTTP/1.1 200 OK"
                || (status == "HTTP/1.1 404 Not Found"
                    && body.contains("\"code\":\"store.unknown_document\"")),
            "unexpected outcome: {status} {body}"
        );
    }
}

/// Keep-alive contract: one connection, three pipelined requests
/// written back-to-back, three responses read back strictly in order,
/// each byte-identical in substance to the in-process oracle.
#[test]
fn keepalive_pipelines_in_order_and_matches_oracle() {
    let q1 = "Return every title.";
    let q2 = "Return every publisher.";
    let oracle = Nalix::new(xmldb::datasets::bib::bib());
    let expected1 = oracle.ask(q1).expect("oracle q1");
    let expected2 = oracle.ask(q2).expect("oracle q2");

    let ((r1, r2, r3), report) = with_server(test_config(), |addr| {
        let mut client = KeepAliveClient::connect(addr);
        // All three requests hit the socket before any response is
        // read: the loop must answer them one at a time, in order.
        let pipelined = format!(
            "{}{}GET /health HTTP/1.1\r\n\r\n",
            query_request(q1),
            query_request(q2)
        );
        client.write_raw(&pipelined);
        let r1 = client.read_one();
        let r2 = client.read_one();
        let r3 = client.read_one();
        (r1, r2, r3)
    });

    assert_eq!(r1.status_line, "HTTP/1.1 200 OK", "body: {}", r1.body_str());
    assert_eq!(answers_of(&r1.body_str()), expected1, "first answer");
    assert_eq!(r2.status_line, "HTTP/1.1 200 OK", "body: {}", r2.body_str());
    assert_eq!(answers_of(&r2.body_str()), expected2, "second answer");
    assert_eq!(r3.status_line, "HTTP/1.1 200 OK");
    assert!(r3.body_str().contains("\"status\":\"ok\""));
    // Keep-alive responses advertise it.
    assert_eq!(r1.header("connection"), Some("keep-alive"));

    assert_eq!(report.served, 3, "one connection, three requests");
    assert_eq!(report.shed, 0);
    assert_eq!(report.snapshot.counter(obs::Counter::HttpRequests), 3);
    assert_eq!(
        report.snapshot.counter(obs::Counter::HttpKeepaliveReuse),
        2,
        "requests 2 and 3 reused the connection"
    );
}

/// `Connection: close` is honored: the response carries it back and
/// the server closes cleanly right after.
#[test]
fn connection_close_is_honored() {
    let (_, report) = with_server(test_config(), |addr| {
        let mut client = KeepAliveClient::connect(addr);
        client.write_raw("GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
        let response = client.read_one();
        assert_eq!(response.status_line, "HTTP/1.1 200 OK");
        assert_eq!(response.header("connection"), Some("close"));
        assert!(client.at_eof(), "server must close after the response");
    });
    assert_eq!(report.served, 1);
    assert_eq!(
        report.snapshot.counter(obs::Counter::HttpKeepaliveReuse),
        0,
        "a closed connection is never reused"
    );
}

/// Idle keep-alive connections are closed by the server: silently
/// (no response bytes) when nothing was sent, and after the idle
/// timeout when a previous exchange completed.
#[test]
fn idle_keepalive_connections_time_out() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..test_config()
    };
    let (_, report) = with_server(config, |addr| {
        // An exchanged-then-idle connection: closed after the timeout.
        let mut exchanged = KeepAliveClient::connect(addr);
        exchanged.write_raw("GET /health HTTP/1.1\r\n\r\n");
        let response = exchanged.read_one();
        assert_eq!(response.status_line, "HTTP/1.1 200 OK");
        // A connection that never sends a byte: also reaped, silently.
        let mut silent = KeepAliveClient::connect(addr);
        assert!(
            exchanged.at_eof(),
            "idle connection must be closed by the server"
        );
        assert!(
            silent.at_eof(),
            "zero-byte connection must be closed silently"
        );
    });
    assert_eq!(report.served, 1);
    assert_eq!(
        report.snapshot.counter(obs::Counter::HttpTimeouts),
        0,
        "idle reaping is not a 408"
    );
}

/// Overload during keep-alive: a connection that already completed an
/// exchange gets `503` + `Retry-After` on its next request when the
/// queue is full, and is then closed.
#[test]
fn shed_during_keepalive_answers_503_and_closes() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        debug_handler_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    };
    let (_, report) = with_server(config, |addr| {
        // Establish a keep-alive connection with one exchange while
        // the server is idle.
        let mut client = KeepAliveClient::connect(addr);
        client.write_raw("GET /health HTTP/1.1\r\n\r\n");
        assert_eq!(client.read_one().status_line, "HTTP/1.1 200 OK");
        // Saturate: one request in flight (slow worker), one queued.
        let mut busy = KeepAliveClient::connect(addr);
        busy.write_raw("GET /health HTTP/1.1\r\n\r\n");
        std::thread::sleep(Duration::from_millis(80));
        let mut queued = KeepAliveClient::connect(addr);
        queued.write_raw("GET /health HTTP/1.1\r\n\r\n");
        std::thread::sleep(Duration::from_millis(80));
        // The keep-alive connection's next request finds the queue
        // full.
        client.write_raw("GET /health HTTP/1.1\r\n\r\n");
        let shed = client.read_one();
        assert_eq!(shed.status(), 503, "reply: {}", shed.status_line);
        assert_eq!(shed.header("retry-after"), Some("1"));
        assert!(shed.body_str().contains("\"code\":\"http.overloaded\""));
        assert!(client.at_eof(), "shed closes the connection");
        // The admitted requests still complete.
        assert_eq!(busy.read_one().status_line, "HTTP/1.1 200 OK");
        assert_eq!(queued.read_one().status_line, "HTTP/1.1 200 OK");
    });
    assert_eq!(report.served, 3, "admitted requests all served");
    assert_eq!(report.shed, 1);
}

/// A request that stalls half-received is answered with `408 Request
/// Timeout` (it sent bytes, so it gets an answer) and the connection
/// closes; the timeout is counted.
#[test]
fn stalled_request_gets_408() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..test_config()
    };
    let (_, report) = with_server(config, |addr| {
        let mut client = KeepAliveClient::connect(addr);
        // Headers promise 10 body bytes; only 3 ever arrive.
        client.write_raw("POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        let response = client.read_one();
        assert_eq!(response.status_line, "HTTP/1.1 408 Request Timeout");
        assert!(response
            .body_str()
            .contains("\"code\":\"http.request_timeout\""));
        assert!(client.at_eof(), "408 closes the connection");
    });
    assert_eq!(report.served, 0, "nothing was admitted");
    assert_eq!(report.snapshot.counter(obs::Counter::HttpTimeouts), 1);
}

/// The per-connection request cap: the final allowed response says
/// `Connection: close` and the server closes, bounding how long one
/// client can pin a connection slot.
#[test]
fn max_requests_per_conn_is_enforced() {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..test_config()
    };
    let (_, report) = with_server(config, |addr| {
        let mut client = KeepAliveClient::connect(addr);
        client.write_raw("GET /health HTTP/1.1\r\n\r\n");
        let first = client.read_one();
        assert_eq!(first.header("connection"), Some("keep-alive"));
        client.write_raw("GET /health HTTP/1.1\r\n\r\n");
        let second = client.read_one();
        assert_eq!(second.status_line, "HTTP/1.1 200 OK");
        assert_eq!(second.header("connection"), Some("close"));
        assert!(client.at_eof(), "capped connection is closed");
    });
    assert_eq!(report.served, 2);
}

// ---------------------------------------------------------------------------
// Conversational sessions (docs/SESSIONS.md)
// ---------------------------------------------------------------------------

fn post_session_query(addr: SocketAddr, session: &str, question: &str) -> (String, String) {
    let body = format!("{{\"question\": {question:?}, \"session\": {session:?}}}");
    post(addr, "/query", &body)
}

fn post_session_query_on(
    addr: SocketAddr,
    doc: &str,
    session: &str,
    question: &str,
) -> (String, String) {
    let body =
        format!("{{\"question\": {question:?}, \"doc\": {doc:?}, \"session\": {session:?}}}");
    post(addr, "/query", &body)
}

fn error_field<'a>(body: &'a Json, field: &str) -> Option<&'a Json> {
    body.get("error").and_then(|e| e.get(field))
}

/// The session contract end to end: a three-turn dialogue on one
/// keep-alive connection, where each follow-up's answers are
/// bit-identical to the stateless stacked-constraint oracle sentence.
#[test]
fn session_dialogue_resolves_follow_ups_against_the_oracle() {
    let oracle = Nalix::new(xmldb::datasets::bib::bib());
    let expected2 = oracle
        .answer_full(
            "List all the books written by Stevens published after 1993.",
            &EvalBudget::default(),
        )
        .expect("oracle turn 2")
        .values;
    let expected3 = oracle
        .answer_full(
            "List all the books written by Suciu published after 1993.",
            &EvalBudget::default(),
        )
        .expect("oracle turn 3")
        .values;

    let (bodies, report) = with_server(test_config(), |addr| {
        let mut client = KeepAliveClient::connect(addr);
        let turns = [
            "List all the books written by Stevens.",
            "Of those, which were published after 1993?",
            "What about by Suciu?",
        ];
        turns
            .iter()
            .map(|q| {
                let body = format!("{{\"question\": {q:?}, \"session\": \"dlg\"}}");
                client.write_raw(&format!(
                    "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                ));
                let resp = client.read_one();
                (resp.status_line.clone(), resp.body_str())
            })
            .collect::<Vec<_>>()
    });

    for (i, (status, body)) in bodies.iter().enumerate() {
        assert_eq!(status, "HTTP/1.1 200 OK", "turn {}: {body}", i + 1);
        let parsed = Json::parse(body).expect("JSON body");
        assert_eq!(parsed.get("session").and_then(Json::as_str), Some("dlg"));
        assert_eq!(
            parsed.get("turn").and_then(Json::as_u64),
            Some(i as u64 + 1),
            "turn number echoes the dialogue position"
        );
    }
    assert_eq!(answers_of(&bodies[1].1), expected2);
    assert_eq!(answers_of(&bodies[2].1), expected3);
    assert!(bodies[2].1.contains("Data on the Web"), "{}", bodies[2].1);
    // Resolved turns warn the user what the reference was taken to
    // mean (the sessions counterpart of the pronoun warning).
    assert!(bodies[1].1.contains("previous question"), "{}", bodies[1].1);

    assert!(report.snapshot.counter(obs::Counter::SessionCreates) >= 1);
    assert!(report.snapshot.counter(obs::Counter::SessionHits) >= 2);
    assert_eq!(report.snapshot.counter(obs::Counter::AnaphoraResolved), 2);
}

/// The same follow-up with no session id gets the typed
/// missing-context error (with a rephrasing suggestion), not an opaque
/// parse rejection.
#[test]
fn follow_up_without_a_session_is_a_typed_missing_context_error() {
    let (out, _report) = with_server(test_config(), |addr| {
        post_query(addr, "Of those, which were published after 1993?")
    });
    let (status, body) = out;
    assert_eq!(status, "HTTP/1.1 422 Unprocessable Entity", "body: {body}");
    let parsed = Json::parse(&body).expect("JSON body");
    assert_eq!(
        error_field(&parsed, "code").and_then(Json::as_str),
        Some("session.missing_context")
    );
    let suggestion = error_field(&parsed, "suggestion")
        .and_then(Json::as_str)
        .expect("suggestion");
    assert!(!suggestion.is_empty());
}

/// An idle session past the TTL is gone: the next follow-up gets
/// `410 Gone` with the typed expired-context error, and the expiry is
/// visible on the `session_expired` counter.
#[test]
fn idle_session_expires_and_the_follow_up_is_gone() {
    let config = ServerConfig {
        session_ttl: Duration::from_millis(1),
        ..test_config()
    };
    let (out, report) = with_server(config, |addr| {
        let first = post_session_query(addr, "ttl", "List all the books written by Stevens.");
        std::thread::sleep(Duration::from_millis(30));
        let second = post_session_query(addr, "ttl", "Of those, which were published after 1993?");
        (first, second)
    });
    let (first, second) = out;
    assert_eq!(first.0, "HTTP/1.1 200 OK", "body: {}", first.1);
    assert_eq!(second.0, "HTTP/1.1 410 Gone", "body: {}", second.1);
    assert!(
        second.1.contains("\"code\":\"session.expired\""),
        "{}",
        second.1
    );
    assert!(report.snapshot.counter(obs::Counter::SessionExpired) >= 1);
}

/// Hot-reloading the pinned document retires the conversation: the
/// session pins a (name, generation) identity, never a snapshot, so a
/// follow-up after the reload is a typed expired-context error and a
/// fresh self-contained question starts a new conversation on the new
/// generation.
#[test]
fn hot_reload_retires_the_session_context() {
    let (out, _report) = with_server(test_config(), |addr| {
        let (status, body) = put_doc(addr, "movies", "");
        assert_eq!(status, "HTTP/1.1 200 OK", "load: {body}");
        let first = post_session_query_on(
            addr,
            "movies",
            "reload",
            "Find all the movies directed by Ron Howard.",
        );
        let (status, body) = put_doc(addr, "movies", "");
        assert_eq!(status, "HTTP/1.1 200 OK", "reload: {body}");
        let second = post_session_query_on(
            addr,
            "movies",
            "reload",
            "Of those, which were made after 1990?",
        );
        let third = post_session_query_on(
            addr,
            "movies",
            "reload",
            "Find all the movies directed by Ron Howard.",
        );
        (first, second, third)
    });
    let (first, second, third) = out;
    assert_eq!(first.0, "HTTP/1.1 200 OK", "body: {}", first.1);
    assert_eq!(second.0, "HTTP/1.1 410 Gone", "body: {}", second.1);
    assert!(
        second.1.contains("\"code\":\"session.expired\"") && second.1.contains("reloaded"),
        "{}",
        second.1
    );
    assert_eq!(third.0, "HTTP/1.1 200 OK", "body: {}", third.1);
    let parsed = Json::parse(&third.1).expect("JSON body");
    assert_eq!(
        parsed.get("turn").and_then(Json::as_u64),
        Some(1),
        "the retired conversation restarted from turn 1"
    );
    assert_eq!(
        parsed.get("generation").and_then(Json::as_u64),
        Some(2),
        "the new conversation is on the reloaded generation"
    );
}

/// Evicting the pinned document retires the conversation too: with no
/// explicit `"doc"`, the session's pin names a document that is no
/// longer loaded, and the follow-up is a typed expired-context error
/// (not a 404 about a document the user never mentioned).
#[test]
fn evicting_the_pinned_document_retires_the_session() {
    let (out, _report) = with_server(test_config(), |addr| {
        let (status, body) = put_doc(addr, "movies", "");
        assert_eq!(status, "HTTP/1.1 200 OK", "load: {body}");
        let first = post_session_query_on(
            addr,
            "movies",
            "evict",
            "Find all the movies directed by Ron Howard.",
        );
        let (status, body) = delete_doc(addr, "movies");
        assert_eq!(status, "HTTP/1.1 200 OK", "evict: {body}");
        let second = post_session_query(addr, "evict", "Of those, which were made after 1990?");
        (first, second)
    });
    let (first, second) = out;
    assert_eq!(first.0, "HTTP/1.1 200 OK", "body: {}", first.1);
    assert_eq!(second.0, "HTTP/1.1 410 Gone", "body: {}", second.1);
    assert!(
        second.1.contains("\"code\":\"session.expired\"") && second.1.contains("no longer loaded"),
        "{}",
        second.1
    );
}

/// The session store is LRU-bounded by `session_capacity`: the least
/// recently used conversation is evicted first, and a recently touched
/// one survives with its full context.
#[test]
fn session_store_is_lru_bounded() {
    let config = ServerConfig {
        session_capacity: 2,
        ..test_config()
    };
    let opener = "List all the books written by Stevens.";
    let (out, _report) = with_server(config, |addr| {
        let a1 = post_session_query(addr, "alice", opener);
        let b1 = post_session_query(addr, "bob", opener);
        // Touch alice so bob is the least recently used...
        let a2 = post_session_query(addr, "alice", "Of those, which were published after 1993?");
        // ...and carol's arrival evicts bob.
        let c1 = post_session_query(addr, "carol", opener);
        let b2 = post_session_query(addr, "bob", "Of those, which were published after 1993?");
        let a3 = post_session_query(addr, "alice", "What about by Suciu?");
        (a1, b1, a2, c1, b2, a3)
    });
    let (a1, b1, a2, c1, b2, a3) = out;
    for (label, (status, body)) in [("a1", &a1), ("b1", &b1), ("a2", &a2), ("c1", &c1)] {
        assert_eq!(status, "HTTP/1.1 200 OK", "{label}: {body}");
    }
    assert_eq!(b2.0, "HTTP/1.1 410 Gone", "body: {}", b2.1);
    assert!(b2.1.contains("\"code\":\"session.expired\""), "{}", b2.1);
    // Alice's two-turn context survived the churn: the third turn still
    // resolves against it.
    assert_eq!(a3.0, "HTTP/1.1 200 OK", "body: {}", a3.1);
    assert!(a3.1.contains("Data on the Web"), "{}", a3.1);
    let parsed = Json::parse(&a3.1).expect("JSON body");
    assert_eq!(parsed.get("turn").and_then(Json::as_u64), Some(3));
}

// ---------------------------------------------------------------------------
// Writable documents (docs/UPDATES.md)
// ---------------------------------------------------------------------------

/// The write-path round trip over real sockets: POST an edit batch,
/// watch the answer change, the generation advance, and the update
/// counters land on `/metrics` — while a pipeline pinned before the
/// update keeps answering from its snapshot, and a stale
/// `expected_generation` is answered with a typed `409`.
#[test]
fn update_round_trip_changes_answers_and_advances_generation() {
    let store = test_store();
    let q = "Find all the movies directed by Ron Howard.";
    let (out, report) = with_store_server(Arc::clone(&store), test_config(), |addr| {
        let before = post_query_on(addr, "movies", q);
        // Pin the pre-update pipeline exactly as an in-flight query
        // would, and find the pre rank of one Ron Howard director's
        // text node on that snapshot.
        let pinned = store.get(Some("movies")).expect("movies is resident");
        let doc = pinned.doc();
        let director = doc
            .nodes_labeled("director")
            .iter()
            .copied()
            .find(|&d| doc.string_value(d) == "Ron Howard")
            .expect("a Ron Howard movie exists");
        let text_pre = doc.pre(doc.first_child(director).expect("director has text"));
        let generation = pinned.generation();

        let edit = format!(
            "{{\"edits\": [{{\"op\": \"replace_value\", \"target\": {text_pre}, \
             \"value\": \"Rob Reiner\"}}], \"expected_generation\": {generation}}}"
        );
        let update = post(addr, "/docs/movies/update", &edit);
        let after = post_query_on(addr, "movies", q);
        let stale = post(addr, "/docs/movies/update", &edit); // generation moved on
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        (before, pinned, generation, update, after, stale, metrics)
    });
    let (before, pinned, generation, update, after, stale, metrics) = out;

    assert_eq!(before.0, "HTTP/1.1 200 OK", "body: {}", before.1);
    let baseline = answers_of(&before.1);
    assert!(!baseline.is_empty());

    assert_eq!(update.0, "HTTP/1.1 200 OK", "body: {}", update.1);
    let parsed = Json::parse(&update.1).expect("update JSON");
    assert_eq!(
        parsed.get("generation").and_then(Json::as_u64),
        Some(generation + 1),
        "the response echoes the successor generation"
    );
    assert_eq!(
        parsed.get("strategy").and_then(Json::as_str),
        Some("patch"),
        "a one-edit batch must take the incremental path"
    );

    assert_eq!(after.0, "HTTP/1.1 200 OK", "body: {}", after.1);
    let post_update = answers_of(&after.1);
    assert_eq!(
        post_update.len(),
        baseline.len() - 1,
        "the rewritten movie left the result set"
    );
    assert_eq!(
        Json::parse(&after.1)
            .expect("query JSON")
            .get("generation")
            .and_then(Json::as_u64),
        Some(generation + 1),
        "post-commit queries see the new generation"
    );

    // Snapshot isolation: the pipeline pinned before the update still
    // answers bit-identically to the pre-update wire answer.
    let pinned_answers = pinned.nalix().ask(q).expect("pinned snapshot answers");
    assert_eq!(pinned_answers, baseline);

    assert_eq!(stale.0, "HTTP/1.1 409 Conflict", "body: {}", stale.1);
    assert!(
        stale.1.contains("\"code\":\"store.conflict\""),
        "body: {}",
        stale.1
    );

    // The incremental-maintenance contract on the metrics surface:
    // updates happened, patches happened, rebuilds did not.
    assert!(
        metrics.1.contains("nalix_doc_updates_total 1"),
        "metrics: {}",
        metrics.1
    );
    assert!(
        metrics.1.contains("nalix_index_patches_total 1"),
        "metrics: {}",
        metrics.1
    );
    assert!(
        metrics.1.contains("nalix_index_rebuilds_total 0"),
        "metrics: {}",
        metrics.1
    );
    assert_eq!(report.snapshot.counter(obs::Counter::UpdateConflicts), 1);
}

/// Malformed update requests map to typed errors, not panics: bad
/// JSON, a missing edits array, an unknown op, an out-of-range pre
/// rank, and an unknown document.
#[test]
fn update_rejections_are_typed() {
    let (out, _report) = with_server(test_config(), |addr| {
        (
            post(addr, "/docs/movies/update", "not json"),
            post(addr, "/docs/movies/update", "{}"),
            post(
                addr,
                "/docs/movies/update",
                r#"{"edits": [{"op": "transmogrify", "target": 1}]}"#,
            ),
            post(
                addr,
                "/docs/movies/update",
                r#"{"edits": [{"op": "delete_subtree", "target": 9999999}]}"#,
            ),
            post(
                addr,
                "/docs/ghost/update",
                r#"{"edits": [{"op": "delete_subtree", "target": 1}]}"#,
            ),
            send(addr, "GET /docs/movies/update HTTP/1.1\r\n\r\n"),
        )
    });
    let (bad_json, no_edits, bad_op, bad_rank, ghost, wrong_method) = out;
    assert_eq!(bad_json.0, "HTTP/1.1 400 Bad Request");
    assert_eq!(no_edits.0, "HTTP/1.1 400 Bad Request");
    assert!(
        no_edits.1.contains("missing \\\"edits\\\""),
        "{}",
        no_edits.1
    );
    assert_eq!(bad_op.0, "HTTP/1.1 400 Bad Request");
    assert!(bad_op.1.contains("unknown op"), "{}", bad_op.1);
    assert_eq!(bad_rank.0, "HTTP/1.1 400 Bad Request");
    assert!(
        bad_rank.1.contains("\"code\":\"store.update_rejected\""),
        "{}",
        bad_rank.1
    );
    assert_eq!(ghost.0, "HTTP/1.1 404 Not Found");
    assert_eq!(wrong_method.0, "HTTP/1.1 405 Method Not Allowed");
    assert!(wrong_method.1.contains("use POST"), "{}", wrong_method.1);
}

/// A chunked request body decodes through the real event loop: the
/// same query sent with `Content-Length` and with
/// `Transfer-Encoding: chunked` answers identically.
#[test]
fn chunked_request_bodies_decode_over_the_wire() {
    let (out, _report) = with_server(test_config(), |addr| {
        let plain = post_query(addr, "List all the books written by Stevens.");
        let body = r#"{"question": "List all the books written by Stevens."}"#;
        let mut chunked = String::from(
            "POST /query HTTP/1.1\r\nContent-Type: application/json\r\n\
             Transfer-Encoding: chunked\r\n\r\n",
        );
        // Split the body into two chunks to exercise reassembly.
        let (a, b) = body.split_at(17);
        for part in [a, b] {
            chunked.push_str(&format!("{:x}\r\n{part}\r\n", part.len()));
        }
        chunked.push_str("0\r\n\r\n");
        (plain, send(addr, &chunked))
    });
    let (plain, chunked) = out;
    assert_eq!(plain.0, "HTTP/1.1 200 OK", "body: {}", plain.1);
    assert_eq!(chunked.0, "HTTP/1.1 200 OK", "body: {}", chunked.1);
    assert_eq!(answers_of(&chunked.1), answers_of(&plain.1));
}

/// An update retires a session pinned to the pre-update generation,
/// exactly as a hot reload does: the session pins a `(name,
/// generation)` identity, so the next follow-up is a typed `410` and
/// a fresh question simply starts a new context on the successor.
#[test]
fn update_retires_sessions_pinned_to_the_old_generation() {
    let store = test_store();
    let (out, _report) = with_store_server(Arc::clone(&store), test_config(), |addr| {
        let first = post_session_query_on(
            addr,
            "movies",
            "upd",
            "Find all the movies directed by Ron Howard.",
        );
        // Any committed edit bumps the generation under the session.
        let pinned = store.get(Some("movies")).expect("resident");
        let movie_pre = pinned.doc().pre(
            pinned
                .doc()
                .nodes_labeled("movie")
                .first()
                .copied()
                .expect("movies exist"),
        );
        let update = post(
            addr,
            "/docs/movies/update",
            &format!(
                "{{\"edits\": [{{\"op\": \"insert_child\", \"parent\": {movie_pre}, \
                 \"node\": {{\"kind\": \"leaf\", \"label\": \"note\", \"text\": \"edited\"}}}}]}}"
            ),
        );
        let follow = post_session_query_on(
            addr,
            "movies",
            "upd",
            "Of those, which were made after 1990?",
        );
        (first, update, follow)
    });
    let (first, update, follow) = out;
    assert_eq!(first.0, "HTTP/1.1 200 OK", "body: {}", first.1);
    assert_eq!(update.0, "HTTP/1.1 200 OK", "body: {}", update.1);
    assert_eq!(follow.0, "HTTP/1.1 410 Gone", "body: {}", follow.1);
    assert!(
        follow.1.contains("\"code\":\"session.expired\""),
        "body: {}",
        follow.1
    );
}

/// A mutation phrased in natural language is never applied: the typed
/// `update.requires_confirmation` error (422) points the client at the
/// explicit edit API, and the document keeps answering unchanged.
#[test]
fn natural_language_mutations_are_refused() {
    let (out, _report) = with_server(test_config(), |addr| {
        (
            post_query(addr, "Delete all the books written by Stevens."),
            post_query(addr, "List all the books written by Stevens."),
        )
    });
    let (refused, allowed) = out;
    assert_eq!(
        refused.0, "HTTP/1.1 422 Unprocessable Entity",
        "body: {}",
        refused.1
    );
    assert!(
        refused
            .1
            .contains("\"code\":\"update.requires_confirmation\""),
        "body: {}",
        refused.1
    );
    assert!(refused.1.contains("/update"), "body: {}", refused.1);
    assert_eq!(allowed.0, "HTTP/1.1 200 OK", "body: {}", allowed.1);
}

/// The `backend` knob on `POST /query`: `"sql"` answers over the
/// relational shredding with the compiled SQL echoed, agrees with the
/// xquery backend on the answer set, survives a hot reload and an
/// update commit (the shredding is rebuilt / patched and the new
/// generation echoed), and an unknown backend is the typed
/// `backend.unknown` 400.
#[test]
fn sql_backend_round_trips_and_survives_reload_and_update() {
    let store = test_store();
    let q = "Find all the movies directed by Ron Howard.";
    let body_on = |backend: &str| {
        format!("{{\"question\": {q:?}, \"doc\": \"movies\", \"backend\": {backend:?}}}")
    };
    let (out, _report) = with_store_server(Arc::clone(&store), test_config(), |addr| {
        let via_xquery = post(addr, "/query", &body_on("xquery"));
        let via_sql = post(addr, "/query", &body_on("SQL")); // case-blind
        let unknown = post(addr, "/query", &body_on("postgres"));

        // Hot reload: a fresh pipeline (and a fresh shredding on next
        // SQL touch) behind the same name.
        let reload = put_doc(addr, "movies", "movies");
        let after_reload = post(addr, "/query", &body_on("sql"));

        // Update commit: patch one director away, then ask again on
        // the SQL backend against the patched shredding.
        let pinned = store.get(Some("movies")).expect("movies is resident");
        let doc = pinned.doc();
        let director = doc
            .nodes_labeled("director")
            .iter()
            .copied()
            .find(|&d| doc.string_value(d) == "Ron Howard")
            .expect("a Ron Howard movie exists");
        let text_pre = doc.pre(doc.first_child(director).expect("director has text"));
        let generation = pinned.generation();
        let edit = format!(
            "{{\"edits\": [{{\"op\": \"replace_value\", \"target\": {text_pre}, \
             \"value\": \"Rob Reiner\"}}], \"expected_generation\": {generation}}}"
        );
        let update = post(addr, "/docs/movies/update", &edit);
        let after_update = post(addr, "/query", &body_on("sql"));
        let batch = post(
            addr,
            "/batch",
            &format!("{{\"questions\": [{q:?}], \"doc\": \"movies\", \"backend\": \"sql\"}}"),
        );
        (
            via_xquery,
            via_sql,
            unknown,
            reload,
            after_reload,
            generation,
            update,
            after_update,
            batch,
        )
    });
    let (
        via_xquery,
        via_sql,
        unknown,
        reload,
        after_reload,
        generation,
        update,
        after_update,
        batch,
    ) = out;

    assert_eq!(via_xquery.0, "HTTP/1.1 200 OK", "body: {}", via_xquery.1);
    assert_eq!(via_sql.0, "HTTP/1.1 200 OK", "body: {}", via_sql.1);
    let mut a = answers_of(&via_xquery.1);
    let mut b = answers_of(&via_sql.1);
    assert!(!a.is_empty());
    a.sort();
    b.sort();
    assert_eq!(a, b, "the two backends agree on the answer set");
    let sql_body = Json::parse(&via_sql.1).expect("sql JSON");
    assert_eq!(sql_body.get("backend").and_then(Json::as_str), Some("sql"));
    assert!(
        sql_body
            .get("xquery")
            .and_then(Json::as_str)
            .is_some_and(|t| t.starts_with("SELECT")),
        "body: {}",
        via_sql.1
    );
    assert_eq!(
        Json::parse(&via_xquery.1)
            .expect("xquery JSON")
            .get("backend")
            .and_then(Json::as_str),
        Some("xquery")
    );

    assert_eq!(unknown.0, "HTTP/1.1 400 Bad Request", "body: {}", unknown.1);
    assert!(
        unknown.1.contains("\"code\":\"backend.unknown\""),
        "body: {}",
        unknown.1
    );

    assert_eq!(reload.0, "HTTP/1.1 200 OK", "body: {}", reload.1);
    assert_eq!(
        after_reload.0, "HTTP/1.1 200 OK",
        "body: {}",
        after_reload.1
    );
    let mut c = answers_of(&after_reload.1);
    c.sort();
    assert_eq!(
        c, a,
        "the SQL backend answers identically after a hot reload"
    );

    assert_eq!(update.0, "HTTP/1.1 200 OK", "body: {}", update.1);
    assert_eq!(
        after_update.0, "HTTP/1.1 200 OK",
        "body: {}",
        after_update.1
    );
    let after_body = Json::parse(&after_update.1).expect("post-update JSON");
    assert_eq!(
        after_body.get("generation").and_then(Json::as_u64),
        Some(generation + 1),
        "post-commit SQL queries echo the successor generation"
    );
    assert_eq!(
        answers_of(&after_update.1).len(),
        a.len() - 1,
        "the rewritten movie left the SQL backend's result set too"
    );

    assert_eq!(batch.0, "HTTP/1.1 200 OK", "body: {}", batch.1);
    let batch_body = Json::parse(&batch.1).expect("batch JSON");
    assert_eq!(
        batch_body.get("backend").and_then(Json::as_str),
        Some("sql")
    );
}
