//! The enumerated vocabulary sets (paper Tables 1–2).
//!
//! "Enumerated sets of phrases (enum sets) are the real-world 'knowledge
//! base' for the system. In NaLIX, we have kept these small — each set
//! has about a dozen elements." The lookups here map a parse-tree node's
//! lemma to its token or marker classification.

use crate::token::{OpSem, QtKind, SortDir};
use xquery::AggFunc;

/// Command tokens (CMT): "Top main verb or wh-phrase of parse tree,
/// from an enum set of words and phrases."
pub const COMMAND_TOKENS: [&str; 12] = [
    "return", "find", "list", "show", "display", "give", "get", "retrieve", "tell", "what",
    "which", "who",
];

/// Is this lemma a command token?
pub fn command_token(lemma: &str) -> bool {
    COMMAND_TOKENS.contains(&lemma)
}

/// Order-by tokens (OBT) with their sort direction.
pub fn order_by_token(lemma: &str) -> Option<SortDir> {
    match lemma {
        "sorted by" | "in alphabetical order" | "in order of" => Some(SortDir::Asc),
        "in descending order" => Some(SortDir::Desc),
        _ => None,
    }
}

/// Function tokens (FT): "A word or phrase from an enum set of
/// adjectives and noun phrases", mapped to their aggregate function.
pub fn function_token(lemma: &str) -> Option<AggFunc> {
    match lemma {
        "the number of" | "the total number of" => Some(AggFunc::Count),
        "lowest" | "smallest" | "least" | "minimum" | "earliest" | "cheapest" | "fewest" => {
            Some(AggFunc::Min)
        }
        "highest" | "largest" | "greatest" | "maximum" | "latest" | "most" => Some(AggFunc::Max),
        "total" => Some(AggFunc::Sum),
        "average" => Some(AggFunc::Avg),
        _ => None,
    }
}

/// Operator tokens (OT): "A phrase from an enum set of preposition
/// phrases" (plus copulas and comparison verbs), mapped to semantics.
pub fn operator_token(lemma: &str) -> Option<OpSem> {
    match lemma {
        "be" | "the same as" | "be the same as" | "equal to" | "be equal to" => Some(OpSem::Eq),
        "greater than" | "more than" | "larger than" | "be greater than" | "be more than"
        | "be larger than" => Some(OpSem::Gt),
        "less than" | "fewer than" | "smaller than" | "be less than" | "be fewer than"
        | "be smaller than" => Some(OpSem::Lt),
        "at least" | "be at least" => Some(OpSem::Ge),
        "at most" | "be at most" => Some(OpSem::Le),
        "after" | "later than" | "be later than" | "be after" => Some(OpSem::Gt),
        "before" | "earlier than" | "be earlier than" | "be before" => Some(OpSem::Lt),
        "contain" | "include" => Some(OpSem::Contains),
        "start with" => Some(OpSem::StartsWith),
        "end with" => Some(OpSem::EndsWith),
        _ => None,
    }
}

/// Quantifier tokens (QT): "A word from an enum set of adjectives
/// serving as determiners."
pub fn quantifier_token(lemma: &str) -> Option<QtKind> {
    match lemma {
        "every" | "each" | "all" => Some(QtKind::Every),
        "any" | "some" => Some(QtKind::Some),
        _ => None,
    }
}

/// Connection markers (CM): "A preposition from an enumerated set, or
/// non-token main verb." The participles/verbs the parser produces
/// ("directed", "published", "have") are accepted via the caller (any
/// verb lemma that is not an operator token is a CM).
pub fn connection_marker(lemma: &str) -> bool {
    matches!(
        lemma,
        "of" | "by" | "with" | "in" | "on" | "for" | "from" | "about" | "at" | "to"
    )
}

/// Modifier markers (MM): "An adjective as determiner or a numeral as
/// predeterminer or postdeterminer."
pub fn modifier_marker(lemma: &str) -> bool {
    matches!(
        lemma,
        "first" | "second" | "third" | "last" | "new" | "same" | "different" | "alphabetical"
    )
}

/// General markers (GM): "Auxiliary verbs, articles."
pub fn general_marker(lemma: &str) -> bool {
    matches!(
        lemma,
        "the" | "a" | "an" | "do" | "have" | "be" | "can" | "will" | "me"
    )
}

/// Suggested rephrasings for known-problematic terms, used in error
/// feedback (the paper's example: "as" → "the same as").
pub fn suggestion_for(lemma: &str) -> Option<&'static str> {
    match lemma {
        "as" => Some("the same as"),
        "than" => Some("greater than\" or \"less than"),
        "like" => Some("contain"),
        "over" => Some("greater than"),
        "under" => Some("less than"),
        "between" => Some("greater than\" combined with \"less than"),
        "without" => Some("not"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_tokens_cover_imperatives_and_wh() {
        assert!(command_token("return"));
        assert!(command_token("what"));
        assert!(!command_token("movie"));
    }

    #[test]
    fn function_tokens_map_to_aggregates() {
        assert_eq!(function_token("the number of"), Some(AggFunc::Count));
        assert_eq!(function_token("lowest"), Some(AggFunc::Min));
        assert_eq!(function_token("latest"), Some(AggFunc::Max));
        assert_eq!(function_token("total"), Some(AggFunc::Sum));
        assert_eq!(function_token("average"), Some(AggFunc::Avg));
        assert_eq!(function_token("big"), None);
    }

    #[test]
    fn operator_tokens_map_to_semantics() {
        assert_eq!(operator_token("be the same as"), Some(OpSem::Eq));
        assert_eq!(operator_token("after"), Some(OpSem::Gt));
        assert_eq!(operator_token("be at least"), Some(OpSem::Ge));
        assert_eq!(operator_token("contain"), Some(OpSem::Contains));
        assert_eq!(operator_token("as"), None);
    }

    #[test]
    fn quantifiers() {
        assert_eq!(quantifier_token("every"), Some(QtKind::Every));
        assert_eq!(quantifier_token("some"), Some(QtKind::Some));
        assert_eq!(quantifier_token("the"), None);
    }

    #[test]
    fn markers() {
        assert!(connection_marker("of"));
        assert!(!connection_marker("as"));
        assert!(modifier_marker("first"));
        assert!(general_marker("the"));
    }

    #[test]
    fn suggestions_cover_the_papers_example() {
        assert_eq!(suggestion_for("as"), Some("the same as"));
        assert!(suggestion_for("of").is_none());
    }

    #[test]
    fn every_function_token_synonym_classifies() {
        for (word, func) in [
            ("the number of", AggFunc::Count),
            ("the total number of", AggFunc::Count),
            ("lowest", AggFunc::Min),
            ("smallest", AggFunc::Min),
            ("least", AggFunc::Min),
            ("minimum", AggFunc::Min),
            ("earliest", AggFunc::Min),
            ("cheapest", AggFunc::Min),
            ("fewest", AggFunc::Min),
            ("highest", AggFunc::Max),
            ("largest", AggFunc::Max),
            ("greatest", AggFunc::Max),
            ("maximum", AggFunc::Max),
            ("latest", AggFunc::Max),
            ("most", AggFunc::Max),
            ("total", AggFunc::Sum),
            ("average", AggFunc::Avg),
        ] {
            assert_eq!(function_token(word), Some(func), "{word}");
        }
    }

    #[test]
    fn every_operator_token_synonym_classifies() {
        use crate::token::OpSem::*;
        for (word, sem) in [
            ("be", Eq),
            ("the same as", Eq),
            ("be the same as", Eq),
            ("equal to", Eq),
            ("greater than", Gt),
            ("more than", Gt),
            ("larger than", Gt),
            ("less than", Lt),
            ("fewer than", Lt),
            ("smaller than", Lt),
            ("at least", Ge),
            ("at most", Le),
            ("after", Gt),
            ("before", Lt),
            ("later than", Gt),
            ("earlier than", Lt),
            ("contain", Contains),
            ("include", Contains),
            ("start with", StartsWith),
            ("end with", EndsWith),
        ] {
            assert_eq!(operator_token(word), Some(sem), "{word}");
        }
    }

    #[test]
    fn copula_fused_variants_classify_like_their_base() {
        for base in [
            "the same as",
            "equal to",
            "greater than",
            "more than",
            "larger than",
            "less than",
            "fewer than",
            "smaller than",
            "at least",
            "at most",
            "after",
            "before",
            "later than",
            "earlier than",
        ] {
            let fused = format!("be {base}");
            assert_eq!(
                operator_token(&fused),
                operator_token(base),
                "be-fusion must not change semantics: {fused}"
            );
        }
    }

    #[test]
    fn order_by_directions() {
        use crate::token::SortDir;
        assert_eq!(order_by_token("sorted by"), Some(SortDir::Asc));
        assert_eq!(order_by_token("ordered by"), None); // normalised earlier
        assert_eq!(order_by_token("in alphabetical order"), Some(SortDir::Asc));
        assert_eq!(order_by_token("in descending order"), Some(SortDir::Desc));
    }

    #[test]
    fn enum_sets_stay_small() {
        // The paper: "we have kept these small - each set has about a
        // dozen elements."
        assert!(COMMAND_TOKENS.len() <= 15);
    }
}
