//! User feedback: dynamically generated error and warning messages
//! (paper Sec. 4).
//!
//! "Each error message is dynamically generated, tailored to the actual
//! query causing the error. Inside each message, possible ways to revise
//! the query are also suggested."

use std::fmt;

/// The kind of a feedback item — used by the simulated participants to
/// decide how to revise, and by tests to assert on behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedbackKind {
    /// A term outside the system vocabulary (paper's example: "as").
    UnknownTerm {
        /// The offending term.
        term: String,
        /// A suggested replacement, when the system knows one.
        suggestion: Option<String>,
    },
    /// A name token with no matching element/attribute in the database.
    NoSuchName {
        /// The user's word.
        term: String,
        /// Near-miss labels offered to the user.
        candidates: Vec<String>,
    },
    /// A value token whose value occurs nowhere in the database (used
    /// for implicit name-token resolution failures).
    NoSuchValue {
        /// The value.
        value: String,
    },
    /// The parse tree violates the supported grammar (Table 6).
    GrammarViolation {
        /// What was wrong, in user terms.
        detail: String,
    },
    /// A comparison is missing one of its operands.
    IncompleteComparison {
        /// The operator's surface words.
        operator: String,
    },
    /// The query contains a pronoun — anaphora resolution is unreliable,
    /// so the system warns (paper Sec. 4).
    PronounWarning {
        /// The pronoun.
        pronoun: String,
    },
    /// A pronoun or elliptical phrase was resolved against the previous
    /// turn of a conversational session (the sessions counterpart of
    /// [`FeedbackKind::PronounWarning`]: the system *did* resolve the
    /// reference, and tells the user what it resolved to so a wrong
    /// guess is visible immediately).
    AnaphoraResolved {
        /// The anaphoric or elliptical phrase ("of those", "what about").
        phrase: String,
        /// What it was resolved to, in user terms (e.g. the previous
        /// question).
        referent: String,
    },
    /// Multiple database names matched a single word; the disjunction of
    /// all of them is used unless the user picks one.
    AmbiguousName {
        /// The user's word.
        term: String,
        /// All matching labels.
        matches: Vec<String>,
    },
}

/// Severity: errors block translation, warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The query is rejected; the user must rephrase.
    Error,
    /// The query is accepted, but the user should double-check.
    Warning,
}

/// One feedback item shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// Error or warning.
    pub severity: Severity,
    /// The structured kind (drives simulated-user revision).
    pub kind: FeedbackKind,
}

impl Feedback {
    /// Build an error.
    pub fn error(kind: FeedbackKind) -> Self {
        Feedback {
            severity: Severity::Error,
            kind,
        }
    }

    /// Build a warning.
    pub fn warning(kind: FeedbackKind) -> Self {
        Feedback {
            severity: Severity::Warning,
            kind,
        }
    }

    /// The rendered message, in the paper's style.
    pub fn message(&self) -> String {
        match &self.kind {
            FeedbackKind::UnknownTerm { term, suggestion } => match suggestion {
                Some(s) => format!(
                    "The term \"{term}\" is not understood by the system. \
                     Please consider replacing it with \"{s}\"."
                ),
                None => format!(
                    "The term \"{term}\" is not understood by the system. \
                     Please rephrase your query without it."
                ),
            },
            FeedbackKind::NoSuchName { term, candidates } => {
                if candidates.is_empty() {
                    format!(
                        "No element or attribute named \"{term}\" was found in the database. \
                         Please use a different word for it."
                    )
                } else {
                    format!(
                        "No element or attribute named \"{term}\" was found in the database. \
                         Did you mean one of: {}?",
                        candidates.join(", ")
                    )
                }
            }
            FeedbackKind::NoSuchValue { value } => format!(
                "The value \"{value}\" does not occur in the database, so the system \
                 cannot determine what kind of item it identifies. Please name the \
                 item explicitly (for example \"author {value}\")."
            ),
            FeedbackKind::GrammarViolation { detail } => {
                format!("The system could not understand the structure of your query: {detail}")
            }
            FeedbackKind::IncompleteComparison { operator } => format!(
                "The comparison \"{operator}\" seems to be missing a value or item to \
                 compare against. Please complete it (for example \"... {operator} 1991\")."
            ),
            FeedbackKind::PronounWarning { pronoun } => format!(
                "The query contains the pronoun \"{pronoun}\". The system may \
                 misunderstand what it refers to; consider repeating the item's name \
                 instead."
            ),
            FeedbackKind::AnaphoraResolved { phrase, referent } => format!(
                "The phrase \"{phrase}\" was interpreted against your previous question \
                 ({referent}). If that is not what you meant, please repeat the item's \
                 name instead."
            ),
            FeedbackKind::AmbiguousName { term, matches } => format!(
                "The word \"{term}\" matches several items in the database ({}); all of \
                 them will be searched. Rephrase with one of the exact names to narrow \
                 the query.",
                matches.join(", ")
            ),
        }
    }
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "[{tag}] {}", self.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_term_with_suggestion_matches_paper_example() {
        let f = Feedback::error(FeedbackKind::UnknownTerm {
            term: "as".into(),
            suggestion: Some("the same as".into()),
        });
        let m = f.message();
        assert!(m.contains("\"as\""));
        assert!(m.contains("\"the same as\""));
    }

    #[test]
    fn unknown_term_without_suggestion() {
        let f = Feedback::error(FeedbackKind::UnknownTerm {
            term: "blargh".into(),
            suggestion: None,
        });
        assert!(f.message().contains("rephrase"));
    }

    #[test]
    fn no_such_name_lists_candidates() {
        let f = Feedback::error(FeedbackKind::NoSuchName {
            term: "cost".into(),
            candidates: vec!["price".into()],
        });
        assert!(f.message().contains("price"));
    }

    #[test]
    fn pronoun_is_warning() {
        let f = Feedback::warning(FeedbackKind::PronounWarning {
            pronoun: "their".into(),
        });
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.to_string().starts_with("[warning]"));
    }

    #[test]
    fn display_includes_severity() {
        let f = Feedback::error(FeedbackKind::NoSuchValue {
            value: "Atlantis".into(),
        });
        assert!(f.to_string().starts_with("[error]"));
    }
}
