//! Engine-level translation cache.
//!
//! Parse → classify → validate → translate is pure: the outcome depends
//! only on the sentence and the (immutable) catalog. Interactive use and
//! the batch runner both resubmit the same handful of questions — the
//! user-study tasks, dashboard-style canned queries — so [`Nalix`]
//! memoises outcomes keyed by a *normalized* question.
//!
//! The memo table is **bounded**: a long-running `nalixd` server sees an
//! unbounded stream of distinct questions, so the cache holds at most
//! `capacity` entries (default [`DEFAULT_CACHE_CAPACITY`]) and evicts
//! with the clock (second-chance) policy — each entry carries a
//! referenced bit set on every hit; the eviction hand sweeps the slots,
//! clearing referenced bits and reclaiming the first unreferenced slot
//! it finds. Clock approximates LRU while keeping hits write-lock-free:
//! a hit only sets an atomic bit under the read lock. Evictions are
//! counted exactly, both locally and as
//! [`obs::Counter::CacheEvictions`].
//!
//! Normalization goes exactly as far as the pipeline is insensitive,
//! and no further:
//!
//! - whitespace runs (any Unicode whitespace) collapse to one space;
//! - quote styles canonicalise (curly → straight), quoted values stay
//!   verbatim inside;
//! - a word is lowercased only where its case cannot change how the
//!   tagger reads it: the sentence-initial word, words already
//!   lowercase, and closed-class lexicon words
//!   ([`tags_case_insensitively`]). A capitalised unknown word
//!   mid-sentence tags as a proper noun — a *value* — so "Return all
//!   Movies" must not collapse with "Return all movies", and
//!   "Ron Howard" never collapses with "ron howard".
//!
//! [`Nalix`]: crate::Nalix
//! [`tags_case_insensitively`]: nlparser::lexicon::tags_case_insensitively

use crate::Outcome;
use nlparser::lexicon::tags_case_insensitively;
use nlparser::parse::normalize_multi_sentence;
use nlparser::tokenize::{tokenize, RawKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// Default bound on distinct memoised questions. At the observed
/// few-hundred-bytes-per-outcome footprint this keeps a busy server's
/// steady-state cache in the low megabytes; interactive and batch
/// workloads (dozens of distinct questions) never reach it.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Hit/miss counters of a [`Nalix`](crate::Nalix) translation cache.
///
/// The hit/miss pair is read from a single atomic in the owning
/// [`Nalix`](crate::Nalix)'s [`obs::MetricsRegistry`], so `hits` and
/// `misses` always describe the same instant — the two reporting paths
/// ([`Nalix::cache_stats`](crate::Nalix::cache_stats) and
/// [`obs::MetricsSnapshot`]) can never disagree. With the `metrics`
/// feature compiled out, hits and misses read as zero; `entries`,
/// `capacity`, and `evictions` are tracked by the cache itself and stay
/// live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// The default backend whose keys new entries are filed under
    /// (entries for either backend coexist; see [`crate::Nalix::query`]).
    pub backend: crate::BackendKind,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the full pipeline.
    pub misses: u64,
    /// Distinct normalized questions currently cached.
    pub entries: usize,
    /// Maximum entries the cache will hold (0 = caching disabled).
    pub capacity: usize,
    /// Entries evicted by the clock hand to stay under `capacity`.
    pub evictions: u64,
}

/// Canonical cache key (see the module docs for what is — and is not —
/// collapsed). Falls back to plain whitespace collapsing when the
/// question does not tokenize; the pipeline will reject it either way,
/// and the rejection is memoised under the same deterministic key.
pub(crate) fn normalize(question: &str) -> String {
    let fused = normalize_multi_sentence(question);
    let Ok(tokens) = tokenize(&fused) else {
        return question.split_whitespace().collect::<Vec<_>>().join(" ");
    };
    let mut out = String::with_capacity(question.len());
    for (i, t) in tokens.iter().enumerate() {
        if !out.is_empty() {
            out.push(' ');
        }
        match t.kind {
            RawKind::Quoted => {
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
            }
            RawKind::Comma => out.push(','),
            RawKind::Number => out.push_str(&t.text),
            RawKind::Word => {
                let lower = t.text.to_lowercase();
                let case_blind = i == 0
                    || !t.text.chars().next().is_some_and(char::is_uppercase)
                    || tags_case_insensitively(&lower);
                if case_blind {
                    out.push_str(&lower);
                } else {
                    out.push_str(&t.text);
                }
            }
        }
    }
    out
}

/// One cached outcome plus its clock referenced bit. The bit is the
/// only part mutated on a hit, and it is atomic, so hits never need the
/// write lock.
struct Slot {
    key: String,
    outcome: Outcome,
    referenced: AtomicBool,
}

/// The clock state: slot arena, key → slot index, and the eviction
/// hand.
#[derive(Default)]
struct Clock {
    map: HashMap<String, usize>,
    slots: Vec<Slot>,
    hand: usize,
}

impl Clock {
    /// Reclaim one slot index via the second-chance sweep. Only called
    /// when `slots` is non-empty and full. Bounded: after one full
    /// sweep every referenced bit is clear, so the second pass must
    /// yield; the explicit bound makes that obvious to the reader (and
    /// the panic-free lint).
    fn evict(&mut self) -> usize {
        let n = self.slots.len();
        for _ in 0..=(2 * n) {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.slots[i].referenced.swap(false, Ordering::Relaxed) {
                return i;
            }
        }
        // Unreachable by the argument above; fall back to the hand's
        // current position rather than panicking.
        self.hand
    }
}

/// A concurrent, capacity-bounded memo table
/// `normalized question → Outcome` with clock (second-chance)
/// eviction. Hit/miss accounting is delegated to the caller's
/// [`obs::MetricsRegistry`] (one packed atomic), so there is exactly
/// one source of truth for the pair; evictions are counted here (and
/// mirrored to [`obs::Counter::CacheEvictions`]).
pub(crate) struct TranslationCache {
    inner: RwLock<Clock>,
    capacity: usize,
    evictions: AtomicU64,
}

impl Default for TranslationCache {
    fn default() -> Self {
        TranslationCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl TranslationCache {
    /// A cache holding at most `capacity` outcomes; `0` disables
    /// memoisation entirely (every lookup misses, inserts are
    /// dropped).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        TranslationCache {
            inner: RwLock::new(Clock::default()),
            capacity,
            evictions: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub(crate) fn get(&self, key: &str, metrics: &obs::MetricsRegistry) -> Option<Outcome> {
        let hit = {
            let clock = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            clock.map.get(key).map(|&i| {
                let slot = &clock.slots[i];
                slot.referenced.store(true, Ordering::Relaxed);
                slot.outcome.clone()
            })
        };
        match &hit {
            Some(_) => metrics.cache_hit(),
            None => metrics.cache_miss(),
        }
        hit
    }

    pub(crate) fn insert(&self, key: String, outcome: Outcome, metrics: &obs::MetricsRegistry) {
        if self.capacity == 0 {
            return;
        }
        let mut clock = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&i) = clock.map.get(&key) {
            // Racing miss on the same key: refresh in place.
            let slot = &mut clock.slots[i];
            slot.outcome = outcome;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if clock.slots.len() < self.capacity {
            let i = clock.slots.len();
            clock.slots.push(Slot {
                key: key.clone(),
                outcome,
                // Fresh entries start unreferenced: a never-hit entry
                // is the first to go when the hand comes around.
                referenced: AtomicBool::new(false),
            });
            clock.map.insert(key, i);
            return;
        }
        let i = clock.evict();
        let evicted_key = std::mem::take(&mut clock.slots[i].key);
        clock.map.remove(&evicted_key);
        clock.slots[i] = Slot {
            key: key.clone(),
            outcome,
            referenced: AtomicBool::new(false),
        };
        clock.map.insert(key, i);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        metrics.add(obs::Counter::CacheEvictions, 1);
    }

    pub(crate) fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    pub(crate) fn clear(&self) {
        let mut clock = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        *clock = Clock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejected() -> Outcome {
        Outcome::Rejected(crate::Rejected {
            errors: vec![],
            warnings: vec![],
        })
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize("  Find\tall \n movies  "), "find all movies");
        assert_eq!(
            normalize("find\u{00A0}all\u{2009}movies"),
            normalize("find all movies")
        );
    }

    #[test]
    fn normalize_folds_case_only_where_tagging_is_case_blind() {
        // Command verb, quantifier, and the sentence-initial word are
        // closed-class / position-insensitive: fold.
        assert_eq!(
            normalize("FIND All movies"), // "All" is a quantifier
            normalize("find all movies")
        );
        // A capitalised unknown word mid-sentence is a proper noun (a
        // value): its case is meaning-bearing, so the keys differ.
        assert_ne!(
            normalize("Return all Movies"),
            normalize("Return all movies")
        );
        assert_ne!(
            normalize("Find movies directed by Ron Howard"),
            normalize("Find movies directed by ron howard")
        );
    }

    #[test]
    fn normalize_canonicalises_quotes_but_not_quoted_values() {
        assert_eq!(
            normalize("the title is \u{201C}Traffic\u{201D}"),
            normalize("the title is \"Traffic\"")
        );
        assert_ne!(
            normalize("the title is \"Traffic\""),
            normalize("the title is \"traffic\"")
        );
    }

    #[test]
    fn normalize_untokenizable_input_is_deterministic() {
        let a = normalize("movies \u{2026}  by year");
        let b = normalize("movies \u{2026} by year");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::default();
        assert_eq!(c.capacity(), DEFAULT_CACHE_CAPACITY);
        assert!(c.get("q", &metrics).is_none());
        c.insert("q".to_owned(), rejected(), &metrics);
        assert!(c.get("q", &metrics).is_some());
        // The pair comes back from a single atomic load: consistent by
        // construction.
        assert_eq!(metrics.cache_counts(), (1, 1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::with_capacity(8);
        for i in 0..100 {
            c.insert(format!("q{i}"), rejected(), &metrics);
            assert!(c.len() <= 8, "cache grew past capacity at insert {i}");
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.evictions(), 92);
    }

    #[test]
    fn clock_keeps_hot_entries_over_cold_ones() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::with_capacity(4);
        for i in 0..4 {
            c.insert(format!("q{i}"), rejected(), &metrics);
        }
        // q0 is hot: its referenced bit survives one hand pass, so the
        // next eviction reclaims a cold entry instead.
        assert!(c.get("q0", &metrics).is_some());
        c.insert("q4".to_owned(), rejected(), &metrics);
        assert!(c.get("q0", &metrics).is_some(), "hot entry was evicted");
        assert!(
            c.get("q1", &metrics).is_none(),
            "cold entry should have been the victim"
        );
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::with_capacity(2);
        c.insert("a".to_owned(), rejected(), &metrics);
        c.insert("b".to_owned(), rejected(), &metrics);
        c.insert("a".to_owned(), rejected(), &metrics);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert!(c.get("a", &metrics).is_some());
        assert!(c.get("b", &metrics).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::with_capacity(0);
        c.insert("q".to_owned(), rejected(), &metrics);
        assert_eq!(c.len(), 0);
        assert!(c.get("q", &metrics).is_none());
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn eviction_mirrors_into_the_registry() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::with_capacity(1);
        c.insert("a".to_owned(), rejected(), &metrics);
        c.insert("b".to_owned(), rejected(), &metrics);
        assert_eq!(c.evictions(), 1);
        // The registry mirror only records when the metrics feature is
        // compiled in and enabled; the local counter is always exact.
        let expected = if metrics.is_enabled() { 1 } else { 0 };
        assert_eq!(
            metrics.snapshot().counter(obs::Counter::CacheEvictions),
            expected
        );
    }
}
