//! Engine-level translation cache.
//!
//! Parse → classify → validate → translate is pure: the outcome depends
//! only on the sentence and the (immutable) catalog. Interactive use and
//! the batch runner both resubmit the same handful of questions — the
//! user-study tasks, dashboard-style canned queries — so [`Nalix`]
//! memoises outcomes keyed by a *normalized* question.
//!
//! Normalization goes exactly as far as the pipeline is insensitive,
//! and no further:
//!
//! - whitespace runs (any Unicode whitespace) collapse to one space;
//! - quote styles canonicalise (curly → straight), quoted values stay
//!   verbatim inside;
//! - a word is lowercased only where its case cannot change how the
//!   tagger reads it: the sentence-initial word, words already
//!   lowercase, and closed-class lexicon words
//!   ([`tags_case_insensitively`]). A capitalised unknown word
//!   mid-sentence tags as a proper noun — a *value* — so "Return all
//!   Movies" must not collapse with "Return all movies", and
//!   "Ron Howard" never collapses with "ron howard".
//!
//! [`Nalix`]: crate::Nalix
//! [`tags_case_insensitively`]: nlparser::lexicon::tags_case_insensitively

use crate::Outcome;
use nlparser::lexicon::tags_case_insensitively;
use nlparser::parse::normalize_multi_sentence;
use nlparser::tokenize::{tokenize, RawKind};
use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

/// Hit/miss counters of a [`Nalix`](crate::Nalix) translation cache.
///
/// The counters live in the owning [`Nalix`](crate::Nalix)'s
/// [`obs::MetricsRegistry`], packed in a single atomic, so `hits` and
/// `misses` always describe the same instant — the two reporting paths
/// ([`Nalix::cache_stats`](crate::Nalix::cache_stats) and
/// [`obs::MetricsSnapshot`]) can never disagree. With the `metrics`
/// feature compiled out both counters read as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the full pipeline.
    pub misses: u64,
    /// Distinct normalized questions currently cached.
    pub entries: usize,
}

/// Canonical cache key (see the module docs for what is — and is not —
/// collapsed). Falls back to plain whitespace collapsing when the
/// question does not tokenize; the pipeline will reject it either way,
/// and the rejection is memoised under the same deterministic key.
pub(crate) fn normalize(question: &str) -> String {
    let fused = normalize_multi_sentence(question);
    let Ok(tokens) = tokenize(&fused) else {
        return question.split_whitespace().collect::<Vec<_>>().join(" ");
    };
    let mut out = String::with_capacity(question.len());
    for (i, t) in tokens.iter().enumerate() {
        if !out.is_empty() {
            out.push(' ');
        }
        match t.kind {
            RawKind::Quoted => {
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
            }
            RawKind::Comma => out.push(','),
            RawKind::Number => out.push_str(&t.text),
            RawKind::Word => {
                let lower = t.text.to_lowercase();
                let case_blind = i == 0
                    || !t.text.chars().next().is_some_and(char::is_uppercase)
                    || tags_case_insensitively(&lower);
                if case_blind {
                    out.push_str(&lower);
                } else {
                    out.push_str(&t.text);
                }
            }
        }
    }
    out
}

/// A concurrent memo table `normalized question → Outcome`. Hit/miss
/// accounting is delegated to the caller's [`obs::MetricsRegistry`]
/// (one packed atomic), so there is exactly one source of truth for
/// the pair.
#[derive(Default)]
pub(crate) struct TranslationCache {
    map: RwLock<HashMap<String, Outcome>>,
}

impl TranslationCache {
    pub(crate) fn get(&self, key: &str, metrics: &obs::MetricsRegistry) -> Option<Outcome> {
        let hit = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned();
        match &hit {
            Some(_) => metrics.cache_hit(),
            None => metrics.cache_miss(),
        }
        hit
    }

    pub(crate) fn insert(&self, key: String, outcome: Outcome) {
        self.map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, outcome);
    }

    pub(crate) fn len(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub(crate) fn clear(&self) {
        self.map
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize("  Find\tall \n movies  "), "find all movies");
        assert_eq!(
            normalize("find\u{00A0}all\u{2009}movies"),
            normalize("find all movies")
        );
    }

    #[test]
    fn normalize_folds_case_only_where_tagging_is_case_blind() {
        // Command verb, quantifier, and the sentence-initial word are
        // closed-class / position-insensitive: fold.
        assert_eq!(
            normalize("FIND All movies"), // "All" is a quantifier
            normalize("find all movies")
        );
        // A capitalised unknown word mid-sentence is a proper noun (a
        // value): its case is meaning-bearing, so the keys differ.
        assert_ne!(
            normalize("Return all Movies"),
            normalize("Return all movies")
        );
        assert_ne!(
            normalize("Find movies directed by Ron Howard"),
            normalize("Find movies directed by ron howard")
        );
    }

    #[test]
    fn normalize_canonicalises_quotes_but_not_quoted_values() {
        assert_eq!(
            normalize("the title is \u{201C}Traffic\u{201D}"),
            normalize("the title is \"Traffic\"")
        );
        assert_ne!(
            normalize("the title is \"Traffic\""),
            normalize("the title is \"traffic\"")
        );
    }

    #[test]
    fn normalize_untokenizable_input_is_deterministic() {
        let a = normalize("movies \u{2026}  by year");
        let b = normalize("movies \u{2026} by year");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let metrics = obs::MetricsRegistry::new();
        let c = TranslationCache::default();
        assert!(c.get("q", &metrics).is_none());
        c.insert(
            "q".to_owned(),
            Outcome::Rejected(crate::Rejected {
                errors: vec![],
                warnings: vec![],
            }),
        );
        assert!(c.get("q", &metrics).is_some());
        // The pair comes back from a single atomic load: consistent by
        // construction.
        assert_eq!(metrics.cache_counts(), (1, 1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert_eq!(c.len(), 0);
    }
}
