//! Engine-level translation cache.
//!
//! Parse → classify → validate → translate is pure: the outcome depends
//! only on the sentence and the (immutable) catalog. Interactive use and
//! the batch runner both resubmit the same handful of questions — the
//! user-study tasks, dashboard-style canned queries — so [`Nalix`]
//! memoises outcomes keyed by the *whitespace-normalized* question.
//! Normalization deliberately stops there: NaLIX value terms are
//! case-sensitive ("Ron Howard" must not collapse with "ron howard"),
//! so only leading/trailing/internal whitespace runs are canonicalised.
//!
//! [`Nalix`]: crate::Nalix

use crate::Outcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Hit/miss counters of a [`Nalix`](crate::Nalix) translation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the full pipeline.
    pub misses: u64,
    /// Distinct normalized questions currently cached.
    pub entries: usize,
}

/// Canonical cache key: whitespace runs collapsed to single spaces,
/// leading/trailing whitespace dropped. Case is preserved.
pub(crate) fn normalize(question: &str) -> String {
    let mut out = String::with_capacity(question.len());
    for word in question.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(word);
    }
    out
}

/// A concurrent memo table `normalized question → Outcome`.
#[derive(Default)]
pub(crate) struct TranslationCache {
    map: RwLock<HashMap<String, Outcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TranslationCache {
    pub(crate) fn get(&self, key: &str) -> Option<Outcome> {
        let hit = self
            .map
            .read()
            .expect("translation cache lock poisoned")
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub(crate) fn insert(&self, key: String, outcome: Outcome) {
        self.map
            .write()
            .expect("translation cache lock poisoned")
            .insert(key, outcome);
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .map
                .read()
                .expect("translation cache lock poisoned")
                .len(),
        }
    }

    pub(crate) fn clear(&self) {
        self.map
            .write()
            .expect("translation cache lock poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_whitespace_only() {
        assert_eq!(normalize("  Find\tall \n movies  "), "Find all movies");
        assert_eq!(normalize("Ron Howard"), "Ron Howard");
        assert_ne!(normalize("Ron Howard"), normalize("ron howard"));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c = TranslationCache::default();
        assert!(c.get("q").is_none());
        c.insert(
            "q".to_owned(),
            Outcome::Rejected(crate::Rejected {
                errors: vec![],
                warnings: vec![],
            }),
        );
        assert!(c.get("q").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        c.clear();
        assert_eq!(c.stats().entries, 0);
    }
}
