//! Parallel evaluation of independent natural language queries.
//!
//! [`Nalix`] is `Send + Sync` — the document and catalog are immutable
//! and both caches (translation outcomes, the engine's value index) are
//! internally synchronized — so a single instance can serve a whole
//! thread pool. [`BatchRunner`] exploits that: it fans a batch of
//! questions out over `threads` OS threads with a shared atomic cursor
//! (cheap dynamic load balancing; query costs vary wildly between a
//! rejected sentence and a quantified join) and returns the replies in
//! input order. Results are deterministic: each question's reply is
//! bit-identical to what a serial [`Nalix::ask`] loop produces, because
//! every stage of the pipeline is a pure function of the (immutable)
//! document plus the sentence.
//!
//! Since the `Arc<Document>` ownership refactor the runner shares the
//! pipeline with its workers through a plain `Arc<Nalix>` — workers are
//! ordinarily spawned threads holding clones of that `Arc`, with no
//! scoped-thread borrowing and no lifetime threading.
//!
//! [`Nalix`]: crate::Nalix
//! [`Nalix::ask`]: crate::Nalix::ask

use crate::{Feedback, FeedbackKind, Nalix, Rejected};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The reply to one question of a batch: flat string results on
/// success, the feedback the user would see on rejection (evaluation
/// failures are folded into [`Rejected`], as in [`crate::Nalix::ask`]).
pub type BatchReply = Result<Vec<String>, Rejected>;

/// Evaluates batches of independent questions on a thread pool sharing
/// one [`Nalix`] instance.
///
/// ```
/// use nalix::{BatchRunner, Nalix};
/// use std::sync::Arc;
/// use xmldb::datasets::movies::movies;
///
/// let nalix = Arc::new(Nalix::new(movies()));
/// let runner = BatchRunner::new(nalix, 4);
/// let replies = runner.run(&[
///     "Find all the movies directed by Ron Howard.",
///     "The weather is nice today.",
/// ]);
/// assert!(replies[0].is_ok());
/// assert!(replies[1].is_err());
/// ```
pub struct BatchRunner {
    nalix: Arc<Nalix>,
    threads: usize,
}

impl BatchRunner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    /// Accepts an owned [`Nalix`] or an existing `Arc<Nalix>`.
    pub fn new(nalix: impl Into<Arc<Nalix>>, threads: usize) -> Self {
        BatchRunner {
            nalix: nalix.into(),
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this runner spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared pipeline the workers answer on.
    pub fn nalix(&self) -> &Arc<Nalix> {
        &self.nalix
    }

    /// Answer every question, replies in input order.
    ///
    /// Workers claim questions through a shared atomic cursor, so an
    /// expensive query late in the batch does not serialise behind
    /// cheap ones. With `threads == 1` this degenerates to the plain
    /// serial loop (modulo one spawned thread).
    pub fn run(&self, questions: &[&str]) -> Vec<BatchReply> {
        let n = questions.len();
        // Workers are ordinary spawned threads, so everything they
        // touch is owned: the questions, the reply slots, and the
        // pipeline all travel behind `Arc`s instead of scoped borrows.
        let questions: Arc<Vec<String>> =
            Arc::new(questions.iter().map(|q| q.to_string()).collect());
        let slots: Arc<Vec<OnceLock<BatchReply>>> =
            Arc::new((0..n).map(|_| OnceLock::new()).collect());
        let cursor = Arc::new(AtomicUsize::new(0));
        let workers: Vec<std::thread::JoinHandle<()>> = (0..self.threads.min(n.max(1)))
            .map(|_| {
                let nalix = self.nalix.clone();
                let questions = questions.clone();
                let slots = slots.clone();
                let cursor = cursor.clone();
                std::thread::spawn(move || {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Isolate the question: a panic anywhere in the
                        // pipeline (there should be none — the query-path
                        // crates deny unwrap/expect/panic) becomes that
                        // question's reply instead of poisoning the pool
                        // and aborting the whole batch.
                        let reply = catch_unwind(AssertUnwindSafe(|| nalix.ask(&questions[i])))
                            .unwrap_or_else(|_| Err(internal_error()));
                        let _ = slots[i].set(reply);
                    }
                    // The deep structural counters batch in
                    // destructor-free thread-local cells; drain this
                    // worker's tail before the thread exits.
                    obs::flush_hot();
                })
            })
            .collect();
        for w in workers {
            // A panicking worker already wrote `internal_error` replies
            // for its claimed questions (or left slots empty, mapped
            // below); the join failure itself carries no information.
            let _ = w.join();
        }
        let slots = Arc::try_unwrap(slots).unwrap_or_else(|arc| (*arc).clone());
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(|| Err(internal_error())))
            .collect()
    }
}

/// Reply used when a worker failed to produce one — an internal fault,
/// surfaced in-order as a rejection rather than crashing the batch.
fn internal_error() -> Rejected {
    Rejected {
        errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
            detail: "an internal error interrupted this question; please try again".into(),
        })],
        warnings: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::movies::movies;

    const QUESTIONS: [&str; 4] = [
        "Find all the movies directed by Ron Howard.",
        "Return the director of the movie, where the title of the movie is \"Traffic\".",
        "Return every director who has directed as many movies as has Ron Howard.",
        "The weather is nice today.",
    ];

    #[test]
    fn parallel_replies_match_serial() {
        let nalix = Arc::new(Nalix::new(movies()));
        let serial: Vec<BatchReply> = QUESTIONS.iter().map(|q| nalix.ask(q)).collect();
        for threads in [1, 2, 8] {
            let parallel = BatchRunner::new(nalix.clone(), threads).run(&QUESTIONS);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                match (p, s) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => {
                        let msg = |r: &Rejected| -> Vec<String> {
                            r.errors.iter().map(|f| f.message()).collect()
                        };
                        assert_eq!(msg(a), msg(b));
                    }
                    _ => panic!("parallel/serial outcome kind diverged"),
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let nalix = Nalix::new(movies());
        assert!(BatchRunner::new(nalix, 8).run(&[]).is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let nalix = Nalix::new(movies());
        let runner = BatchRunner::new(nalix, 0);
        assert_eq!(runner.threads(), 1);
        assert_eq!(runner.run(&["The weather."]).len(), 1);
    }
}
