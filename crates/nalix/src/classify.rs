//! Token classification (paper Sec. 3.1): mapping each dependency-tree
//! node to a token or marker type via the vocabulary enum sets.

use crate::token::{CNode, ClassifiedTree, MarkerType, NodeClass, TokenType};
use crate::vocab;
use nlparser::{DepRel, DepTree, Pos};

/// Classify a dependency tree. The output tree has the same shape; each
/// node carries its [`NodeClass`].
pub fn classify(dep: &DepTree) -> ClassifiedTree {
    let mut nodes = Vec::with_capacity(dep.len());
    for r in dep.refs() {
        let d = dep.node(r);
        let class = classify_node(dep, r);
        nodes.push(CNode {
            words: d.word.clone(),
            lemma: d.lemma.clone(),
            class,
            parent: d.head,
            children: d.children.clone(),
            rel: d.rel,
            order: d.order,
            implicit: false,
            expansion: Vec::new(),
        });
    }
    ClassifiedTree {
        nodes,
        root: dep.root(),
    }
}

fn classify_node(dep: &DepTree, r: usize) -> NodeClass {
    let n = dep.node(r);
    let lemma = n.lemma.as_str();
    let is_root = dep.root() == r;
    match n.pos {
        Pos::Verb | Pos::Wh if is_root => {
            if vocab::command_token(lemma) {
                NodeClass::Token(TokenType::Cmt)
            } else {
                NodeClass::Unknown
            }
        }
        // A wh-word that is not the root cannot be integrated.
        Pos::Wh => NodeClass::Unknown,
        Pos::Verb => {
            // Clause verbs: comparison verbs become operator tokens;
            // anything else is a "non-token main verb" → CM.
            match vocab::operator_token(lemma) {
                Some(op) => NodeClass::Token(TokenType::Ot(op)),
                None => NodeClass::Marker(MarkerType::Cm),
            }
        }
        Pos::Participle => NodeClass::Marker(MarkerType::Cm),
        Pos::Aux => {
            // A copula heading a clause (it has subject/predicate
            // children) is the operator "be"; helper auxiliaries are
            // general markers.
            let heads_clause = n
                .children
                .iter()
                .any(|&c| matches!(dep.node(c).rel, DepRel::Subj | DepRel::Pred | DepRel::Obj));
            if heads_clause {
                match vocab::operator_token(lemma) {
                    Some(op) => NodeClass::Token(TokenType::Ot(op)),
                    None => NodeClass::Marker(MarkerType::Cm),
                }
            } else {
                NodeClass::Marker(MarkerType::Gm)
            }
        }
        Pos::OpPhrase => match vocab::operator_token(lemma) {
            Some(op) => NodeClass::Token(TokenType::Ot(op)),
            None => NodeClass::Unknown,
        },
        Pos::FuncPhrase => match vocab::function_token(lemma) {
            Some(f) => NodeClass::Token(TokenType::Ft(f)),
            None => NodeClass::Unknown,
        },
        Pos::OrderPhrase => match vocab::order_by_token(lemma) {
            Some(d) => NodeClass::Token(TokenType::Obt(d)),
            None => NodeClass::Unknown,
        },
        Pos::Adj => match vocab::function_token(lemma) {
            Some(f) => NodeClass::Token(TokenType::Ft(f)),
            None => NodeClass::Marker(MarkerType::Mm),
        },
        Pos::Det => NodeClass::Marker(MarkerType::Gm),
        Pos::Quant => match vocab::quantifier_token(lemma) {
            Some(q) => NodeClass::Token(TokenType::Qt(q)),
            None => NodeClass::Marker(MarkerType::Gm),
        },
        Pos::Neg => NodeClass::Token(TokenType::Neg),
        Pos::Prep => match vocab::operator_token(lemma) {
            // "after 1991", "before 2000" — comparison prepositions.
            Some(op) => NodeClass::Token(TokenType::Ot(op)),
            None => {
                if vocab::connection_marker(lemma) {
                    NodeClass::Marker(MarkerType::Cm)
                } else {
                    // e.g. "as", "than" outside a known phrase
                    NodeClass::Unknown
                }
            }
        },
        // First-person objects of the command ("show ME") carry no
        // semantics and need no anaphora warning.
        Pos::Pronoun if matches!(lemma, "me" | "us") => NodeClass::Marker(MarkerType::Gm),
        Pos::Pronoun => NodeClass::Marker(MarkerType::Pm),
        Pos::Noun => NodeClass::Token(TokenType::Nt),
        Pos::Proper | Pos::Quoted | Pos::Number => NodeClass::Token(TokenType::Vt),
        Pos::Conj => NodeClass::Marker(MarkerType::Gm),
        Pos::Subord | Pos::Unknown => NodeClass::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{OpSem, QtKind};
    use nlparser::parse;
    use xquery::AggFunc;

    fn classify_str(s: &str) -> ClassifiedTree {
        classify(&parse(s).unwrap())
    }

    fn find(t: &ClassifiedTree, lemma: &str) -> usize {
        t.refs()
            .find(|&r| t.node(r).lemma == lemma)
            .unwrap_or_else(|| panic!("no node `{lemma}` in\n{}", t.outline()))
    }

    #[test]
    fn figure2_classification() {
        // Paper Figure 2: the classified parse tree for Query 2.
        let t = classify_str(
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        assert_eq!(
            t.node(t.root).class,
            NodeClass::Token(TokenType::Cmt),
            "{}",
            t.outline()
        );
        let every = find(&t, "every");
        assert_eq!(
            t.node(every).class,
            NodeClass::Token(TokenType::Qt(QtKind::Every))
        );
        let ot = find(&t, "be the same as");
        assert_eq!(t.node(ot).class, NodeClass::Token(TokenType::Ot(OpSem::Eq)));
        // two FT count nodes
        let fts = t
            .refs()
            .filter(|&r| t.node(r).class == NodeClass::Token(TokenType::Ft(AggFunc::Count)))
            .count();
        assert_eq!(fts, 2);
        // "directed" and "by" are connection markers
        let directed = t
            .refs()
            .filter(|&r| t.node(r).lemma == "directed")
            .collect::<Vec<_>>();
        assert_eq!(directed.len(), 2);
        for d in directed {
            assert_eq!(t.node(d).class, NodeClass::Marker(MarkerType::Cm));
        }
        // "Ron Howard" is a VT
        let rh = find(&t, "Ron Howard");
        assert_eq!(t.node(rh).class, NodeClass::Token(TokenType::Vt));
    }

    #[test]
    fn figure10_unknown_as() {
        // Paper Figure 10 / Query 1: "as" is an unknown term.
        let t = classify_str(
            "Return every director who has directed as many movies as has Ron Howard.",
        );
        let unknowns: Vec<_> = t
            .refs()
            .filter(|&r| t.node(r).class == NodeClass::Unknown)
            .map(|r| t.node(r).lemma.clone())
            .collect();
        assert!(unknowns.contains(&"as".to_owned()), "{}", t.outline());
    }

    #[test]
    fn copula_value_predicate_is_ot_eq() {
        let t = classify_str(
            "Return the total number of movies, where the director of each movie is Ron Howard.",
        );
        let be = find(&t, "be");
        assert_eq!(t.node(be).class, NodeClass::Token(TokenType::Ot(OpSem::Eq)));
        let ft = find(&t, "the total number of");
        assert_eq!(
            t.node(ft).class,
            NodeClass::Token(TokenType::Ft(AggFunc::Count))
        );
    }

    #[test]
    fn superlative_adjective_is_ft() {
        let t = classify_str("Return the lowest price for each book.");
        let lowest = find(&t, "lowest");
        assert_eq!(
            t.node(lowest).class,
            NodeClass::Token(TokenType::Ft(AggFunc::Min))
        );
        let for_ = find(&t, "for");
        assert_eq!(t.node(for_).class, NodeClass::Marker(MarkerType::Cm));
    }

    #[test]
    fn after_preposition_is_ot_gt() {
        let t =
            classify_str("Return the title of every book published by Addison-Wesley after 1991.");
        let after = find(&t, "after");
        assert_eq!(
            t.node(after).class,
            NodeClass::Token(TokenType::Ot(OpSem::Gt))
        );
        let published = find(&t, "published");
        assert_eq!(t.node(published).class, NodeClass::Marker(MarkerType::Cm));
        let year = find(&t, "1991");
        assert_eq!(t.node(year).class, NodeClass::Token(TokenType::Vt));
    }

    #[test]
    fn contain_is_ot() {
        let t = classify_str("Find all titles that contain \"XML\".");
        let contain = find(&t, "contain");
        assert_eq!(
            t.node(contain).class,
            NodeClass::Token(TokenType::Ot(OpSem::Contains))
        );
    }

    #[test]
    fn have_main_verb_is_cm() {
        let t = classify_str("Return the title of each book that has an author.");
        let have = find(&t, "have");
        assert_eq!(t.node(have).class, NodeClass::Marker(MarkerType::Cm));
    }

    #[test]
    fn sorted_by_is_obt() {
        let t = classify_str("Return the title of every book, sorted by title.");
        let ob = t
            .refs()
            .find(|&r| matches!(t.node(r).class, NodeClass::Token(TokenType::Obt(_))))
            .unwrap();
        assert_eq!(t.node(ob).lemma, "sorted by");
    }

    #[test]
    fn pronoun_is_pm() {
        let t = classify_str("Return all books and their titles.");
        let their = find(&t, "their");
        assert_eq!(t.node(their).class, NodeClass::Marker(MarkerType::Pm));
    }

    #[test]
    fn negation_token() {
        let t = classify_str(
            "Return the title of each book, where the publisher of the book is not \"Springer\".",
        );
        let neg = t
            .refs()
            .find(|&r| t.node(r).class == NodeClass::Token(TokenType::Neg))
            .unwrap();
        assert_eq!(t.node(neg).lemma, "not");
    }

    #[test]
    fn numbers_are_vts() {
        let t = classify_str(
            "Return every book, where the number of authors of the book is at least 1.",
        );
        let one = find(&t, "1");
        assert_eq!(t.node(one).class, NodeClass::Token(TokenType::Vt));
        let atleast = find(&t, "be at least");
        assert_eq!(
            t.node(atleast).class,
            NodeClass::Token(TokenType::Ot(OpSem::Ge))
        );
    }

    #[test]
    fn wh_root_is_cmt() {
        let t = classify_str("What is the title of each book?");
        assert_eq!(t.node(t.root).class, NodeClass::Token(TokenType::Cmt));
    }
}
