//! Parse-tree validation (paper Sec. 4): vocabulary checks, grammar
//! checks against Table 6, term expansion, implicit name-token
//! insertion (Def. 11), and warning generation.

use crate::catalog::Catalog;
use crate::feedback::{Feedback, FeedbackKind, Severity};
use crate::thesaurus;
use crate::token::{CNode, ClassifiedTree, MarkerType, NodeClass, TokenType};
use crate::vocab;
use nlparser::DepRel;

/// The result of validating a classified parse tree.
#[derive(Debug, Clone)]
pub struct Validation {
    /// The (possibly extended) tree: implicit NTs inserted, expansions
    /// filled in.
    pub tree: ClassifiedTree,
    /// All feedback items, errors and warnings.
    pub feedback: Vec<Feedback>,
}

impl Validation {
    /// True when no error-severity feedback was produced — the tree may
    /// be translated.
    pub fn is_valid(&self) -> bool {
        !self.feedback.iter().any(|f| f.severity == Severity::Error)
    }

    /// Only the errors.
    pub fn errors(&self) -> Vec<&Feedback> {
        self.feedback
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect()
    }

    /// Only the warnings.
    pub fn warnings(&self) -> Vec<&Feedback> {
        self.feedback
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .collect()
    }
}

/// Validate `tree` against `catalog`, producing the extended tree and
/// feedback.
pub fn validate(mut tree: ClassifiedTree, catalog: &Catalog) -> Validation {
    let mut feedback = Vec::new();

    vocabulary_checks(&tree, &mut feedback);
    grammar_checks(&tree, &mut feedback);
    term_expansion(&mut tree, catalog, &mut feedback);
    implicit_name_tokens(&mut tree, catalog, &mut feedback);

    Validation { tree, feedback }
}

/// Unknown terms, dangling material and pronouns.
fn vocabulary_checks(tree: &ClassifiedTree, feedback: &mut Vec<Feedback>) {
    for r in tree.refs() {
        let n = tree.node(r);
        match n.class {
            NodeClass::Unknown => {
                feedback.push(Feedback::error(FeedbackKind::UnknownTerm {
                    term: n.words.clone(),
                    suggestion: vocab::suggestion_for(&n.lemma).map(str::to_owned),
                }));
            }
            NodeClass::Marker(MarkerType::Pm) => {
                feedback.push(Feedback::warning(FeedbackKind::PronounWarning {
                    pronoun: n.words.clone(),
                }));
            }
            _ => {}
        }
        // Content tokens the parser could not integrate.
        if n.rel == DepRel::Dangling
            && matches!(
                n.class,
                NodeClass::Token(TokenType::Nt) | NodeClass::Token(TokenType::Vt)
            )
        {
            feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
                detail: format!(
                    "the system could not relate \"{}\" to the rest of the query; \
                     please rephrase",
                    n.words
                ),
            }));
        }
    }
}

/// Structural checks approximating the grammar of Table 6.
fn grammar_checks(tree: &ClassifiedTree, feedback: &mut Vec<Feedback>) {
    // Rule 1–2: the root must be a command token.
    let root = tree.node(tree.root);
    if !matches!(root.class, NodeClass::Token(TokenType::Cmt)) {
        feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
            detail: format!(
                "a query must begin with a command such as \"Return\" or \"Find\" \
                 (found \"{}\")",
                root.words
            ),
        }));
        return;
    }
    // RETURN → CMT + (RNP|GVT|PREDICATE): the command needs something to
    // return.
    let has_returnable = root.children.iter().any(|&c| {
        matches!(
            tree.node(c).class,
            NodeClass::Token(TokenType::Nt | TokenType::Vt | TokenType::Ft(_) | TokenType::Ot(_))
        )
    });
    if !has_returnable {
        feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
            detail: "the command does not say what to return".into(),
        }));
    }

    for r in tree.refs() {
        let n = tree.node(r);
        match n.class {
            NodeClass::Token(TokenType::Ft(f)) => {
                // RNP → FT + RNP: a function needs exactly one argument.
                let args = n
                    .children
                    .iter()
                    .filter(|&&c| {
                        matches!(
                            tree.node(c).class,
                            NodeClass::Token(TokenType::Nt | TokenType::Ft(_))
                        )
                    })
                    .count();
                // Superlative adjectives ("lowest") attach *under* their
                // NT, so zero children is fine when the parent is an NT.
                let parent_is_nt = n
                    .parent
                    .map(|p| tree.node(p).class.is_nt())
                    .unwrap_or(false);
                if args == 0 && !parent_is_nt {
                    feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
                        detail: format!(
                            "the function \"{}\" ({f}) must apply to some item in the query",
                            n.words
                        ),
                    }));
                } else if args > 1 {
                    feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
                        detail: format!(
                            "the function \"{}\" applies to more than one item; \
                             please split the query",
                            n.words
                        ),
                    }));
                }
            }
            NodeClass::Token(TokenType::Ot(_)) => {
                // PREDICATE: an operator needs two operands — its token
                // children, plus its parent when the parent is a token.
                let child_operands = n
                    .children
                    .iter()
                    .filter(|&&c| {
                        matches!(
                            tree.node(c).class,
                            NodeClass::Token(TokenType::Nt | TokenType::Vt | TokenType::Ft(_))
                        )
                    })
                    .count();
                let parent_operand = tree
                    .parent_skipping_markers(r)
                    .map(|p| {
                        matches!(
                            tree.node(p).class,
                            NodeClass::Token(TokenType::Nt | TokenType::Vt | TokenType::Ft(_))
                        )
                    })
                    .unwrap_or(false);
                // A clause operator ("… is greater than …") carries its
                // own subject; the node it hangs under is the clause
                // site, not an operand.
                let has_subj = n
                    .children
                    .iter()
                    .any(|&c| tree.node(c).rel == nlparser::DepRel::Subj);
                let effective = if has_subj {
                    child_operands
                } else {
                    child_operands + usize::from(parent_operand)
                };
                if effective < 2 {
                    feedback.push(Feedback::error(FeedbackKind::IncompleteComparison {
                        operator: n.words.clone(),
                    }));
                }
            }
            NodeClass::Token(TokenType::Vt) => {
                // Values are leaves (markers aside) — except for
                // disjunctive value chains (`GVT → GVT ∧ GVT`, Table 6
                // line 11): "… is \"A\" or \"B\"".
                let bad_children = n
                    .children
                    .iter()
                    .filter(|&&c| {
                        let cn = tree.node(c);
                        !(cn.class.is_marker()
                            || (cn.class.is_vt() && cn.rel == nlparser::DepRel::ConjOr))
                    })
                    .count();
                if bad_children > 0 {
                    feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
                        detail: format!(
                            "the value \"{}\" cannot have further qualifications",
                            n.words
                        ),
                    }));
                }
            }
            NodeClass::Token(TokenType::Neg) => {
                // NEG must negate an operator (GOT → NEG + OT).
                let parent_ot = n
                    .parent
                    .map(|p| tree.node(p).class.ot().is_some())
                    .unwrap_or(false);
                if !parent_ot {
                    feedback.push(Feedback::error(FeedbackKind::GrammarViolation {
                        detail: "\"not\" must negate a comparison (for example \
                                 \"is not\")"
                            .into(),
                    }));
                }
            }
            _ => {}
        }
    }
}

/// Resolve every NT against the database labels (exact, then thesaurus),
/// recording the expansion or reporting `NoSuchName`.
fn term_expansion(tree: &mut ClassifiedTree, catalog: &Catalog, feedback: &mut Vec<Feedback>) {
    let labels = catalog.labels();
    for r in 0..tree.nodes.len() {
        if !tree.nodes[r].class.is_nt() || tree.nodes[r].implicit {
            continue;
        }
        let lemma = tree.nodes[r].lemma.clone();
        let matches: Vec<String> = thesaurus::resolve(&lemma, &labels)
            .into_iter()
            .map(str::to_owned)
            .collect();
        match matches.len() {
            0 => {
                // Near-miss candidates: thesaurus expansions that are
                // *words*, shown to guide rephrasing.
                let candidates: Vec<String> = thesaurus::expansions(&lemma)
                    .into_iter()
                    .filter(|w| w != &lemma)
                    .collect();
                feedback.push(Feedback::error(FeedbackKind::NoSuchName {
                    term: tree.nodes[r].words.clone(),
                    candidates,
                }));
            }
            1 => tree.nodes[r].expansion = matches,
            _ => {
                feedback.push(Feedback::warning(FeedbackKind::AmbiguousName {
                    term: tree.nodes[r].words.clone(),
                    matches: matches.clone(),
                }));
                tree.nodes[r].expansion = matches;
            }
        }
    }
}

/// Implicit name-token insertion (paper Def. 11).
///
/// "For any GVT, if it is not attached by a CMT, nor adjacent to a RNP,
/// nor attached by a GOT that is attached by a RNP or GVT, then each VT
/// within the GVT is said to be related to an implicit NT. An implicit
/// NT related to a VT is the name(s) of element or attribute with the
/// value of VT in the database."
fn implicit_name_tokens(
    tree: &mut ClassifiedTree,
    catalog: &Catalog,
    feedback: &mut Vec<Feedback>,
) {
    let vts: Vec<usize> = tree
        .refs()
        .filter(|&r| tree.node(r).class.is_vt())
        .collect();
    for vt in vts {
        let Some(parent) = tree.node(vt).parent else {
            continue;
        };
        let pclass = tree.node(parent).class;
        // A disjunct in a value chain ("… \"A\" or \"B\"") shares the
        // head value's implicit NT.
        if pclass.is_vt() {
            continue;
        }
        // Exclusion 1: attached by a CMT ("Return \"Gone with the Wind\"").
        if matches!(pclass, NodeClass::Token(TokenType::Cmt)) {
            continue;
        }
        // Exclusion 2: adjacent to an RNP — apposition or any direct NT
        // parent ("director Ron Howard").
        if pclass.is_nt() {
            continue;
        }
        // Exclusion 3: attached by a GOT that is attached by an RNP or
        // GVT ("the director … is Ron Howard"). The GOT's own attachment
        // is its *direct* parent: an intervening connection marker
        // ("published … after 1991") means the operator is attached to
        // the event, not to a name token, so the implicit NT is needed.
        if pclass.ot().is_some() {
            if let Some(gp) = tree.node(parent).parent {
                let gclass = tree.node(gp).class;
                if gclass.is_nt()
                    || gclass.is_vt()
                    || matches!(gclass, NodeClass::Token(TokenType::Ft(_)))
                {
                    continue;
                }
            }
        }
        // Insert an implicit NT: the element/attribute name(s) carrying
        // this value (or, for a disjunctive chain, any of its values).
        let mut values = vec![tree.node(vt).words.clone()];
        let mut cursor = vt;
        loop {
            let next = tree.node(cursor).children.iter().copied().find(|&c| {
                tree.node(c).class.is_vt() && tree.node(c).rel == nlparser::DepRel::ConjOr
            });
            match next {
                Some(c) => {
                    values.push(tree.node(c).words.clone());
                    cursor = c;
                }
                None => break,
            }
        }
        let mut names: Vec<String> = Vec::new();
        for value in &values {
            for n in catalog.labels_for_value(value) {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        if names.is_empty() {
            if let Ok(parsed) = values[0].trim().parse::<f64>() {
                if values.iter().all(|v| v.trim().parse::<f64>().is_ok()) {
                    names = catalog.numeric_labels_for(parsed);
                }
            }
        }
        if names.is_empty() {
            feedback.push(Feedback::error(FeedbackKind::NoSuchValue {
                value: values.join("\" or \""),
            }));
            continue;
        }
        let order = tree.node(vt).order;
        let rel = tree.node(vt).rel;
        let node = CNode {
            words: format!("[{}]", names.join("|")),
            lemma: names[0].clone(),
            class: NodeClass::Token(TokenType::Nt),
            parent: None,     // set by insert_above
            children: vec![], // set by insert_above
            rel,
            order,
            implicit: true,
            expansion: names,
        };
        tree.insert_above(vt, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use nlparser::parse;
    use xmldb::datasets::dblp::{generate, DblpConfig};
    use xmldb::datasets::movies::movies;

    fn validate_on_movies(q: &str) -> Validation {
        let doc = movies();
        let catalog = Catalog::build(&doc);
        validate(classify(&parse(q).unwrap()), &catalog)
    }

    fn validate_on_dblp(q: &str) -> Validation {
        let doc = generate(&DblpConfig::small());
        let catalog = Catalog::build(&doc);
        validate(classify(&parse(q).unwrap()), &catalog)
    }

    #[test]
    fn query2_is_valid_with_implicit_nt() {
        // Paper Fig. 2: node 11, the implicit director above "Ron Howard".
        let v = validate_on_movies(
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        assert!(v.is_valid(), "{:?}", v.feedback);
        let implicit: Vec<_> = v.tree.refs().filter(|&r| v.tree.node(r).implicit).collect();
        assert_eq!(implicit.len(), 1);
        assert_eq!(v.tree.node(implicit[0]).lemma, "director");
        // the implicit NT sits between the CM and the VT
        let vt = v
            .tree
            .refs()
            .find(|&r| v.tree.node(r).words == "Ron Howard")
            .unwrap();
        assert_eq!(v.tree.node(vt).parent, Some(implicit[0]));
    }

    #[test]
    fn query1_unknown_as_is_rejected_with_suggestion() {
        // Paper Fig. 10: Query 1 is invalid; the error message suggests
        // "the same as".
        let v = validate_on_movies(
            "Return every director who has directed as many movies as has Ron Howard.",
        );
        assert!(!v.is_valid());
        let has_suggestion = v.feedback.iter().any(|f| {
            matches!(
                &f.kind,
                FeedbackKind::UnknownTerm { term, suggestion: Some(s) }
                    if term == "as" && s == "the same as"
            )
        });
        assert!(has_suggestion, "{:?}", v.feedback);
    }

    #[test]
    fn copula_predicate_vt_gets_no_implicit_nt() {
        // "the director of each movie is Ron Howard" — the VT is
        // attached by an OT that is attached by an RNP: excluded.
        let v = validate_on_movies(
            "Return the total number of movies, where the director of each movie \
             is Ron Howard.",
        );
        assert!(v.is_valid(), "{:?}", v.feedback);
        assert!(v.tree.refs().all(|r| !v.tree.node(r).implicit));
    }

    #[test]
    fn apposition_vt_gets_no_implicit_nt() {
        let v = validate_on_movies("Find all the movies directed by director Ron Howard.");
        assert!(v.is_valid(), "{:?}", v.feedback);
        assert!(v.tree.refs().all(|r| !v.tree.node(r).implicit));
    }

    #[test]
    fn participle_vt_gets_implicit_nt() {
        let v = validate_on_movies("Find all the movies directed by Ron Howard.");
        assert!(v.is_valid(), "{:?}", v.feedback);
        let implicit: Vec<_> = v.tree.refs().filter(|&r| v.tree.node(r).implicit).collect();
        assert_eq!(implicit.len(), 1);
        assert_eq!(v.tree.node(implicit[0]).lemma, "director");
    }

    #[test]
    fn numeric_vt_uses_numeric_fallback() {
        // No element holds exactly "1991" in the movies data; against
        // DBLP "1991" may or may not literally occur — both paths must
        // resolve to year-like labels.
        let v = validate_on_dblp(
            "Return the title of every book published by Addison-Wesley after 1991.",
        );
        assert!(v.is_valid(), "{:?}", v.feedback);
        // Two implicit NTs: [publisher] above "Addison-Wesley" and
        // [year] above "1991".
        let implicit: Vec<_> = v.tree.refs().filter(|&r| v.tree.node(r).implicit).collect();
        assert_eq!(implicit.len(), 2);
        assert!(
            implicit
                .iter()
                .any(|&i| v.tree.node(i).expansion.contains(&"year".to_owned())),
            "{:?}",
            implicit
                .iter()
                .map(|&i| v.tree.node(i).expansion.clone())
                .collect::<Vec<_>>()
        );
        assert!(implicit.iter().any(|&i| v
            .tree
            .node(i)
            .expansion
            .contains(&"publisher".to_owned())));
    }

    #[test]
    fn unknown_value_is_an_error() {
        let v = validate_on_movies("Find all the movies directed by Stanley Kubrick.");
        assert!(!v.is_valid());
        assert!(v.feedback.iter().any(
            |f| matches!(&f.kind, FeedbackKind::NoSuchValue { value } if value == "Stanley Kubrick")
        ));
    }

    #[test]
    fn unknown_name_is_an_error_with_candidates() {
        let v = validate_on_movies("Return the spaceship of each movie.");
        assert!(!v.is_valid());
        assert!(v.feedback.iter().any(
            |f| matches!(&f.kind, FeedbackKind::NoSuchName { term, .. } if term == "spaceship")
        ));
    }

    #[test]
    fn thesaurus_resolves_film_to_movie() {
        let v = validate_on_movies("Return the director of each film.");
        assert!(v.is_valid(), "{:?}", v.feedback);
        let film = v
            .tree
            .refs()
            .find(|&r| v.tree.node(r).lemma == "film")
            .unwrap();
        assert_eq!(v.tree.node(film).expansion, vec!["movie".to_owned()]);
    }

    #[test]
    fn pronoun_warns_but_does_not_reject() {
        let v = validate_on_dblp("Return all books and their titles.");
        assert!(v.is_valid(), "{:?}", v.feedback);
        assert!(v
            .feedback
            .iter()
            .any(|f| matches!(&f.kind, FeedbackKind::PronounWarning { .. })));
    }

    #[test]
    fn incomplete_comparison_is_reported() {
        let v = validate_on_dblp("Return every book, where the year of the book is greater than.");
        assert!(!v.is_valid());
        assert!(
            v.feedback
                .iter()
                .any(|f| matches!(&f.kind, FeedbackKind::IncompleteComparison { .. })),
            "{:?}",
            v.feedback
        );
    }

    #[test]
    fn ambiguous_name_warns_and_expands() {
        // "name" occurs in DBLP (editor/name); "title" also matches via
        // thesaurus only when no exact match exists — here the exact
        // match wins, single name, no warning.
        let v = validate_on_dblp("Return the name of the editor of each book.");
        assert!(v.is_valid(), "{:?}", v.feedback);
    }

    #[test]
    fn valid_queries_have_no_errors() {
        for q in [
            "Return the title and the authors of every book.",
            "Return the title of every book, sorted by title.",
            "Find all titles that contain \"XML\".",
            "Return the lowest year for each title.",
        ] {
            let v = validate_on_dblp(q);
            assert!(v.is_valid(), "{q}: {:?}", v.feedback);
        }
    }
}
