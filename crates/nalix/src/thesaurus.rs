//! Ontology-based term expansion (paper Sec. 4, "Term Expansion").
//!
//! The paper resolves user vocabulary to database element/attribute
//! names "by ontology-based term expansion using generic thesaurus
//! WordNet and domain-specific ontology whenever one is available".
//! WordNet itself is a 150k-entry lexical database we cannot embed; what
//! NaLIX needs from it is only the synonym/hypernym neighbourhood of the
//! words users actually type against a bibliographic/movie database, so
//! we embed that neighbourhood as a static table and expose the same
//! operation: *given a user noun, which database labels could it mean?*
//!
//! The table is intentionally generic English (film → movie, writer →
//! author, cost → price …), not fitted to a specific document: the same
//! pairs appear in WordNet's synsets.

/// Synonym table: `(user word, equivalent word)`. Symmetric closure is
/// applied at lookup time.
const SYNONYMS: [(&str, &str); 30] = [
    ("film", "movie"),
    ("picture", "movie"),
    ("flick", "movie"),
    ("writer", "author"),
    ("novelist", "author"),
    ("creator", "author"),
    ("cost", "price"),
    ("fee", "price"),
    ("name", "title"),
    ("heading", "title"),
    ("filmmaker", "director"),
    ("publisher", "press"),
    ("company", "publisher"),
    ("firm", "publisher"),
    ("date", "year"),
    ("time", "year"),
    ("paper", "article"),
    ("publication", "article"),
    ("essay", "article"),
    ("work", "book"),
    ("volume", "book"),
    ("text", "book"),
    ("journal", "magazine"),
    ("periodical", "journal"),
    ("organization", "affiliation"),
    ("institution", "affiliation"),
    ("employer", "affiliation"),
    ("redactor", "editor"),
    ("segment", "section"),
    ("part", "chapter"),
];

/// All words the thesaurus considers equivalent to `word` (including
/// `word` itself), lower-case.
pub fn expansions(word: &str) -> Vec<String> {
    let w = word.to_lowercase();
    let mut out = vec![w.clone()];
    for (a, b) in SYNONYMS {
        if w == a && !out.iter().any(|x| x == b) {
            out.push(b.to_owned());
        }
        if w == b && !out.iter().any(|x| x == a) {
            out.push(a.to_owned());
        }
    }
    // One transitive hop (film → movie covers flick → movie → film).
    let first_hop: Vec<String> = out[1..].to_vec();
    for hop in first_hop {
        for (a, b) in SYNONYMS {
            if hop == a && !out.iter().any(|x| x == b) {
                out.push(b.to_owned());
            }
            if hop == b && !out.iter().any(|x| x == a) {
                out.push(a.to_owned());
            }
        }
    }
    out
}

/// Resolve a user word against the set of database labels: exact match
/// first, then thesaurus expansion. Returns the matching labels (there
/// may be several — the caller builds a disjunctive name test).
pub fn resolve<'a>(word: &str, labels: &[&'a str]) -> Vec<&'a str> {
    let w = word.to_lowercase();
    // Exact match wins outright.
    let exact: Vec<&str> = labels
        .iter()
        .copied()
        .filter(|l| l.to_lowercase() == w)
        .collect();
    if !exact.is_empty() {
        return exact;
    }
    let expanded = expansions(&w);
    labels
        .iter()
        .copied()
        .filter(|l| expanded.iter().any(|e| e == &l.to_lowercase()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_always_included() {
        assert!(expansions("movie").contains(&"movie".to_owned()));
    }

    #[test]
    fn symmetric_lookup() {
        assert!(expansions("film").contains(&"movie".to_owned()));
        assert!(expansions("movie").contains(&"film".to_owned()));
    }

    #[test]
    fn transitive_hop() {
        // flick → movie, film → movie ⇒ flick expands to film too.
        let e = expansions("flick");
        assert!(e.contains(&"movie".to_owned()));
        assert!(e.contains(&"film".to_owned()));
    }

    #[test]
    fn resolve_prefers_exact() {
        let labels = ["movie", "film"];
        assert_eq!(resolve("movie", &labels), vec!["movie"]);
    }

    #[test]
    fn resolve_uses_synonyms() {
        let labels = ["movie", "director", "title"];
        assert_eq!(resolve("film", &labels), vec!["movie"]);
        assert_eq!(resolve("name", &labels), vec!["title"]);
    }

    #[test]
    fn resolve_can_return_multiple() {
        let labels = ["book", "volume"];
        let hits = resolve("work", &labels);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn resolve_misses_cleanly() {
        let labels = ["movie"];
        assert!(resolve("spaceship", &labels).is_empty());
    }

    #[test]
    fn case_insensitive() {
        let labels = ["Movie"];
        assert_eq!(resolve("MOVIE", &labels), vec!["Movie"]);
    }
}
