//! Lowering the shared FLWOR plan to the `sqlq` SQL subset.
//!
//! The translator ([`crate::translate`]) emits a closed family of
//! Schema-Free XQuery shapes — `for` bindings over `doc()//label`
//! sources, aggregate `let`s holding inner FLWORs, a conjunctive
//! `where` of `mqf`/comparison/string-call/quantified parts, optional
//! `order by`, and a single-operand or `element result {…}` return.
//! Each shape has one relational image over the `relstore` tables:
//!
//! | FLWOR | SQL |
//! |---|---|
//! | `for $v in doc()//(a\|b)` | `FROM node AS v` + `v.label IN ('a','b')` |
//! | `mqf($a, $b, …)` | the dialect predicate `mqf(a, b, …)` |
//! | `$a op $b` / `$a op const` | `strval(a) op strval(b)` … |
//! | `contains($a, "x")` etc. | `contains(strval(a), 'x')` |
//! | `let $s := (for … return $x)` + `f($s)` | correlated scalar subquery `(SELECT f(strval(x)) FROM …)` |
//! | `every $q in S satisfies P` | `NOT EXISTS (SELECT q FROM S WHERE NOT P)` |
//! | `order by $k` | `ORDER BY strval(k)` + source-order `pre` tiebreakers |
//! | `return element result { a, b }` | `SELECT concat(…)` |
//!
//! Lowering is total over everything the pipeline emits; a shape
//! outside the family is a [`TranslateError`] (never reachable from a
//! validated question — the error exists so hand-built expressions fail
//! typed instead of silently).

use crate::translate::{TranslateError, Translation};
use sqlq::{
    FromItem, OrderSpec, PathAxis, Pred, Projection, Scalar, SqlAgg, SqlCmp, SqlQuery, StrFn,
};
use std::collections::HashMap;
use xquery::{AggFunc, Binding, CmpOp, Expr, OrderDir, PathRoot, Quantifier, Step, StepAxis};

fn err(msg: impl Into<String>) -> TranslateError {
    TranslateError {
        message: msg.into(),
    }
}

/// Lower a translation's emitted FLWOR plan into one [`SqlQuery`].
pub fn lower(t: &Translation) -> Result<SqlQuery, TranslateError> {
    lower_flwor(&t.query, true)
}

/// True when the plan carries an explicit `order by` from the question
/// (the [`crate::backend::AnswerSet`] `ordered` flag).
pub fn has_explicit_order(t: &Translation) -> bool {
    matches!(&t.query, Expr::Flwor { order_by, .. } if !order_by.is_empty())
}

fn cmp_op(op: CmpOp) -> SqlCmp {
    match op {
        CmpOp::Eq => SqlCmp::Eq,
        CmpOp::Ne => SqlCmp::Ne,
        CmpOp::Lt => SqlCmp::Lt,
        CmpOp::Le => SqlCmp::Le,
        CmpOp::Gt => SqlCmp::Gt,
        CmpOp::Ge => SqlCmp::Ge,
    }
}

fn agg_func(f: AggFunc) -> SqlAgg {
    match f {
        AggFunc::Count => SqlAgg::Count,
        AggFunc::Sum => SqlAgg::Sum,
        AggFunc::Min => SqlAgg::Min,
        AggFunc::Max => SqlAgg::Max,
        AggFunc::Avg => SqlAgg::Avg,
    }
}

/// `$v` as a bare variable reference.
fn as_bare_var(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path {
            root: PathRoot::Var(v),
            steps,
        } if steps.is_empty() => Some(v),
        _ => None,
    }
}

/// `doc()//name` / `doc()//(a|b)` as its label list.
fn as_doc_descendant(e: &Expr) -> Option<&[String]> {
    match e {
        Expr::Path {
            root: PathRoot::Doc(_),
            steps,
        } => match steps.as_slice() {
            [Step { names, .. }] if !names.is_empty() => Some(names),
            _ => None,
        },
        _ => None,
    }
}

/// The aggregate `let` bodies of the enclosing FLWOR, by variable name.
type Lets<'e> = HashMap<&'e str, &'e Expr>;

fn lower_flwor(e: &Expr, top: bool) -> Result<SqlQuery, TranslateError> {
    let Expr::Flwor {
        bindings,
        where_clause,
        order_by,
        ret,
    } = e
    else {
        return Err(err("SQL backend: plan is not a FLWOR expression"));
    };

    let mut from = Vec::new();
    let mut lets: Lets<'_> = HashMap::new();
    for b in bindings {
        match b {
            Binding::For { var, source } => {
                let labels = as_doc_descendant(source).ok_or_else(|| {
                    err(format!(
                        "SQL backend: `for ${var}` ranges over an unsupported source"
                    ))
                })?;
                from.push(FromItem {
                    alias: var.clone(),
                    labels: labels.to_vec(),
                });
            }
            Binding::Let { var, value } => {
                lets.insert(var.as_str(), value);
            }
        }
    }

    let mut preds = Vec::new();
    if let Some(w) = where_clause {
        // The translator's where is a flat conjunction; flatten it into
        // the query's conjunct list so pushdown sees each part.
        match w.as_ref() {
            Expr::And(parts) => {
                for p in parts {
                    preds.push(lower_pred(p, &lets)?);
                }
            }
            other => preds.push(lower_pred(other, &lets)?),
        }
    }

    let mut order = Vec::new();
    for k in order_by {
        let key = lower_scalar(&k.expr, &lets)?;
        order.push(OrderSpec {
            key,
            desc: matches!(k.dir, OrderDir::Descending),
        });
    }
    if top && !order.is_empty() {
        // The engine's order-by sort is stable over source-order
        // tuples; pre tiebreakers in binding order make that total
        // order explicit in the relational plan.
        for f in &from {
            order.push(OrderSpec {
                key: Scalar::Pre(f.alias.clone()),
                desc: false,
            });
        }
    }

    let projection = match ret.as_ref() {
        Expr::Element { content, .. } => {
            let mut items = Vec::with_capacity(content.len());
            for c in content {
                items.push(lower_scalar(c, &lets)?);
            }
            Projection::Concat(items)
        }
        single => Projection::Columns(vec![lower_scalar(single, &lets)?]),
    };

    Ok(SqlQuery {
        projection,
        from,
        preds,
        order_by: order,
    })
}

fn lower_scalar(e: &Expr, lets: &Lets<'_>) -> Result<Scalar, TranslateError> {
    if let Some(v) = as_bare_var(e) {
        return Ok(Scalar::Val(v.to_owned()));
    }
    match e {
        Expr::Str(s) => Ok(Scalar::Str(s.clone())),
        Expr::Num(n) => Ok(Scalar::Num(*n)),
        Expr::Path {
            root: PathRoot::Var(v),
            steps,
        } => match steps.as_slice() {
            [Step { axis, names }] if !names.is_empty() => Ok(Scalar::Nodes {
                alias: v.clone(),
                axis: match axis {
                    StepAxis::Child => PathAxis::Child,
                    StepAxis::Descendant => PathAxis::Descendant,
                },
                labels: names.clone(),
            }),
            _ => Err(err(format!("SQL backend: unsupported path under `${v}`"))),
        },
        Expr::Agg { func, arg } => {
            let query = match as_bare_var(arg) {
                Some(name) => {
                    let body = lets.get(name).ok_or_else(|| {
                        err(format!("SQL backend: aggregate over unbound `${name}`"))
                    })?;
                    lower_flwor(body, false)?
                }
                None => {
                    // Aggregate directly over a `doc()//label` source:
                    // an uncorrelated single-table subquery.
                    let labels = as_doc_descendant(arg)
                        .ok_or_else(|| err("SQL backend: unsupported aggregate argument"))?;
                    SqlQuery {
                        projection: Projection::Columns(vec![Scalar::Val("q0".into())]),
                        from: vec![FromItem {
                            alias: "q0".into(),
                            labels: labels.to_vec(),
                        }],
                        preds: vec![],
                        order_by: vec![],
                    }
                }
            };
            Ok(Scalar::Agg {
                func: agg_func(*func),
                query: Box::new(query),
            })
        }
        other => Err(err(format!(
            "SQL backend: unsupported scalar expression ({other:?})"
        ))),
    }
}

fn lower_pred(e: &Expr, lets: &Lets<'_>) -> Result<Pred, TranslateError> {
    match e {
        Expr::Mqf(args) => {
            let mut aliases = Vec::with_capacity(args.len());
            for a in args {
                let v = as_bare_var(a)
                    .ok_or_else(|| err("SQL backend: mqf over a non-variable argument"))?;
                aliases.push(v.to_owned());
            }
            Ok(Pred::Mqf(aliases))
        }
        Expr::Cmp { op, lhs, rhs } => Ok(Pred::Cmp {
            op: cmp_op(*op),
            lhs: lower_scalar(lhs, lets)?,
            rhs: lower_scalar(rhs, lets)?,
        }),
        Expr::And(parts) => Ok(Pred::And(
            parts
                .iter()
                .map(|p| lower_pred(p, lets))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Or(parts) => Ok(Pred::Or(
            parts
                .iter()
                .map(|p| lower_pred(p, lets))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Not(inner) => Ok(Pred::Not(Box::new(lower_pred(inner, lets)?))),
        Expr::Call { name, args } => {
            let func = match name.as_str() {
                "contains" => StrFn::Contains,
                "starts-with" => StrFn::StartsWith,
                "ends-with" => StrFn::EndsWith,
                other => {
                    return Err(err(format!(
                        "SQL backend: unsupported function call `{other}`"
                    )))
                }
            };
            let (lhs, rhs) = match args.as_slice() {
                [l, r] => (lower_scalar(l, lets)?, lower_scalar(r, lets)?),
                _ => return Err(err(format!("SQL backend: `{name}` expects 2 arguments"))),
            };
            Ok(Pred::StrFn { func, lhs, rhs })
        }
        Expr::Quantified {
            quant,
            var,
            source,
            satisfies,
        } => {
            let labels = as_doc_descendant(source)
                .ok_or_else(|| err("SQL backend: quantifier over an unsupported source"))?;
            let inner = lower_pred(satisfies, lets)?;
            // every $q in S satisfies P  ⇔  NOT EXISTS (S WHERE NOT P)
            // some  $q in S satisfies P  ⇔      EXISTS (S WHERE P)
            let (negated, pred) = match quant {
                Quantifier::Every => (true, Pred::Not(Box::new(inner))),
                Quantifier::Some => (false, inner),
            };
            Ok(Pred::Exists {
                negated,
                query: Box::new(SqlQuery {
                    projection: Projection::Columns(vec![Scalar::Val(var.clone())]),
                    from: vec![FromItem {
                        alias: var.clone(),
                        labels: labels.to_vec(),
                    }],
                    preds: vec![pred],
                    order_by: vec![],
                }),
            })
        }
        other => Err(err(format!(
            "SQL backend: unsupported predicate ({other:?})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::classify::classify;
    use crate::validate::validate;
    use xmldb::Document;

    fn translation(doc: &Document, q: &str) -> Translation {
        let catalog = Catalog::build(doc);
        let v = validate(classify(&nlparser::parse(q).unwrap()), &catalog);
        assert!(v.is_valid(), "{q}: {:?}", v.feedback);
        crate::translate::translate(&v.tree).unwrap()
    }

    #[test]
    fn lowers_a_selection_join() {
        let doc = xmldb::datasets::movies::movies();
        let t = translation(&doc, "Find all the movies directed by Ron Howard.");
        let q = lower(&t).unwrap();
        assert!(!q.from.is_empty());
        let text = sqlq::pretty(&q);
        assert!(text.contains("FROM node AS"), "{text}");
        assert!(text.contains("mqf("), "{text}");
        assert!(text.contains("'Ron Howard'"), "{text}");
    }

    #[test]
    fn lowers_an_aggregate_let_to_a_scalar_subquery() {
        let doc = xmldb::datasets::movies::movies();
        let t = translation(&doc, "Return the number of movies directed by Ron Howard.");
        let q = lower(&t).unwrap();
        let text = sqlq::pretty(&q);
        assert!(text.contains("count("), "{text}");
        assert!(text.contains("SELECT"), "{text}");
    }

    #[test]
    fn explicit_order_carries_pre_tiebreakers() {
        let doc = xmldb::datasets::movies::movies();
        let t = translation(&doc, "Return the title of every movie, sorted by year.");
        assert!(has_explicit_order(&t));
        let q = lower(&t).unwrap();
        assert!(
            q.order_by.len() > q.from.len(),
            "explicit key plus one pre tiebreaker per binding"
        );
        let text = sqlq::pretty(&q);
        assert!(text.contains("ORDER BY"), "{text}");
        assert!(text.contains(".pre"), "{text}");
    }

    #[test]
    fn unordered_plans_get_no_order_by() {
        let doc = xmldb::datasets::movies::movies();
        let t = translation(&doc, "Find all the movies directed by Ron Howard.");
        assert!(!has_explicit_order(&t));
        let q = lower(&t).unwrap();
        assert!(q.order_by.is_empty());
    }
}
