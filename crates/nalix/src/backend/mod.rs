//! The translation-backend abstraction: one validated parse tree, two
//! target query languages.
//!
//! NaLIX's pipeline is backend-neutral up to and including the shared
//! planner ([`crate::translate`]): parse → classify → validate →
//! translate all operate on the sentence and the catalog alone. A
//! *backend* decides what the plan compiles to and how it runs:
//!
//! - [`BackendKind::Xquery`] — the paper's target: the emitted
//!   Schema-Free XQuery expression, evaluated by the [`xquery`] engine
//!   over the node arena.
//! - [`BackendKind::Sql`] — the plan lowered to the [`sqlq`] SQL subset
//!   ([`sql::lower`]), executed over the [`relstore`] interval-table
//!   shredding of the same document.
//!
//! Both backends normalize their results into one [`AnswerSet`], so
//! answer-set equivalence is directly assertable — the CI equivalence
//! suite runs every user-study phrasing through both and compares (see
//! `docs/BACKENDS.md` for the methodology).

pub mod sql;

use crate::catalog::Catalog;
use crate::token::ClassifiedTree;
use crate::translate::{self, TranslateError, Translation};
use xquery::Expr;

/// Which translation backend answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Schema-Free XQuery over the node arena (the paper's target).
    #[default]
    Xquery,
    /// The SQL subset over the relational shredding.
    Sql,
}

impl BackendKind {
    /// Every backend, in default-first order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Xquery, BackendKind::Sql];

    /// The backend's wire name (the `backend` knob of `POST /query`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Xquery => "xquery",
            BackendKind::Sql => "sql",
        }
    }

    /// Parse a wire name (`"xquery"` / `"sql"`, ASCII-case-blind).
    /// `None` is the server's typed `backend.unknown` error.
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .find(|k| name.eq_ignore_ascii_case(k.name()))
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed, backend-specific query plan.
#[derive(Debug, Clone)]
pub enum QueryPlan {
    /// A Schema-Free XQuery expression.
    Xquery(Expr),
    /// A query of the `sqlq` SQL subset.
    Sql(sqlq::SqlQuery),
}

/// The output of [`Backend::compile`]: the typed plan plus everything
/// shared introspection needs.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Which backend produced the plan.
    pub backend: BackendKind,
    /// The typed plan.
    pub plan: QueryPlan,
    /// The shared planner's output (variable map, emitted FLWOR) — kept
    /// so explain output can show both forms.
    pub translation: Translation,
}

impl Compiled {
    /// The plan pretty-printed in its own language (what `/query`
    /// echoes and the golden snapshots pin).
    pub fn query_text(&self) -> String {
        match &self.plan {
            QueryPlan::Xquery(e) => xquery::pretty::pretty(e),
            QueryPlan::Sql(q) => sqlq::pretty(q),
        }
    }
}

/// A translation backend: validated parse tree + catalog in, typed
/// query plan out.
///
/// Both implementations share the planner (`translate::translate`) and
/// diverge only at emission, which is what makes their answer sets
/// provably comparable: any difference is a lowering or executor bug,
/// never a planning divergence.
pub trait Backend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Compile a validated tree against a catalog into a typed plan.
    fn compile(&self, tree: &ClassifiedTree, catalog: &Catalog)
        -> Result<Compiled, TranslateError>;
}

/// The XQuery backend: compilation *is* the shared planner's emission.
#[derive(Debug, Clone, Copy, Default)]
pub struct XqueryBackend;

impl Backend for XqueryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Xquery
    }

    fn compile(
        &self,
        tree: &ClassifiedTree,
        _catalog: &Catalog,
    ) -> Result<Compiled, TranslateError> {
        let translation = translate::translate(tree)?;
        Ok(Compiled {
            backend: BackendKind::Xquery,
            plan: QueryPlan::Xquery(translation.query.clone()),
            translation,
        })
    }
}

/// The SQL backend: the shared plan lowered to the `sqlq` subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlBackend;

impl Backend for SqlBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sql
    }

    fn compile(
        &self,
        tree: &ClassifiedTree,
        _catalog: &Catalog,
    ) -> Result<Compiled, TranslateError> {
        let translation = translate::translate(tree)?;
        let query = sql::lower(&translation)?;
        Ok(Compiled {
            backend: BackendKind::Sql,
            plan: QueryPlan::Sql(query),
            translation,
        })
    }
}

/// A backend's normalized answer: the flat string values, plus whether
/// the query imposed an explicit order.
///
/// Equivalence ([`AnswerSet::equivalent`]) is what the dual-backend CI
/// suite asserts: exact sequence equality when the question ordered its
/// results ("… sorted by year"), multiset equality otherwise — an
/// unordered FLWOR's tuple order is document order under both backends,
/// but only the multiset is semantically promised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerSet {
    /// The flat string values, in the backend's emission order.
    pub values: Vec<String>,
    /// True when the plan carried an explicit `order by` / `ORDER BY`
    /// from the question (not just source-order tiebreakers).
    pub ordered: bool,
}

impl AnswerSet {
    /// Build from a backend's output values.
    pub fn new(values: Vec<String>, ordered: bool) -> AnswerSet {
        AnswerSet { values, ordered }
    }

    /// Answer-set equivalence: exact when either side is explicitly
    /// ordered, multiset otherwise.
    pub fn equivalent(&self, other: &AnswerSet) -> bool {
        if self.ordered || other.ordered {
            return self.values == other.values;
        }
        let mut a = self.values.clone();
        let mut b = other.values.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("SQL"), Some(BackendKind::Sql));
        assert_eq!(BackendKind::parse("xQuery"), Some(BackendKind::Xquery));
        assert_eq!(BackendKind::parse("postgres"), None);
        assert_eq!(BackendKind::default(), BackendKind::Xquery);
    }

    #[test]
    fn answer_set_equivalence_modes() {
        let a = AnswerSet::new(vec!["x".into(), "y".into()], false);
        let b = AnswerSet::new(vec!["y".into(), "x".into()], false);
        assert!(a.equivalent(&b), "unordered compares as multiset");
        let a = AnswerSet::new(vec!["x".into(), "y".into()], true);
        let b = AnswerSet::new(vec!["y".into(), "x".into()], true);
        assert!(!a.equivalent(&b), "ordered compares exactly");
        let b = AnswerSet::new(vec!["x".into(), "y".into()], true);
        assert!(a.equivalent(&b));
        // Multiplicity matters even unordered.
        let a = AnswerSet::new(vec!["x".into(), "x".into()], false);
        let b = AnswerSet::new(vec!["x".into()], false);
        assert!(!a.equivalent(&b));
    }
}
