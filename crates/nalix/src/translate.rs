//! Translation of a validated parse tree into Schema-Free XQuery
//! (paper Secs. 3.2.2–3.2.4, Figures 4–8).
//!
//! The pipeline:
//!
//! 1. [`crate::binding::bind`] has grouped NTs into basic variables and
//!    variables into related sets.
//! 2. **Connection-marker rewriting** (Fig. 5): for the pattern
//!    `var1 + CM + (FT + var2)` ("the book **with** the lowest price") a
//!    fresh variable takes `var2`'s place next to `var1`, constrained to
//!    equal the aggregate over all of `var2`.
//! 3. **Grouping/nesting scope** for aggregates (Fig. 6): an aggregate
//!    over a non-core variable groups *per related core* — a fresh copy
//!    of the core iterates inside a `let`, value-joined to the outer
//!    core ("outer" scope, as in the paper's Fig. 8); an aggregate over
//!    a core variable (or with no relatable variable) pulls its whole
//!    related set inside the `let` ("inner" scope).
//! 4. **Quantifier scope** (Fig. 7): a universally quantified non-core,
//!    non-returned variable becomes `every $x in … satisfies (…)`.
//! 5. **Pattern mapping** (Fig. 4): operators, values and appositions
//!    become WHERE conditions; the command token's noun phrases become
//!    the RETURN clause; order-by tokens become ORDER BY.
//! 6. **MQF clauses**: one `mqf(…)` per related variable set with at
//!    least two members, inside the scope where those variables live.

use crate::binding::{bind, Binding, VarId};
use crate::semantics;
use crate::token::{ClassifiedTree, NodeClass, OpSem, QtKind, SortDir, TokenType};
use std::collections::HashMap;
use std::fmt;
use xquery::{AggFunc, Binding as XBinding, CmpOp, Expr, OrderDir, OrderKey};

/// Translation failure: the tree validated but uses a construct outside
/// the translator's coverage (reported to the user as feedback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// User-facing description.
    pub message: String,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot translate query: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

fn err(msg: impl Into<String>) -> TranslateError {
    TranslateError {
        message: msg.into(),
    }
}

/// A translated query plus introspection data (used by tests and the
/// explain output of the examples).
#[derive(Debug, Clone)]
pub struct Translation {
    /// The Schema-Free XQuery expression.
    pub query: Expr,
    /// `$variable name → element names` map for display.
    pub variables: Vec<(String, Vec<String>)>,
}

/// Scope of an aggregate's `let` (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Group per related core: fresh core copy + value join.
    Outer,
    /// The whole related set moves inside the `let`.
    Inner,
}

#[derive(Debug, Clone)]
struct WVar {
    names: Vec<String>,
    group: usize,
    /// The aggregate whose inner FLWOR hosts this variable.
    inner_of: Option<usize>,
    returned: bool,
    quant: Option<QtKind>,
    core: bool,
    /// Wrapped in a quantified expression rather than a `for`.
    quant_wrapped: bool,
}

#[derive(Debug, Clone)]
struct AggWork {
    func: AggFunc,
    arg: VarId,
    scope: Scope,
    core_copy: Option<VarId>,
    join_to: Option<VarId>,
    /// Set when the Fig. 5 connection-marker rewrite detached the
    /// argument: the aggregate then ranges over *all* bindings (solo
    /// scope), e.g. "the book with the lowest price".
    detached: bool,
}

#[derive(Debug, Clone)]
enum Operand {
    Var(VarId),
    Agg(usize),
    /// A constant with one or more alternatives — several when the
    /// query coordinates values disjunctively ("… is \"A\" or \"B\"").
    Const(Vec<String>),
}

#[derive(Debug, Clone)]
struct CondW {
    op: OpSem,
    neg: bool,
    lhs: Operand,
    rhs: Operand,
}

impl CondW {
    fn var_operands(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for o in [&self.lhs, &self.rhs] {
            if let Operand::Var(v) = o {
                out.push(*v);
            }
        }
        out
    }

    fn has_agg(&self) -> bool {
        matches!(self.lhs, Operand::Agg(_)) || matches!(self.rhs, Operand::Agg(_))
    }
}

/// Translate a validated tree. The [`Binding`] is computed internally.
pub fn translate(tree: &ClassifiedTree) -> Result<Translation, TranslateError> {
    let binding = bind(tree);
    Translator::new(tree, binding).run()
}

struct Translator<'a> {
    tree: &'a ClassifiedTree,
    binding: Binding,
    vars: Vec<WVar>,
    aggs: Vec<AggWork>,
    conds: Vec<CondW>,
    /// FT node → aggregate index.
    agg_of_ft: HashMap<usize, usize>,
    /// variable → aggregate over it (at most one supported).
    agg_of_var: HashMap<VarId, usize>,
    next_group: usize,
    order_by: Vec<(Option<VarId>, SortDir)>,
    returns: Vec<Operand>,
}

impl<'a> Translator<'a> {
    fn new(tree: &'a ClassifiedTree, binding: Binding) -> Self {
        let mut group_of: HashMap<VarId, usize> = HashMap::new();
        for (gi, g) in binding.groups.iter().enumerate() {
            for &v in g {
                group_of.insert(v, gi);
            }
        }
        let vars: Vec<WVar> = binding
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| WVar {
                names: v.names.clone(),
                group: group_of.get(&i).copied().unwrap_or(usize::MAX),
                inner_of: None,
                returned: false,
                quant: None,
                core: v.core,
                quant_wrapped: false,
            })
            .collect();
        let next_group = binding.groups.len();
        Translator {
            tree,
            binding,
            vars,
            aggs: Vec::new(),
            conds: Vec::new(),
            agg_of_ft: HashMap::new(),
            agg_of_var: HashMap::new(),
            next_group,
            order_by: Vec::new(),
            returns: Vec::new(),
        }
    }

    fn var_of(&self, nt: usize) -> Result<VarId, TranslateError> {
        self.binding
            .var_of
            .get(&nt)
            .copied()
            .ok_or_else(|| err(format!("internal: NT {nt} has no variable")))
    }

    fn fresh_var(&mut self, names: Vec<String>, group: usize) -> VarId {
        self.vars.push(WVar {
            names,
            group,
            inner_of: None,
            returned: false,
            quant: None,
            core: false,
            quant_wrapped: false,
        });
        self.vars.len() - 1
    }

    fn fresh_group(&mut self) -> usize {
        let g = self.next_group;
        self.next_group += 1;
        g
    }

    fn run(mut self) -> Result<Translation, TranslateError> {
        self.collect_returns_and_order()?;
        self.collect_aggregates()?;
        self.collect_quantifiers();
        self.collect_conditions()?;
        self.scope_aggregates()?;
        self.wrap_quantifiers();
        self.emit()
    }

    // ------------------------------------------------------------------
    // RETURN and ORDER BY (Fig. 4, last two rules)
    // ------------------------------------------------------------------

    fn collect_returns_and_order(&mut self) -> Result<(), TranslateError> {
        let root = self.tree.root;
        let mut pending: Vec<usize> = self.tree.node(root).children.clone();
        while let Some(c) = pending.pop() {
            let n = self.tree.node(c);
            match n.class {
                NodeClass::Token(TokenType::Nt) => {
                    let v = self.var_of(c)?;
                    self.vars[v].returned = true;
                    self.returns.push(Operand::Var(v));
                    // Conjoined noun phrases are returned too
                    // (RNP → RNP ∧ RNP).
                    for &k in &n.children {
                        if self.tree.node(k).class.is_nt() {
                            pending.push(k);
                        }
                    }
                }
                NodeClass::Token(TokenType::Ft(_)) => {
                    // "Return the total number of …" — resolved to the
                    // aggregate after collect_aggregates; remember the FT.
                    self.returns.push(Operand::Agg(usize::MAX - c));
                }
                NodeClass::Token(TokenType::Obt(dir)) => {
                    let key_nt = n
                        .children
                        .iter()
                        .copied()
                        .find(|&k| self.tree.node(k).class.is_nt());
                    let var = match key_nt {
                        Some(nt) => Some(self.var_of(nt)?),
                        None => None,
                    };
                    self.order_by.push((var, dir));
                }
                _ => {}
            }
        }
        // Sentence order for deterministic output.
        self.returns.sort_by_key(|op| match op {
            Operand::Var(v) => self
                .binding
                .vars
                .get(*v)
                .and_then(|vi| vi.nodes.first())
                .map(|&n| self.tree.node(n).order)
                .unwrap_or(usize::MAX),
            Operand::Agg(tag) => self.tree.node(usize::MAX - *tag).order,
            Operand::Const(_) => usize::MAX,
        });
        if self.returns.is_empty() {
            return Err(err("the query does not say what to return"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Aggregates (FT tokens) and the Fig. 5 connection-marker rewrite
    // ------------------------------------------------------------------

    fn collect_aggregates(&mut self) -> Result<(), TranslateError> {
        let fts: Vec<usize> = self
            .tree
            .refs()
            .filter(|&r| self.tree.node(r).class.ft().is_some())
            .collect();
        for ft in fts {
            let Some(func) = self.tree.node(ft).class.ft() else {
                continue; // filtered on ft() above
            };
            let target = semantics::attaches_to(self.tree, ft)
                .ok_or_else(|| err("an aggregate function has nothing to apply to"))?;
            if !self.tree.node(target).class.is_nt() {
                return Err(err(
                    "nested aggregate functions are not supported; please simplify",
                ));
            }
            let arg = self.var_of(target)?;
            if self.agg_of_var.contains_key(&arg) {
                return Err(err(
                    "two aggregate functions apply to the same item; please split the query",
                ));
            }
            let k = self.aggs.len();
            self.aggs.push(AggWork {
                func,
                arg,
                scope: Scope::Inner, // decided later
                core_copy: None,
                join_to: None,
                detached: false,
            });
            self.agg_of_ft.insert(ft, k);
            self.agg_of_var.insert(arg, k);

            // --- Fig. 5: var1 + CM + cmpvar ("book with the lowest
            // price"). Detect: the argument NT hangs below a connection
            // marker whose own parent is an NT that precedes it.
            let nt_node = target;
            if let Some(cm) = self.tree.node(nt_node).parent {
                let cm_is_marker = matches!(
                    self.tree.node(cm).class,
                    NodeClass::Marker(crate::token::MarkerType::Cm)
                );
                if cm_is_marker {
                    if let Some(u) = self.tree.node(cm).parent {
                        if self.tree.node(u).class.is_nt()
                            && self.tree.node(u).order < self.tree.node(nt_node).order
                            && !self.vars[arg].returned
                        {
                            let u_var = self.var_of(u)?;
                            // var2new joins var1's group…
                            let names = self.vars[arg].names.clone();
                            let group_u = self.vars[u_var].group;
                            let v2new = self.fresh_var(names, group_u);
                            // …var2 leaves it…
                            let g = self.fresh_group();
                            self.vars[arg].group = g;
                            // …constrained to equal the aggregate.
                            self.conds.push(CondW {
                                op: OpSem::Eq,
                                neg: false,
                                lhs: Operand::Var(v2new),
                                rhs: Operand::Agg(k),
                            });
                            self.aggs[k].detached = true;
                        }
                    }
                }
            }
        }
        // Resolve the return-FT placeholders now that aggregates exist,
        // and convert returned variables that carry an aggregate.
        for op in &mut self.returns {
            match op {
                Operand::Agg(tag) if *tag > self.aggs.len() => {
                    let ft = usize::MAX - *tag;
                    let k = self
                        .agg_of_ft
                        .get(&ft)
                        .copied()
                        .ok_or_else(|| err("internal: unresolved aggregate"))?;
                    *op = Operand::Agg(k);
                }
                Operand::Var(v) => {
                    if let Some(&k) = self.agg_of_var.get(v) {
                        self.vars[*v].returned = false;
                        *op = Operand::Agg(k);
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn collect_quantifiers(&mut self) {
        for r in self.tree.refs() {
            if let NodeClass::Token(TokenType::Qt(q)) = self.tree.node(r).class {
                if let Some(p) = self.tree.node(r).parent {
                    if self.tree.node(p).class.is_nt() {
                        if let Some(&v) = self.binding.var_of.get(&p) {
                            self.vars[v].quant = Some(q);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Conditions (Fig. 4 predicate patterns)
    // ------------------------------------------------------------------

    fn operand_for(&self, node: usize) -> Result<Operand, TranslateError> {
        let n = self.tree.node(node);
        match n.class {
            NodeClass::Token(TokenType::Nt) => {
                let v = self.var_of(node)?;
                if let Some(&k) = self.agg_of_var.get(&v) {
                    // Only when the FT is attached to *this* NT node does
                    // the operand denote the aggregate.
                    let has_ft_child = n
                        .children
                        .iter()
                        .any(|&c| self.tree.node(c).class.ft().is_some());
                    let ft_parent = n
                        .parent
                        .map(|p| self.tree.node(p).class.ft().is_some())
                        .unwrap_or(false);
                    if has_ft_child || ft_parent {
                        return Ok(Operand::Agg(k));
                    }
                }
                Ok(Operand::Var(v))
            }
            NodeClass::Token(TokenType::Ft(_)) => {
                let k = self
                    .agg_of_ft
                    .get(&node)
                    .copied()
                    .ok_or_else(|| err("internal: FT without aggregate"))?;
                Ok(Operand::Agg(k))
            }
            NodeClass::Token(TokenType::Vt) => {
                // Number words carry their digit form in the lemma
                // ("one" → "1"); quoted/proper values use the surface.
                // A disjunctive chain ("\"A\" or \"B\"") contributes all
                // its values as alternatives.
                let value_of = |k: usize| {
                    let kn = self.tree.node(k);
                    if kn.lemma.trim().parse::<f64>().is_ok() {
                        kn.lemma.clone()
                    } else {
                        kn.words.clone()
                    }
                };
                let mut values = vec![value_of(node)];
                let mut cursor = node;
                loop {
                    let next = self.tree.node(cursor).children.iter().copied().find(|&c| {
                        self.tree.node(c).class.is_vt()
                            && self.tree.node(c).rel == nlparser::DepRel::ConjOr
                    });
                    match next {
                        Some(c) => {
                            values.push(value_of(c));
                            cursor = c;
                        }
                        None => break,
                    }
                }
                Ok(Operand::Const(values))
            }
            _ => Err(err(format!(
                "\"{}\" cannot be used as a comparison operand",
                n.words
            ))),
        }
    }

    fn collect_conditions(&mut self) -> Result<(), TranslateError> {
        // --- Operator tokens.
        let ots: Vec<usize> = self
            .tree
            .refs()
            .filter(|&r| self.tree.node(r).class.ot().is_some())
            .collect();
        for ot in ots {
            let Some(op) = self.tree.node(ot).class.ot() else {
                continue; // filtered on ot() above
            };
            let neg = self
                .tree
                .node(ot)
                .children
                .iter()
                .any(|&c| matches!(self.tree.node(c).class, NodeClass::Token(TokenType::Neg)));
            let mut operands: Vec<usize> = self
                .tree
                .node(ot)
                .children
                .iter()
                .copied()
                .filter(|&c| {
                    matches!(
                        self.tree.node(c).class,
                        NodeClass::Token(TokenType::Nt | TokenType::Vt | TokenType::Ft(_))
                    )
                })
                .collect();
            operands.sort_by_key(|&c| self.tree.node(c).order);
            match operands.len() {
                2 => {
                    let lhs = self.operand_for(operands[0])?;
                    let rhs = self.operand_for(operands[1])?;
                    self.conds.push(CondW { op, neg, lhs, rhs });
                }
                1 => {
                    // Operand pair = (token parent, child) — unless the
                    // child is an implicit NT, whose own NT+VT pattern
                    // yields the condition below.
                    if self.tree.node(operands[0]).implicit {
                        continue;
                    }
                    let parent = self.tree.parent_skipping_markers(ot);
                    let Some(p) = parent else { continue };
                    if !matches!(
                        self.tree.node(p).class,
                        NodeClass::Token(TokenType::Nt | TokenType::Vt | TokenType::Ft(_))
                    ) {
                        continue;
                    }
                    let lhs = self.operand_for(p)?;
                    let rhs = self.operand_for(operands[0])?;
                    self.conds.push(CondW { op, neg, lhs, rhs });
                }
                _ => {}
            }
        }

        // --- NT with a VT child: apposition ("director Ron Howard") and
        // implicit NTs. The operator is inherited from an OT parent when
        // there is one ("[year] 1991" under "after"), else equality.
        for r in self.tree.refs() {
            let n = self.tree.node(r);
            if !n.class.is_nt() {
                continue;
            }
            let Some(vt) = n
                .children
                .iter()
                .copied()
                .find(|&c| self.tree.node(c).class.is_vt())
            else {
                continue;
            };
            let parent_ot = n
                .parent
                .and_then(|p| self.tree.node(p).class.ot().map(|o| (p, o)));
            let (op, neg) = match parent_ot {
                Some((p, o)) => {
                    let neg = self.tree.node(p).children.iter().any(|&c| {
                        matches!(self.tree.node(c).class, NodeClass::Token(TokenType::Neg))
                    });
                    (o, neg)
                }
                None => (OpSem::Eq, false),
            };
            let v = self.var_of(r)?;
            let rhs = self.operand_for(vt)?;
            self.conds.push(CondW {
                op,
                neg,
                lhs: Operand::Var(v),
                rhs,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Aggregate scope (Fig. 6)
    // ------------------------------------------------------------------

    fn scope_aggregates(&mut self) -> Result<(), TranslateError> {
        for k in 0..self.aggs.len() {
            let arg = self.aggs[k].arg;
            if self.aggs[k].detached {
                // Fig. 5 already isolated the argument: solo scope.
                self.aggs[k].scope = Scope::Inner;
                self.vars[arg].inner_of = Some(k);
                continue;
            }
            if self.vars[arg].core {
                // Inner scope: the whole related set moves inside.
                self.aggs[k].scope = Scope::Inner;
                let g = self.vars[arg].group;
                for v in 0..self.vars.len() {
                    if self.vars[v].group == g {
                        self.vars[v].inner_of = Some(k);
                    }
                }
                continue;
            }
            // Find the grouping partner: a core in the same related set,
            // else a directly-related variable, else any related
            // variable.
            let g = self.vars[arg].group;
            let core = (0..self.vars.len())
                .find(|&v| v != arg && self.vars[v].group == g && self.vars[v].core)
                .or_else(|| {
                    // directly-related variable
                    let arg_nodes = &self.binding.vars[arg].nodes;
                    self.binding
                        .semantics
                        .directly_related
                        .iter()
                        .find_map(|&(a, b)| {
                            if arg_nodes.contains(&a) {
                                self.binding.var_of.get(&b).copied().filter(|&v| v != arg)
                            } else if arg_nodes.contains(&b) {
                                self.binding.var_of.get(&a).copied().filter(|&v| v != arg)
                            } else {
                                None
                            }
                        })
                })
                .or_else(|| (0..self.vars.len()).find(|&v| v != arg && self.vars[v].group == g));
            match core {
                Some(c) if self.vars[c].inner_of.is_none() => {
                    // Outer scope (paper Fig. 8): fresh copy of the core
                    // iterates inside, value-joined to the outer core.
                    let names = self.vars[c].names.clone();
                    let g2 = self.fresh_group();
                    let copy = self.fresh_var(names, g2);
                    self.vars[copy].inner_of = Some(k);
                    self.vars[arg].group = g2;
                    self.vars[arg].inner_of = Some(k);
                    self.aggs[k].scope = Scope::Outer;
                    self.aggs[k].core_copy = Some(copy);
                    self.aggs[k].join_to = Some(c);
                }
                _ => {
                    // Solo grouping: aggregate over all bindings.
                    self.aggs[k].scope = Scope::Inner;
                    self.vars[arg].inner_of = Some(k);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Quantifier scope (Fig. 7), simplified to the supported pattern
    // ------------------------------------------------------------------

    fn wrap_quantifiers(&mut self) {
        for v in 0..self.vars.len() {
            if self.vars[v].quant != Some(QtKind::Every) {
                continue;
            }
            if self.vars[v].returned || self.vars[v].core || self.vars[v].inner_of.is_some() {
                continue;
            }
            // Only wrap when the variable participates in a value
            // condition — otherwise universal quantification over an
            // existential join is a no-op.
            let has_cond = self
                .conds
                .iter()
                .any(|c| c.var_operands().contains(&v) && !c.has_agg());
            if has_cond {
                self.vars[v].quant_wrapped = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    fn var_name(&self, v: VarId) -> String {
        format!("v{}", v + 1)
    }

    fn let_name(&self, k: usize) -> String {
        format!("vars{}", k + 1)
    }

    fn var_source(&self, v: VarId) -> Expr {
        Expr::doc_descendant_any(self.vars[v].names.clone())
    }

    /// Each operand expands to one expression per alternative (only
    /// disjunctive constants have more than one).
    fn operand_exprs(&self, op: &Operand) -> Vec<Expr> {
        match op {
            Operand::Var(v) => vec![Expr::var(self.var_name(*v))],
            Operand::Agg(k) => vec![Expr::Agg {
                func: self.aggs[*k].func,
                arg: Box::new(Expr::var(self.let_name(*k))),
            }],
            Operand::Const(values) => values
                .iter()
                .map(|c| match c.trim().parse::<f64>() {
                    Ok(n) => Expr::Num(n),
                    Err(_) => Expr::Str(c.clone()),
                })
                .collect(),
        }
    }

    fn operand_expr(&self, op: &Operand) -> Expr {
        // Every operand carries at least one alternative by
        // construction; an empty one degrades to the empty string.
        self.operand_exprs(op)
            .into_iter()
            .next()
            .unwrap_or_else(|| Expr::Str(String::new()))
    }

    fn cond_expr(&self, c: &CondW) -> Expr {
        let lhs_alts = self.operand_exprs(&c.lhs);
        let rhs_alts = self.operand_exprs(&c.rhs);
        let mut parts = Vec::with_capacity(lhs_alts.len() * rhs_alts.len());
        for lhs in &lhs_alts {
            for rhs in &rhs_alts {
                let part = match c.op.cmp_op() {
                    Some(op) => Expr::cmp(op, lhs.clone(), rhs.clone()),
                    None => {
                        let name = match c.op {
                            OpSem::Contains => "contains",
                            OpSem::StartsWith => "starts-with",
                            OpSem::EndsWith => "ends-with",
                            // cmp_op() is None only for the string
                            // operators above; a new operator without
                            // a cmp_op falls back to equality.
                            _ => {
                                parts.push(Expr::cmp(CmpOp::Eq, lhs.clone(), rhs.clone()));
                                continue;
                            }
                        };
                        Expr::Call {
                            name: name.into(),
                            args: vec![lhs.clone(), rhs.clone()],
                        }
                    }
                };
                parts.push(part);
            }
        }
        let base = match parts.pop() {
            Some(only) if parts.is_empty() => only,
            Some(last) => {
                parts.push(last);
                Expr::Or(parts)
            }
            None => Expr::Or(parts),
        };
        if c.neg {
            Expr::Not(Box::new(base))
        } else {
            base
        }
    }

    /// The mqf clauses for a set of variables, grouped by group id.
    fn mqf_clauses(&self, vars: &[VarId]) -> Vec<Expr> {
        let mut by_group: HashMap<usize, Vec<VarId>> = HashMap::new();
        for &v in vars {
            by_group.entry(self.vars[v].group).or_default().push(v);
        }
        let mut groups: Vec<_> = by_group.into_iter().collect();
        groups.sort();
        groups
            .into_iter()
            .filter(|(_, vs)| vs.len() >= 2)
            .map(|(_, mut vs)| {
                vs.sort();
                Expr::Mqf(vs.iter().map(|&v| Expr::var(self.var_name(v))).collect())
            })
            .collect()
    }

    fn emit(self) -> Result<Translation, TranslateError> {
        // Partition conditions: a condition is inner to aggregate `k`
        // when all its variable operands live inside `k` and it has no
        // aggregate operand.
        let mut inner_conds: HashMap<usize, Vec<&CondW>> = HashMap::new();
        let mut quant_conds: HashMap<VarId, Vec<&CondW>> = HashMap::new();
        let mut outer_conds: Vec<&CondW> = Vec::new();
        for c in &self.conds {
            let vars = c.var_operands();
            if !c.has_agg() && !vars.is_empty() {
                let inner_k: Vec<Option<usize>> =
                    vars.iter().map(|&v| self.vars[v].inner_of).collect();
                if let Some(Some(k)) = inner_k.first() {
                    if inner_k.iter().all(|x| *x == Some(*k)) {
                        inner_conds.entry(*k).or_default().push(c);
                        continue;
                    }
                }
                if let Some(&qv) = vars.iter().find(|&&v| self.vars[v].quant_wrapped) {
                    quant_conds.entry(qv).or_default().push(c);
                    continue;
                }
            }
            outer_conds.push(c);
        }

        // Outer for-clauses.
        let outer_vars: Vec<VarId> = (0..self.vars.len())
            .filter(|&v| self.vars[v].inner_of.is_none() && !self.vars[v].quant_wrapped)
            .collect();
        let mut bindings: Vec<XBinding> = outer_vars
            .iter()
            .map(|&v| XBinding::For {
                var: self.var_name(v),
                source: self.var_source(v),
            })
            .collect();

        // Aggregate lets.
        for (k, agg) in self.aggs.iter().enumerate() {
            let inner_vars: Vec<VarId> = (0..self.vars.len())
                .filter(|&v| self.vars[v].inner_of == Some(k))
                .collect();
            let inner_bindings: Vec<XBinding> = inner_vars
                .iter()
                .map(|&v| XBinding::For {
                    var: self.var_name(v),
                    source: self.var_source(v),
                })
                .collect();
            let mut where_parts: Vec<Expr> = self.mqf_clauses(&inner_vars);
            if let (Some(copy), Some(join)) = (agg.core_copy, agg.join_to) {
                where_parts.push(Expr::cmp(
                    CmpOp::Eq,
                    Expr::var(self.var_name(copy)),
                    Expr::var(self.var_name(join)),
                ));
            }
            for c in inner_conds.get(&k).map(Vec::as_slice).unwrap_or(&[]) {
                where_parts.push(self.cond_expr(c));
            }
            let where_clause = match where_parts.pop() {
                Some(only) if where_parts.is_empty() => Some(Box::new(only)),
                Some(last) => {
                    where_parts.push(last);
                    Some(Box::new(Expr::And(where_parts)))
                }
                None => None,
            };
            let inner = Expr::Flwor {
                bindings: inner_bindings,
                where_clause,
                order_by: vec![],
                ret: Box::new(Expr::var(self.var_name(agg.arg))),
            };
            bindings.push(XBinding::Let {
                var: self.let_name(k),
                value: inner,
            });
        }

        // Outer WHERE: mqf per group + conditions + quantified blocks.
        let mut where_parts: Vec<Expr> = self.mqf_clauses(&outer_vars);
        for c in outer_conds {
            where_parts.push(self.cond_expr(c));
        }
        for (qv, conds) in {
            let mut qs: Vec<_> = quant_conds.into_iter().collect();
            qs.sort_by_key(|(v, _)| *v);
            qs
        } {
            // every $q in doc()//names satisfies
            //   (not(mqf($q, partners)) or (conds))
            let partners: Vec<VarId> = outer_vars
                .iter()
                .copied()
                .filter(|&v| self.vars[v].group == self.vars[qv].group)
                .collect();
            let mut cond_parts: Vec<Expr> = conds.iter().map(|c| self.cond_expr(c)).collect();
            let conds_expr = match cond_parts.pop() {
                Some(only) if cond_parts.is_empty() => only,
                Some(last) => {
                    cond_parts.push(last);
                    Expr::And(cond_parts)
                }
                None => Expr::And(cond_parts),
            };
            let satisfies = if partners.is_empty() {
                conds_expr
            } else {
                let mut mqf_args = vec![Expr::var(self.var_name(qv))];
                mqf_args.extend(partners.iter().map(|&p| Expr::var(self.var_name(p))));
                Expr::Or(vec![Expr::Not(Box::new(Expr::Mqf(mqf_args))), conds_expr])
            };
            where_parts.push(Expr::Quantified {
                quant: xquery::Quantifier::Every,
                var: self.var_name(qv),
                source: Box::new(self.var_source(qv)),
                satisfies: Box::new(satisfies),
            });
        }
        let where_clause = match where_parts.pop() {
            Some(only) if where_parts.is_empty() => Some(Box::new(only)),
            Some(last) => {
                where_parts.push(last);
                Some(Box::new(Expr::And(where_parts)))
            }
            None => None,
        };

        // ORDER BY.
        let order_by: Vec<OrderKey> = self
            .order_by
            .iter()
            .map(|(v, dir)| {
                let key_var = v.or_else(|| match self.returns.first() {
                    Some(Operand::Var(rv)) => Some(*rv),
                    _ => None,
                });
                let expr = match key_var {
                    Some(kv) => Expr::var(self.var_name(kv)),
                    None => Expr::Str(String::new()),
                };
                OrderKey {
                    expr,
                    dir: match dir {
                        SortDir::Asc => OrderDir::Ascending,
                        SortDir::Desc => OrderDir::Descending,
                    },
                }
            })
            .collect();

        // RETURN.
        let mut ret_exprs: Vec<Expr> = self
            .returns
            .iter()
            .map(|op| self.operand_expr(op))
            .collect();
        let ret = match ret_exprs.pop() {
            Some(only) if ret_exprs.is_empty() => only,
            Some(last) => {
                ret_exprs.push(last);
                Expr::Element {
                    name: "result".into(),
                    content: ret_exprs,
                }
            }
            None => Expr::Element {
                name: "result".into(),
                content: ret_exprs,
            },
        };

        let variables: Vec<(String, Vec<String>)> = (0..self.vars.len())
            .map(|v| (self.var_name(v), self.vars[v].names.clone()))
            .collect();

        Ok(Translation {
            query: Expr::Flwor {
                bindings,
                where_clause,
                order_by,
                ret: Box::new(ret),
            },
            variables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::classify::classify;
    use crate::validate::validate;
    use nlparser::parse;
    use xmldb::Document;
    use xquery::{pretty::pretty, Engine};

    fn translate_on(doc: &Document, q: &str) -> Translation {
        let catalog = Catalog::build(doc);
        let v = validate(classify(&parse(q).unwrap()), &catalog);
        assert!(v.is_valid(), "{q}: {:?}", v.feedback);
        translate(&v.tree).unwrap_or_else(|e| panic!("{q}: {e}\n{}", v.tree.outline()))
    }

    fn run_query(doc: &Document, q: &str) -> Vec<String> {
        let t = translate_on(doc, q);
        let engine = Engine::new(doc.clone());
        let out = engine
            .eval_expr(&t.query)
            .unwrap_or_else(|e| panic!("{q}: {e}\n{}", pretty(&t.query)));
        engine.strings(&out)
    }

    #[test]
    fn query2_full_pipeline_matches_paper() {
        // End-to-end: Query 2 ("as many movies as Ron Howard") against
        // Figure 1 data returns Ron Howard and Steven Soderbergh.
        let doc = xmldb::datasets::movies::movies();
        let mut out = run_query(
            &doc,
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        out.sort();
        out.dedup();
        assert_eq!(out, vec!["Ron Howard", "Steven Soderbergh"]);
    }

    #[test]
    fn query2_translation_shape_matches_figure9() {
        let doc = xmldb::datasets::movies::movies();
        let t = translate_on(
            &doc,
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        let text = pretty(&t.query);
        // two director for-clauses at the outer level, two lets with
        // movie+director inside, a count comparison, the value join and
        // the constant condition (paper Figure 9).
        assert!(text.contains("let $vars1 := {"), "{text}");
        assert!(text.contains("let $vars2 := {"), "{text}");
        assert!(text.contains("count($vars1) = count($vars2)"), "{text}");
        assert!(text.contains("= \"Ron Howard\""), "{text}");
        assert!(text.contains("mqf("), "{text}");
    }

    #[test]
    fn query3_value_join() {
        let doc = xmldb::datasets::movies::movies_and_books();
        let mut out = run_query(
            &doc,
            "Return the directors of movies, where the title of each movie is \
             the same as the title of a book.",
        );
        out.sort();
        out.dedup();
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn lowest_price_for_each_book_groups_per_book() {
        // Paper Sec. 3.2.3: "for the first query, the scope of min() is
        // within each book".
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>A</title><price>10</price><price>20</price></book>\
             <book><title>B</title><price>30</price><price>40</price></book>\
             </bib>",
        )
        .unwrap();
        let mut out = run_query(&doc, "Return the lowest price for each book.");
        out.sort();
        assert_eq!(out, vec!["10", "30"]);
    }

    #[test]
    fn book_with_the_lowest_price_is_global() {
        // "…but for the second query, the scope of min() is among all
        // the books."
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>A</title><price>10</price></book>\
             <book><title>B</title><price>30</price></book>\
             </bib>",
        )
        .unwrap();
        let out = run_query(&doc, "Return the book with the lowest price.");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains('A'), "{out:?}");
    }

    #[test]
    fn total_number_with_condition_nests_inner() {
        let doc = xmldb::datasets::movies::movies();
        let out = run_query(
            &doc,
            "Return the total number of movies, where the director of each movie \
             is Ron Howard.",
        );
        // Ron Howard appears as two director nodes with that value; each
        // yields the same count of 2.
        assert!(!out.is_empty());
        assert!(out.iter().all(|x| x == "2"), "{out:?}");
    }

    #[test]
    fn movies_directed_by_ron_howard() {
        let doc = xmldb::datasets::movies::movies();
        let mut out = run_query(&doc, "Find all the movies directed by Ron Howard.");
        out.sort();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("A Beautiful Mind"));
        assert!(out[1].contains("How the Grinch Stole Christmas"));
    }

    #[test]
    fn apposition_form_gives_same_result() {
        let doc = xmldb::datasets::movies::movies();
        let out = run_query(&doc, "Find all the movies directed by director Ron Howard.");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn schema_free_title_lookup() {
        let doc = xmldb::datasets::movies::movies();
        let out = run_query(
            &doc,
            "Return the director of the movie, where the title of the movie is \"Traffic\".",
        );
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn order_by_emits_sorted_results() {
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>Zebra</title></book>\
             <book><title>Apple</title></book>\
             <book><title>Mango</title></book>\
             </bib>",
        )
        .unwrap();
        let out = run_query(&doc, "Return the title of every book, sorted by title.");
        assert_eq!(out, vec!["Apple", "Mango", "Zebra"]);
    }

    #[test]
    fn contains_condition() {
        let doc = xmldb::Document::parse_str(
            "<bib><book><title>XML Handbook</title></book>\
             <book><title>Rust in Action</title></book></bib>",
        )
        .unwrap();
        let out = run_query(&doc, "Find all titles that contain \"XML\".");
        assert_eq!(out, vec!["XML Handbook"]);
    }

    #[test]
    fn negated_condition() {
        let doc = xmldb::Document::parse_str(
            "<bib><book><title>A</title><publisher>Springer</publisher></book>\
             <book><title>B</title><publisher>MIT Press</publisher></book></bib>",
        )
        .unwrap();
        let out = run_query(
            &doc,
            "Return the title of each book, where the publisher of the book is not \"Springer\".",
        );
        assert_eq!(out, vec!["B"]);
    }

    #[test]
    fn multiple_returns_wrap_in_result_element() {
        let doc = xmldb::Document::parse_str(
            "<bib><book><title>T</title><author>A</author></book></bib>",
        )
        .unwrap();
        let t = translate_on(&doc, "Return the title and the authors of every book.");
        match &t.query {
            Expr::Flwor { ret, .. } => {
                assert!(matches!(**ret, Expr::Element { .. }));
            }
            other => panic!("{other:?}"),
        }
        let out = run_query(&doc, "Return the title and the authors of every book.");
        assert_eq!(out, vec!["TA"]);
    }

    #[test]
    fn at_least_count_condition() {
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>Solo</title><author>X</author></book>\
             <book><title>None</title></book>\
             <book><title>Duo</title><author>Y</author><author>Z</author></book>\
             </bib>",
        )
        .unwrap();
        let out = run_query(
            &doc,
            "Return the title of every book, where the number of authors of the \
             book is at least 1.",
        );
        // one row per (book, author-set) — Duo returned once, Solo once
        let mut dedup = out.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup, vec!["Duo", "Solo"]);
    }

    #[test]
    fn published_after_year() {
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>Old</title><publisher>Addison-Wesley</publisher><year>1984</year></book>\
             <book><title>New</title><publisher>Addison-Wesley</publisher><year>1994</year></book>\
             <book><title>Other</title><publisher>Springer</publisher><year>2000</year></book>\
             </bib>",
        )
        .unwrap();
        let mut out = run_query(
            &doc,
            "Return the title of every book published by Addison-Wesley after 1991.",
        );
        out.sort();
        out.dedup();
        assert_eq!(out, vec!["New"]);
    }

    #[test]
    fn thesaurus_backed_query() {
        let doc = xmldb::datasets::movies::movies();
        let out = run_query(
            &doc,
            "Return the director of the film, where the title of the film is \"Tribute\".",
        );
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn min_year_per_title() {
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>PDB</title><year>1980</year></book>\
             <book><title>PDB</title><year>1988</year></book>\
             <book><title>OSC</title><year>1991</year></book>\
             </bib>",
        )
        .unwrap();
        let mut out = run_query(&doc, "Return the lowest year for each title.");
        out.sort();
        out.dedup();
        assert_eq!(out, vec!["1980", "1991"]);
    }

    #[test]
    fn disjunctive_values() {
        // Paper Sec. 7 lists disjunction as future work; this
        // reproduction supports value disjunction.
        let doc = xmldb::Document::parse_str(
            "<bib>\
             <book><title>A</title><publisher>Springer</publisher></book>\
             <book><title>B</title><publisher>MIT Press</publisher></book>\
             <book><title>C</title><publisher>Elsevier</publisher></book>\
             </bib>",
        )
        .unwrap();
        let mut out = run_query(
            &doc,
            "Return the title of each book, where the publisher of the book is \
             \"Springer\" or \"MIT Press\".",
        );
        out.sort();
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn disjunctive_values_via_participle() {
        let doc = xmldb::datasets::movies::movies();
        let mut out = run_query(
            &doc,
            "Find all the movies directed by \"Ron Howard\" or \"Peter Jackson\".",
        );
        out.sort();
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn disjunctive_name_tokens_merge_variables() {
        let doc = xmldb::datasets::dblp::generate(&xmldb::datasets::dblp::DblpConfig::small());
        let t = translate_on(&doc, "Return the title of every book or article.");
        // one variable over both names
        assert!(
            t.variables
                .iter()
                .any(|(_, names)| names.contains(&"book".to_owned())
                    && names.contains(&"article".to_owned())),
            "{:?}",
            t.variables
        );
        let engine = Engine::new(doc.clone());
        let out = engine.eval_expr(&t.query).unwrap();
        // titles of all books AND articles
        assert_eq!(out.len(), doc.nodes_labeled("title").len());
    }

    #[test]
    fn variables_are_reported() {
        let doc = xmldb::datasets::movies::movies();
        let t = translate_on(&doc, "Return the director of each movie.");
        assert!(t
            .variables
            .iter()
            .any(|(_, names)| names == &vec!["director".to_owned()]));
    }
}
