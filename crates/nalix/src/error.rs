//! The typed error taxonomy of the NL→answer path.
//!
//! The paper's central UX claim (Sec. 4) is that NaLIX never dies on
//! bad input: every unsupported question produces a query-specific
//! error message *with a rephrasing suggestion*, which is what makes
//! the interactive reformulation loop work. [`QueryError`] is that
//! claim as a type: one variant per pipeline stage where a question can
//! fail, each carrying the offending token or span and a non-empty,
//! paper-style suggestion (Table 6 / Sec. 4.1). [`crate::Nalix::answer`]
//! returns it; nothing on the path panics.

use crate::feedback::{Feedback, FeedbackKind, Severity};
use crate::translate::TranslateError;
use crate::Rejected;
use nlparser::ParseFailure;
use std::fmt;
use xquery::{EvalError, ExhaustedResource};

/// A failed natural language query: which stage rejected it, what the
/// offending token was, and how the user should rephrase.
#[derive(Debug, Clone)]
pub enum QueryError {
    /// The dependency parser could not build a tree (Table 6 row
    /// "ungrammatical input": e.g. a dangling conjunction, a comma
    /// where a word was expected, an unterminated quotation).
    Parse {
        /// What the parser reported, in user terms.
        message: String,
        /// Word index (0-based) of the offending token.
        position: usize,
        /// How to rephrase.
        suggestion: String,
    },
    /// One or more words could not be classified into any token or
    /// marker type — they are outside the system vocabulary (the
    /// paper's "unknown term" class, Sec. 4.1, e.g. bare "as").
    Classify {
        /// The offending terms, in sentence order.
        terms: Vec<String>,
        /// The per-term feedback items (message + replacement).
        feedback: Vec<Feedback>,
        /// How to rephrase.
        suggestion: String,
    },
    /// Every word classified, but the tree violates the supported
    /// grammar or names nothing in the database (Table 6 rows: no such
    /// name/value, incomplete comparison, grammar violation).
    Validate {
        /// The validation errors, in discovery order.
        feedback: Vec<Feedback>,
        /// How to rephrase.
        suggestion: String,
    },
    /// The validated tree could not be mapped to Schema-Free XQuery.
    Translate {
        /// What the translator reported.
        message: String,
        /// How to rephrase.
        suggestion: String,
    },
    /// The translated query failed during evaluation (unbound variable,
    /// type error, unknown function — a translator bug surfacing as a
    /// structured error rather than a panic).
    Eval {
        /// The engine's error message.
        message: String,
        /// How to rephrase.
        suggestion: String,
    },
    /// The evaluator's resource budget tripped: the question is
    /// understood but answering it would exceed the configured depth,
    /// deadline, or result-cardinality limit.
    ResourceExhausted {
        /// Which limit was hit.
        resource: ExhaustedResource,
        /// The engine's error message (includes the limit).
        message: String,
        /// How to rephrase.
        suggestion: String,
    },
    /// The question refers back to a previous answer ("of those…",
    /// "what about…") but no conversational context is available —
    /// either the request carried no session id, or the session had no
    /// prior turn to resolve against.
    MissingContext {
        /// The anaphoric phrase that needs an antecedent.
        phrase: String,
        /// How to rephrase.
        suggestion: String,
    },
    /// The session existed but its context is no longer usable: the
    /// TTL lapsed, the session was evicted, or the pinned document was
    /// reloaded or removed since the previous turn.
    ExpiredContext {
        /// Why the context was retired, in user terms.
        reason: String,
        /// How to rephrase.
        suggestion: String,
    },
    /// The question asks to *change* the database ("Delete all the
    /// books …", "Add a review to …"). Natural language is read-only
    /// here by design: a mutation phrased in prose is never applied
    /// automatically — the caller must confirm intent by issuing a
    /// typed edit batch through the update API (docs/UPDATES.md).
    UpdateIntent {
        /// The leading mutation verb that triggered the detection.
        verb: String,
        /// How to proceed.
        suggestion: String,
    },
}

impl QueryError {
    /// Build the canonical [`QueryError::MissingContext`] for an
    /// anaphoric `phrase` that has no antecedent (stateless request, or
    /// a session with no completed turn). The suggestion — required to
    /// be non-empty, like every other variant's — tells the user both
    /// ways out: repeat the full question, or converse under a session
    /// id.
    pub fn missing_context(phrase: impl Into<String>) -> Self {
        let phrase = phrase.into();
        QueryError::MissingContext {
            suggestion: format!(
                "Please repeat the full question, naming the items \"{phrase}\" refers \
                 to (for example \"Find all the books published after 2000.\"), or ask \
                 the follow-up under the session id of the conversation."
            ),
            phrase,
        }
    }

    /// Build the canonical [`QueryError::ExpiredContext`] for a session
    /// whose prior turn can no longer be resolved against (`reason`
    /// should say why in user terms: TTL lapse, eviction, or a document
    /// reload/removal).
    pub fn expired_context(reason: impl Into<String>) -> Self {
        QueryError::ExpiredContext {
            reason: reason.into(),
            suggestion: "The previous answers are no longer available; please repeat \
                         the full question, naming the items explicitly."
                .into(),
        }
    }

    /// Build the canonical [`QueryError::UpdateIntent`] for a question
    /// whose leading verb asks for a mutation. The suggestion points at
    /// both ways forward: rephrase as a read query, or apply the edit
    /// deliberately through the typed update API.
    pub fn update_intent(verb: impl Into<String>) -> Self {
        let verb = verb.into();
        QueryError::UpdateIntent {
            suggestion: format!(
                "Questions in natural language are read-only; \"{verb}\" would modify \
                 the database. To apply an edit, send it explicitly as a typed edit \
                 batch (POST /docs/<name>/update), or rephrase the question to ask \
                 about the data instead (for example \"Find all the books published \
                 before 1995.\")."
            ),
            verb,
        }
    }

    /// Every stable machine-readable code a [`QueryError`] can carry,
    /// in taxonomy order. Pinned by a test — removing or renaming an
    /// entry is a breaking API change for HTTP clients of `nalixd`,
    /// which dispatch on these strings.
    pub const ALL_CODES: [&'static str; 11] = [
        "parse.ungrammatical",
        "classify.unknown_term",
        "validate.rejected",
        "translate.unsupported",
        "eval.failed",
        "budget.depth",
        "budget.time",
        "budget.tuples",
        "session.missing_context",
        "session.expired",
        "update.requires_confirmation",
    ];

    /// A stable, machine-readable code naming the failure class:
    /// `<stage>.<reason>` (e.g. `classify.unknown_term`,
    /// `budget.time`). The code appears verbatim in [`fmt::Display`]
    /// output and in the `error.code` field of `nalixd` HTTP error
    /// bodies; the set of codes is pinned by a test so clients can
    /// rely on it.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Parse { .. } => "parse.ungrammatical",
            QueryError::Classify { .. } => "classify.unknown_term",
            QueryError::Validate { .. } => "validate.rejected",
            QueryError::Translate { .. } => "translate.unsupported",
            QueryError::Eval { .. } => "eval.failed",
            QueryError::ResourceExhausted { resource, .. } => match resource {
                ExhaustedResource::Depth => "budget.depth",
                ExhaustedResource::Time => "budget.time",
                ExhaustedResource::Tuples => "budget.tuples",
            },
            QueryError::MissingContext { .. } => "session.missing_context",
            QueryError::ExpiredContext { .. } => "session.expired",
            QueryError::UpdateIntent { .. } => "update.requires_confirmation",
        }
    }

    /// The rephrasing suggestion. Never empty — the interactive loop
    /// depends on always having one (paper Sec. 4).
    pub fn suggestion(&self) -> &str {
        match self {
            QueryError::Parse { suggestion, .. }
            | QueryError::Classify { suggestion, .. }
            | QueryError::Validate { suggestion, .. }
            | QueryError::Translate { suggestion, .. }
            | QueryError::Eval { suggestion, .. }
            | QueryError::ResourceExhausted { suggestion, .. }
            | QueryError::MissingContext { suggestion, .. }
            | QueryError::ExpiredContext { suggestion, .. }
            | QueryError::UpdateIntent { suggestion, .. } => suggestion,
        }
    }

    /// The feedback items to show the user, in the paper's rendered
    /// style (at least one).
    pub fn feedback(&self) -> Vec<Feedback> {
        match self {
            QueryError::Classify { feedback, .. } | QueryError::Validate { feedback, .. }
                if !feedback.is_empty() =>
            {
                feedback.clone()
            }
            other => vec![Feedback::error(FeedbackKind::GrammarViolation {
                detail: other.to_string(),
            })],
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The same stable code the HTTP error body carries leads the
        // rendered message, so log lines and API responses are
        // trivially correlatable.
        write!(f, "[{}] ", self.code())?;
        match self {
            QueryError::Parse {
                message,
                position,
                suggestion,
            } => write!(
                f,
                "could not parse the question (at word {position}): {message}. {suggestion}"
            ),
            QueryError::Classify {
                terms, suggestion, ..
            } => write!(
                f,
                "term(s) not understood by the system: {}. {suggestion}",
                terms
                    .iter()
                    .map(|t| format!("\"{t}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            QueryError::Validate {
                feedback,
                suggestion,
            } => {
                // The suggestion is normally the leading feedback
                // message itself, so printing both would duplicate it.
                if feedback.is_empty() {
                    write!(f, "{suggestion}")
                } else {
                    let details: Vec<String> = feedback.iter().map(Feedback::message).collect();
                    write!(f, "{}", details.join(" "))
                }
            }
            QueryError::Translate {
                message,
                suggestion,
            } => write!(
                f,
                "could not translate the question: {message} {suggestion}"
            ),
            QueryError::Eval {
                message,
                suggestion,
            } => write!(f, "could not evaluate the question: {message} {suggestion}"),
            QueryError::ResourceExhausted {
                message,
                suggestion,
                ..
            } => write!(f, "{message}. {suggestion}"),
            QueryError::MissingContext { phrase, suggestion } => write!(
                f,
                "the question refers to a previous answer (\"{phrase}\") but there is no \
                 conversation context to resolve it against. {suggestion}"
            ),
            QueryError::ExpiredContext { reason, suggestion } => {
                write!(
                    f,
                    "the conversation context is gone: {reason}. {suggestion}"
                )
            }
            QueryError::UpdateIntent { verb, suggestion } => write!(
                f,
                "the question asks to modify the database (\"{verb}\"), which is not \
                 applied automatically. {suggestion}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseFailure> for QueryError {
    fn from(e: ParseFailure) -> Self {
        QueryError::Parse {
            message: e.message,
            position: e.position,
            suggestion: "Please rephrase the question as a single command or wh-question, \
                         for example \"Find all the movies directed by Ron Howard.\"."
                .into(),
        }
    }
}

impl From<TranslateError> for QueryError {
    fn from(e: TranslateError) -> Self {
        QueryError::Translate {
            message: e.message,
            suggestion: "Please state first what to return and then the conditions, for \
                         example \"Return every book, where the year of the book is 1991.\"."
                .into(),
        }
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::ResourceExhausted { resource, limit } => QueryError::ResourceExhausted {
                resource,
                message: EvalError::ResourceExhausted { resource, limit }.to_string(),
                suggestion: match resource {
                    ExhaustedResource::Depth => {
                        "The question nests too many conditions; please split it into \
                         smaller questions."
                    }
                    ExhaustedResource::Time | ExhaustedResource::Tuples => {
                        "Answering this question requires combining too many items at \
                         once. Please add a condition that narrows the search (a name, \
                         a value, or a year), or split it into smaller questions."
                    }
                }
                .into(),
            },
            other => QueryError::Eval {
                message: other.to_string(),
                suggestion: "The question translated to a query the engine could not run; \
                             please rephrase it more simply."
                    .into(),
            },
        }
    }
}

impl From<Rejected> for QueryError {
    fn from(r: Rejected) -> Self {
        // The "unknown term" class (Sec. 4.1) is a classification
        // failure; everything else the validator reports is a
        // validation failure.
        let unknown_terms: Vec<String> = r
            .errors
            .iter()
            .filter_map(|f| match &f.kind {
                FeedbackKind::UnknownTerm { term, .. } => Some(term.clone()),
                _ => None,
            })
            .collect();
        let errors: Vec<Feedback> = if r.errors.is_empty() {
            vec![Feedback {
                severity: Severity::Error,
                kind: FeedbackKind::GrammarViolation {
                    detail: "the query could not be understood".into(),
                },
            }]
        } else {
            r.errors
        };
        let suggestion = errors
            .first()
            .map(Feedback::message)
            .unwrap_or_else(|| "Please rephrase your question.".into());
        if !unknown_terms.is_empty() {
            QueryError::Classify {
                terms: unknown_terms,
                feedback: errors,
                suggestion,
            }
        } else {
            QueryError::Validate {
                feedback: errors,
                suggestion,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_failure_converts_with_position() {
        let e = QueryError::from(ParseFailure {
            message: "dangling word".into(),
            position: 3,
        });
        match &e {
            QueryError::Parse { position, .. } => assert_eq!(*position, 3),
            other => panic!("{other:?}"),
        }
        assert!(!e.suggestion().is_empty());
    }

    #[test]
    fn rejection_with_unknown_term_becomes_classify() {
        let r = Rejected {
            errors: vec![Feedback::error(FeedbackKind::UnknownTerm {
                term: "as".into(),
                suggestion: Some("the same as".into()),
            })],
            warnings: vec![],
        };
        match QueryError::from(r) {
            QueryError::Classify { terms, .. } => assert_eq!(terms, vec!["as"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejection_without_unknown_term_becomes_validate() {
        let r = Rejected {
            errors: vec![Feedback::error(FeedbackKind::NoSuchName {
                term: "cost".into(),
                candidates: vec!["price".into()],
            })],
            warnings: vec![],
        };
        match QueryError::from(r) {
            QueryError::Validate { suggestion, .. } => assert!(suggestion.contains("price")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_codes_are_pinned() {
        // Clients of the `nalixd` HTTP API dispatch on these strings:
        // the set may only grow, and every existing entry must keep
        // its exact spelling. If this test fails, you are breaking a
        // wire contract — add a new code instead of changing one.
        assert_eq!(
            QueryError::ALL_CODES,
            [
                "parse.ungrammatical",
                "classify.unknown_term",
                "validate.rejected",
                "translate.unsupported",
                "eval.failed",
                "budget.depth",
                "budget.time",
                "budget.tuples",
                "session.missing_context",
                "session.expired",
                "update.requires_confirmation",
            ]
        );
        // Codes are `<stage>.<reason>` and unique.
        let mut seen = std::collections::HashSet::new();
        for code in QueryError::ALL_CODES {
            assert_eq!(code.split('.').count(), 2, "{code} is not stage.reason");
            assert!(seen.insert(code), "{code} duplicated");
        }
    }

    #[test]
    fn every_variant_maps_to_a_pinned_code() {
        let samples = [
            QueryError::Parse {
                message: String::new(),
                position: 0,
                suggestion: "s".into(),
            },
            QueryError::Classify {
                terms: vec![],
                feedback: vec![],
                suggestion: "s".into(),
            },
            QueryError::Validate {
                feedback: vec![],
                suggestion: "s".into(),
            },
            QueryError::Translate {
                message: String::new(),
                suggestion: "s".into(),
            },
            QueryError::Eval {
                message: String::new(),
                suggestion: "s".into(),
            },
            QueryError::ResourceExhausted {
                resource: ExhaustedResource::Depth,
                message: String::new(),
                suggestion: "s".into(),
            },
            QueryError::ResourceExhausted {
                resource: ExhaustedResource::Time,
                message: String::new(),
                suggestion: "s".into(),
            },
            QueryError::ResourceExhausted {
                resource: ExhaustedResource::Tuples,
                message: String::new(),
                suggestion: "s".into(),
            },
            QueryError::MissingContext {
                phrase: "of those".into(),
                suggestion: "s".into(),
            },
            QueryError::ExpiredContext {
                reason: "the session expired".into(),
                suggestion: "s".into(),
            },
            QueryError::UpdateIntent {
                verb: "delete".into(),
                suggestion: "s".into(),
            },
        ];
        for (e, want) in samples.iter().zip(QueryError::ALL_CODES) {
            assert_eq!(e.code(), want);
            // Display leads with the bracketed code.
            assert!(
                e.to_string().starts_with(&format!("[{want}] ")),
                "{e} does not lead with its code"
            );
        }
    }

    #[test]
    fn empty_rejection_still_has_suggestion() {
        let r = Rejected {
            errors: vec![],
            warnings: vec![],
        };
        let e = QueryError::from(r);
        assert!(!e.suggestion().is_empty());
        assert!(!e.feedback().is_empty());
    }
}
