//! Variable binding (Sec. 3.2.2, Defs. 8–10): grouping name tokens into
//! basic variables and variables into related sets.

use crate::semantics::{self, Semantics};
use crate::token::{ClassifiedTree, NodeClass, TokenType};
use std::collections::HashMap;

/// Identifier of a basic variable.
pub type VarId = usize;

/// One basic variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// The NT nodes bound to this variable.
    pub nodes: Vec<usize>,
    /// Canonical display lemma (e.g. "director").
    pub display: String,
    /// Database names for the `for` clause (`doc()//(a|b)` when > 1).
    pub names: Vec<String>,
    /// Is this variable a core token (paper marks these `$v*`)?
    pub core: bool,
    /// Does it bind an implicit NT?
    pub implicit: bool,
}

/// The variable-binding result.
#[derive(Debug, Clone)]
pub struct Binding {
    /// All variables, in creation (tree) order.
    pub vars: Vec<VarInfo>,
    /// NT node → its variable.
    pub var_of: HashMap<usize, VarId>,
    /// Related variable sets (Def. 10): the groups that each map to one
    /// `mqf()` clause. When the query has no core token, all variables
    /// form a single set.
    pub groups: Vec<Vec<VarId>>,
    /// The underlying token semantics (kept for the translator).
    pub semantics: Semantics,
}

/// Is an FT or QT attached to this NT (a Def. 8 condition — such NTs
/// are never merged as "identical")?
fn ft_or_qt_attached(tree: &ClassifiedTree, nt: usize) -> bool {
    // An FT/QT child of the NT…
    let child_hit = tree.node(nt).children.iter().any(|&c| {
        matches!(
            tree.node(c).class,
            NodeClass::Token(TokenType::Ft(_)) | NodeClass::Token(TokenType::Qt(_))
        )
    });
    if child_hit {
        return true;
    }
    // …or an FT parent ("the number of movies").
    tree.node(nt)
        .parent
        .map(|p| matches!(tree.node(p).class, NodeClass::Token(TokenType::Ft(_))))
        .unwrap_or(false)
}

/// Identical name tokens (Def. 8): equivalent, (indirectly) related,
/// and free of attached FT/QT.
fn identical(tree: &ClassifiedTree, sem: &Semantics, a: usize, b: usize) -> bool {
    if a == b || !semantics::equivalent(tree, a, b) {
        return false;
    }
    // Must be related (share a related set)…
    let related = sem
        .related_sets
        .iter()
        .any(|s| s.contains(&a) && s.contains(&b));
    if !related {
        return false;
    }
    // …but only *indirectly* (directly-related equivalent NTs keep
    // separate variables).
    if semantics::directly_related(tree, a, b) {
        return false;
    }
    // No FT or QT attaching to either (Def. 8 iii).
    !ft_or_qt_attached(tree, a) && !ft_or_qt_attached(tree, b)
}

/// Compute the variable binding for a validated tree.
pub fn bind(tree: &ClassifiedTree) -> Binding {
    let sem = semantics::analyze(tree);

    // Union-find over NTs: merge equivalent core tokens ("the same core
    // token") and identical NTs (Def. 8).
    let mut uf: HashMap<usize, usize> = sem.nts.iter().map(|&n| (n, n)).collect();
    fn find(uf: &mut HashMap<usize, usize>, mut x: usize) -> usize {
        while uf[&x] != x {
            let next = uf[&uf[&x]];
            uf.insert(x, next);
            x = next;
        }
        x
    }
    for (i, &a) in sem.nts.iter().enumerate() {
        for &b in &sem.nts[i + 1..] {
            let same_core = sem.core[&a] && sem.core[&b] && semantics::equivalent(tree, a, b);
            // Disjunctive noun phrases ("every book or article") bind to
            // one variable over the union of names.
            let disjunct =
                tree.node(b).rel == nlparser::DepRel::ConjOr && tree.node(b).parent == Some(a);
            if same_core || disjunct || identical(tree, &sem, a, b) {
                let ra = find(&mut uf, a);
                let rb = find(&mut uf, b);
                if ra != rb {
                    uf.insert(ra, rb);
                }
            }
        }
    }

    // Materialise variables in first-occurrence order.
    let mut var_of: HashMap<usize, VarId> = HashMap::new();
    let mut vars: Vec<VarInfo> = Vec::new();
    let mut root_to_var: HashMap<usize, VarId> = HashMap::new();
    for &n in &sem.nts {
        let root = find(&mut uf, n);
        let id = *root_to_var.entry(root).or_insert_with(|| {
            vars.push(VarInfo {
                nodes: Vec::new(),
                display: tree.node(n).lemma.clone(),
                names: if tree.node(n).expansion.is_empty() {
                    vec![tree.node(n).lemma.clone()]
                } else {
                    tree.node(n).expansion.clone()
                },
                core: false,
                implicit: tree.node(n).implicit,
            });
            vars.len() - 1
        });
        vars[id].nodes.push(n);
        var_of.insert(n, id);
        if sem.core[&n] {
            vars[id].core = true;
        }
        // Disjunctive members widen the variable's name test.
        let extra = if tree.node(n).expansion.is_empty() {
            vec![tree.node(n).lemma.clone()]
        } else {
            tree.node(n).expansion.clone()
        };
        for name in extra {
            if !vars[id].names.contains(&name) {
                vars[id].names.push(name);
            }
        }
    }

    // Variable groups (Def. 10): project the NT related-sets onto
    // variables; with no core token everything is one group.
    let mut groups: Vec<Vec<VarId>> = Vec::new();
    if sem.has_core {
        for set in &sem.related_sets {
            let mut g: Vec<VarId> = set.iter().map(|n| var_of[n]).collect();
            g.sort();
            g.dedup();
            // A variable may span several NT sets (same core token used
            // in two sets merges them).
            if let Some(existing) = groups
                .iter()
                .position(|eg| eg.iter().any(|v| g.contains(v)))
            {
                let mut merged = groups.remove(existing);
                merged.extend(g);
                merged.sort();
                merged.dedup();
                groups.push(merged);
            } else {
                groups.push(g);
            }
        }
    } else {
        let mut g: Vec<VarId> = (0..vars.len()).collect();
        g.sort();
        groups.push(g);
    }
    groups.sort();

    Binding {
        vars,
        var_of,
        groups,
        semantics: sem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::classify::classify;
    use crate::validate::validate;
    use nlparser::parse;
    use xmldb::datasets::movies::{movies, movies_and_books};
    use xmldb::Document;

    fn bind_on(doc: &Document, q: &str) -> (ClassifiedTree, Binding) {
        let catalog = Catalog::build(doc);
        let v = validate(classify(&parse(q).unwrap()), &catalog);
        assert!(v.is_valid(), "{q}: {:?}", v.feedback);
        let b = bind(&v.tree);
        (v.tree, b)
    }

    #[test]
    fn query2_bindings_match_table3() {
        // Paper Table 3: $v1* director (nodes 2,7), $v2 movie, $v3
        // movie, $v4* director (node 11) — four variables, the two
        // explicit directors share one.
        let doc = movies();
        let (t, b) = bind_on(
            &doc,
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        let director_vars: Vec<VarId> = b
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.display == "director")
            .map(|(i, _)| i)
            .collect();
        let movie_vars: Vec<VarId> = b
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.display == "director" || v.display == "movie")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(director_vars.len(), 2, "{}\n{:?}", t.outline(), b.vars);
        assert_eq!(movie_vars.len(), 4); // 2 director + 2 movie
                                         // the explicit-director variable binds two NT nodes
        let explicit = director_vars
            .iter()
            .find(|&&v| !b.vars[v].implicit)
            .unwrap();
        assert_eq!(b.vars[*explicit].nodes.len(), 2);
        assert!(b.vars[*explicit].core);
        let implicit = director_vars.iter().find(|&&v| b.vars[v].implicit).unwrap();
        assert!(b.vars[*implicit].core);
        // groups: {explicit-director, movie1} and {implicit-director, movie2}
        assert_eq!(b.groups.len(), 2);
        for g in &b.groups {
            assert_eq!(g.len(), 2);
        }
    }

    #[test]
    fn query3_bindings() {
        let doc = movies_and_books();
        let (_t, b) = bind_on(
            &doc,
            "Return the directors of movies, where the title of each movie is \
             the same as the title of a book.",
        );
        // variables: director, movie (merged core), title, title, book
        assert_eq!(b.vars.len(), 5, "{:?}", b.vars);
        let movie_var = b.vars.iter().find(|v| v.display == "movie").unwrap();
        assert_eq!(movie_var.nodes.len(), 2); // movie(4) ≡ movie(8): same core
        let title_vars = b.vars.iter().filter(|v| v.display == "title").count();
        assert_eq!(title_vars, 2); // equivalent but unrelated → separate
        assert_eq!(b.groups.len(), 2);
    }

    #[test]
    fn identical_nts_share_a_variable() {
        // "the author and the titles of all books of the author" — the
        // two author NTs are equivalent, indirectly related, FT/QT-free
        // → one variable (Def. 8).
        let doc = Document::parse_str("<bib><book><title>T</title><author>A</author></book></bib>")
            .unwrap();
        let (_t, b) = bind_on(
            &doc,
            "Return the author and the titles of all books of the author.",
        );
        let author_vars = b.vars.iter().filter(|v| v.display == "author").count();
        assert_eq!(author_vars, 1, "{:?}", b.vars);
        assert_eq!(
            b.vars
                .iter()
                .find(|v| v.display == "author")
                .unwrap()
                .nodes
                .len(),
            2
        );
    }

    #[test]
    fn ft_blocks_identity() {
        // Two "authors" NTs, one under a count FT → separate variables
        // (Def. 8 iii), but one variable group via the shared book core.
        let doc = Document::parse_str("<bib><book><title>T</title><author>A</author></book></bib>")
            .unwrap();
        let (_t, b) = bind_on(
            &doc,
            "Return the title and the authors of every book, where the number of \
             authors of the book is at least 1.",
        );
        let author_vars = b.vars.iter().filter(|v| v.display == "author").count();
        assert_eq!(author_vars, 2, "{:?}", b.vars);
        let book_vars = b.vars.iter().filter(|v| v.display == "book").count();
        assert_eq!(book_vars, 1, "book NTs merge through the core");
    }

    #[test]
    fn no_core_means_single_group() {
        let doc = movies();
        let (_t, b) = bind_on(&doc, "Return the director of each movie.");
        assert_eq!(b.groups.len(), 1);
        assert_eq!(b.groups[0].len(), b.vars.len());
    }

    #[test]
    fn names_carry_term_expansion() {
        let doc = movies();
        let (_t, b) = bind_on(&doc, "Return the director of each film.");
        let film = b.vars.iter().find(|v| v.display == "film").unwrap();
        assert_eq!(film.names, vec!["movie".to_owned()]);
    }
}
