//! Token and marker types (paper Tables 1 and 2) and the classified
//! parse tree they live in.

use nlparser::DepRel;
use std::fmt;
use xquery::AggFunc;

/// Comparison semantics of an operator token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSem {
    /// Equality ("is", "the same as", "equal to").
    Eq,
    /// Inequality (negated equality).
    Ne,
    /// Less-than ("less than", "fewer than", "before", "earlier than").
    Lt,
    /// At-most ("at most").
    Le,
    /// Greater-than ("greater than", "more than", "after", "later than").
    Gt,
    /// At-least ("at least").
    Ge,
    /// Substring containment ("contain").
    Contains,
    /// Prefix match ("start with").
    StartsWith,
    /// Suffix match ("end with").
    EndsWith,
}

impl OpSem {
    /// The corresponding XQuery comparison operator, when one exists
    /// (the string predicates map to function calls instead).
    pub fn cmp_op(self) -> Option<xquery::CmpOp> {
        match self {
            OpSem::Eq => Some(xquery::CmpOp::Eq),
            OpSem::Ne => Some(xquery::CmpOp::Ne),
            OpSem::Lt => Some(xquery::CmpOp::Lt),
            OpSem::Le => Some(xquery::CmpOp::Le),
            OpSem::Gt => Some(xquery::CmpOp::Gt),
            OpSem::Ge => Some(xquery::CmpOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for OpSem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpSem::Eq => "=",
            OpSem::Ne => "!=",
            OpSem::Lt => "<",
            OpSem::Le => "<=",
            OpSem::Gt => ">",
            OpSem::Ge => ">=",
            OpSem::Contains => "contains",
            OpSem::StartsWith => "starts-with",
            OpSem::EndsWith => "ends-with",
        })
    }
}

/// Quantifier kinds for QT tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QtKind {
    /// "every", "each", "all".
    Every,
    /// "any", "some".
    Some,
}

/// Sort direction carried by an order-by token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortDir {
    /// Ascending (default; "sorted by", "in alphabetical order").
    #[default]
    Asc,
    /// Descending ("in descending order").
    Desc,
}

/// Token types (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenType {
    /// Command token → RETURN clause.
    Cmt,
    /// Order-by token → ORDER BY clause.
    Obt(SortDir),
    /// Function token → aggregate function.
    Ft(AggFunc),
    /// Operator token → comparison operator.
    Ot(OpSem),
    /// Value token → a constant.
    Vt,
    /// Name token → a basic variable.
    Nt,
    /// Negation → `not()`.
    Neg,
    /// Quantifier token.
    Qt(QtKind),
}

/// Marker types (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkerType {
    /// Connection marker: relates two tokens (prepositions, non-token
    /// main verbs like "directed by").
    Cm,
    /// Modifier marker: distinguishes two NTs ("first", numerals).
    Mm,
    /// Pronoun marker (no contribution; triggers a warning).
    Pm,
    /// General marker (auxiliaries, articles; no contribution).
    Gm,
}

/// Classification of one parse-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A token that maps to a query component.
    Token(TokenType),
    /// A marker.
    Marker(MarkerType),
    /// A term outside the system's vocabulary (reported to the user).
    Unknown,
}

impl NodeClass {
    /// Is this a marker (of any kind)?
    pub fn is_marker(&self) -> bool {
        matches!(self, NodeClass::Marker(_))
    }

    /// Is this a name token?
    pub fn is_nt(&self) -> bool {
        matches!(self, NodeClass::Token(TokenType::Nt))
    }

    /// Is this a value token?
    pub fn is_vt(&self) -> bool {
        matches!(self, NodeClass::Token(TokenType::Vt))
    }

    /// The aggregate function, for FT nodes.
    pub fn ft(&self) -> Option<AggFunc> {
        match self {
            NodeClass::Token(TokenType::Ft(f)) => Some(*f),
            _ => None,
        }
    }

    /// The operator semantics, for OT nodes.
    pub fn ot(&self) -> Option<OpSem> {
        match self {
            NodeClass::Token(TokenType::Ot(o)) => Some(*o),
            _ => None,
        }
    }
}

/// A node of the classified parse tree.
#[derive(Debug, Clone)]
pub struct CNode {
    /// Surface words.
    pub words: String,
    /// Normalised lemma (the key used for vocabulary lookups, name-token
    /// equivalence, and database name matching).
    pub lemma: String,
    /// The classification.
    pub class: NodeClass,
    /// Parent (None for the root).
    pub parent: Option<usize>,
    /// Children, in sentence order.
    pub children: Vec<usize>,
    /// Grammatical relation carried over from the dependency parse.
    pub rel: DepRel,
    /// Sentence position of the node's first word.
    pub order: usize,
    /// True for implicit name tokens inserted by validation (Def. 11).
    pub implicit: bool,
    /// Database element/attribute names this NT resolves to after term
    /// expansion (single element for exact matches; several yield a
    /// disjunctive name test).
    pub expansion: Vec<String>,
}

/// The classified parse tree (same shape as the dependency tree, plus
/// implicit nodes inserted during validation).
#[derive(Debug, Clone)]
pub struct ClassifiedTree {
    /// Node arena.
    pub nodes: Vec<CNode>,
    /// Root reference (always the CMT).
    pub root: usize,
}

impl ClassifiedTree {
    /// Borrow a node.
    pub fn node(&self, i: usize) -> &CNode {
        &self.nodes[i]
    }

    /// All node indices.
    pub fn refs(&self) -> impl Iterator<Item = usize> {
        0..self.nodes.len()
    }

    /// The parent of `i`, skipping marker nodes — the traversal used by
    /// Def. 4 (directly related) and Def. 7 (attachment).
    pub fn parent_skipping_markers(&self, i: usize) -> Option<usize> {
        let mut cur = self.nodes[i].parent?;
        loop {
            if self.nodes[cur].class.is_marker() {
                cur = self.nodes[cur].parent?;
            } else {
                return Some(cur);
            }
        }
    }

    /// Insert a new node between `parent_of` and its existing child
    /// `child`: the new node takes `child`'s place and adopts it.
    /// Used for implicit name-token insertion (Def. 11).
    pub fn insert_above(&mut self, child: usize, node: CNode) -> usize {
        let id = self.nodes.len();
        let parent = self.nodes[child].parent;
        let mut node = node;
        node.parent = parent;
        node.children = vec![child];
        self.nodes.push(node);
        if let Some(p) = parent {
            // `child` is always listed under its parent; repair the
            // link rather than crash if the tree were ever inconsistent.
            match self.nodes[p].children.iter().position(|&c| c == child) {
                Some(slot) => self.nodes[p].children[slot] = id,
                None => self.nodes[p].children.push(id),
            }
        } else {
            self.root = id;
        }
        self.nodes[child].parent = Some(id);
        id
    }

    /// Render an indented outline with classifications (used by golden
    /// tests that compare against the paper's figures).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.outline_node(self.root, 0, &mut out);
        out
    }

    fn outline_node(&self, i: usize, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let n = &self.nodes[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let class = match n.class {
            NodeClass::Token(TokenType::Cmt) => "CMT".to_owned(),
            NodeClass::Token(TokenType::Obt(_)) => "OBT".to_owned(),
            NodeClass::Token(TokenType::Ft(f)) => format!("FT:{f}"),
            NodeClass::Token(TokenType::Ot(o)) => format!("OT:{o}"),
            NodeClass::Token(TokenType::Vt) => "VT".to_owned(),
            NodeClass::Token(TokenType::Nt) => {
                if n.implicit {
                    "NT(implicit)".to_owned()
                } else {
                    "NT".to_owned()
                }
            }
            NodeClass::Token(TokenType::Neg) => "NEG".to_owned(),
            NodeClass::Token(TokenType::Qt(_)) => "QT".to_owned(),
            NodeClass::Marker(MarkerType::Cm) => "CM".to_owned(),
            NodeClass::Marker(MarkerType::Mm) => "MM".to_owned(),
            NodeClass::Marker(MarkerType::Pm) => "PM".to_owned(),
            NodeClass::Marker(MarkerType::Gm) => "GM".to_owned(),
            NodeClass::Unknown => "UNKNOWN".to_owned(),
        };
        let _ = writeln!(out, "{} [{}]", n.words, class);
        for &c in &n.children {
            self.outline_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(lemma: &str, class: NodeClass, order: usize) -> CNode {
        CNode {
            words: lemma.to_owned(),
            lemma: lemma.to_owned(),
            class,
            parent: None,
            children: vec![],
            rel: DepRel::Obj,
            order,
            implicit: false,
            expansion: vec![],
        }
    }

    fn small_tree() -> ClassifiedTree {
        // return -> director -> of(CM) -> movie
        let mut nodes = vec![
            leaf("return", NodeClass::Token(TokenType::Cmt), 0),
            leaf("director", NodeClass::Token(TokenType::Nt), 1),
            leaf("of", NodeClass::Marker(MarkerType::Cm), 2),
            leaf("movie", NodeClass::Token(TokenType::Nt), 3),
        ];
        nodes[0].children = vec![1];
        nodes[1].parent = Some(0);
        nodes[1].children = vec![2];
        nodes[2].parent = Some(1);
        nodes[2].children = vec![3];
        nodes[3].parent = Some(2);
        ClassifiedTree { nodes, root: 0 }
    }

    #[test]
    fn parent_skipping_markers_sees_through_cm() {
        let t = small_tree();
        assert_eq!(t.parent_skipping_markers(3), Some(1));
        assert_eq!(t.parent_skipping_markers(1), Some(0));
        assert_eq!(t.parent_skipping_markers(0), None);
    }

    #[test]
    fn insert_above_rewires() {
        let mut t = small_tree();
        let implicit = CNode {
            implicit: true,
            ..leaf("year", NodeClass::Token(TokenType::Nt), 3)
        };
        let id = t.insert_above(3, implicit);
        assert_eq!(t.node(3).parent, Some(id));
        assert_eq!(t.node(id).parent, Some(2));
        assert!(t.node(2).children.contains(&id));
        assert!(!t.node(2).children.contains(&3));
    }

    #[test]
    fn outline_marks_classes() {
        let o = small_tree().outline();
        assert!(o.contains("return [CMT]"));
        assert!(o.contains("of [CM]"));
    }

    #[test]
    fn op_sem_cmp_mapping() {
        assert_eq!(OpSem::Gt.cmp_op(), Some(xquery::CmpOp::Gt));
        assert_eq!(OpSem::Contains.cmp_op(), None);
    }
}
