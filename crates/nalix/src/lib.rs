#![warn(missing_docs)]
// The whole NL→answer pipeline lives here: per the paper's Sec. 4
// contract, any question — however malformed — must produce either an
// answer or feedback with a rephrasing suggestion. Panics are a
// contract violation, so the usual escape hatches are denied outright.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # nalix — a generic natural language interface for an XML database
//!
//! Reproduction of *Li, Yang & Jagadish, "Constructing a Generic Natural
//! Language Interface for an XML Database", EDBT 2006*: an arbitrary
//! English query is parsed (crate [`nlparser`]), classified into tokens
//! and markers (Tables 1–2), validated against the supported grammar
//! (Table 6) with dynamically generated feedback, and translated into a
//! Schema-Free XQuery expression (crate [`xquery`]) evaluated against an
//! XML database (crate [`xmldb`]).
//!
//! ## Quick start
//!
//! ```
//! use nalix::Nalix;
//! use xmldb::datasets::movies::movies;
//!
//! let doc = movies();
//! let nalix = Nalix::new(doc.clone());
//! match nalix.query("Find all the movies directed by Ron Howard.") {
//!     nalix::Outcome::Translated(t) => {
//!         let results = nalix.execute(&t).unwrap();
//!         assert_eq!(results.len(), 2);
//!     }
//!     nalix::Outcome::Rejected(r) => panic!("{:?}", r.errors),
//! }
//! ```
//!
//! ## The interactive loop
//!
//! When a query cannot be understood, [`Nalix::query`] returns
//! [`Outcome::Rejected`] carrying error messages with rephrasing
//! suggestions — the paper's interactive query-formulation mechanism
//! (Sec. 4). The paper's running example works verbatim:
//!
//! ```
//! use nalix::{Nalix, Outcome};
//! use xmldb::datasets::movies::movies;
//!
//! let doc = movies();
//! let nalix = Nalix::new(doc.clone());
//! // Query 1 is invalid — "as" is outside the vocabulary…
//! let out = nalix.query(
//!     "Return every director who has directed as many movies as has Ron Howard.");
//! let rejection = match out {
//!     Outcome::Rejected(r) => r,
//!     _ => panic!("expected rejection"),
//! };
//! assert!(rejection.errors[0].message().contains("the same as"));
//! // …and Query 2, the suggested rephrasing, translates and runs.
//! let out = nalix.query(
//!     "Return every director, where the number of movies directed by the \
//!      director is the same as the number of movies directed by Ron Howard.");
//! assert!(matches!(out, Outcome::Translated(_)));
//! ```
//!
//! ## Observability
//!
//! Every pipeline stage is instrumented with the re-exported [`obs`]
//! crate: stage spans (wall time + outcome), end-to-end query outcomes
//! including cache-hit short-circuits, and engine work counters. Each
//! `Nalix` records into its own isolated [`obs::MetricsRegistry`] by
//! default; pass [`obs::global_handle()`] to [`Nalix::with_metrics`] to
//! aggregate with the process-global `xmldb`/`nlparser` counters. See
//! `docs/OBSERVABILITY.md` for the metric catalog.
//!
//! ```
//! use nalix::{obs, Nalix};
//! use xmldb::datasets::movies::movies;
//!
//! let doc = movies();
//! let nalix = Nalix::new(doc.clone());
//! let _ = nalix.ask("Find all the movies directed by Ron Howard.");
//! let snap = nalix.metrics();
//! assert_eq!(snap.stage(obs::Stage::Translate).spans(), 1);
//! assert_eq!(snap.queries_with(obs::SpanOutcome::Ok), 1);
//! ```

pub mod backend;
pub mod batch;
pub mod binding;
pub mod cache;
pub mod catalog;
pub mod classify;
pub mod error;
pub mod explain;
pub mod feedback;
pub mod semantics;
pub mod session;
pub mod thesaurus;
pub mod token;
pub mod translate;
pub mod validate;
pub mod vocab;

pub use backend::{AnswerSet, Backend, BackendKind, Compiled, QueryPlan};
pub use batch::{BatchReply, BatchRunner};
pub use cache::{CacheStats, DEFAULT_CACHE_CAPACITY};
pub use error::QueryError;
pub use feedback::{Feedback, FeedbackKind, Severity};
/// The observability layer (re-exported): [`obs::MetricsRegistry`],
/// [`obs::MetricsSnapshot`], stage spans, and the global registry.
pub use obs;
pub use session::{
    detect_follow_up, FollowUp, PriorTurn, Session, SessionCheckout, SessionStore, TurnAnswer,
};
pub use token::{ClassifiedTree, NodeClass, OpSem, QtKind, TokenType};
pub use translate::{TranslateError, Translation};
pub use xquery::{EvalBudget, ExhaustedResource};

use cache::TranslationCache;
use catalog::Catalog;
use xmldb::Document;
use xquery::{Engine, EvalError, Item, Sequence};

/// A successfully translated query.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The Schema-Free XQuery expression.
    pub translation: Translation,
    /// Non-blocking warnings (pronouns, ambiguous names).
    pub warnings: Vec<Feedback>,
    /// The classified, validated parse tree (for explain output).
    pub tree: ClassifiedTree,
}

/// A rejected query, with the feedback the user sees.
#[derive(Debug, Clone)]
pub struct Rejected {
    /// The errors (at least one).
    pub errors: Vec<Feedback>,
    /// Warnings gathered before rejection.
    pub warnings: Vec<Feedback>,
}

/// A fully detailed successful answer, as returned by
/// [`Nalix::answer_full`]: the flat string values (bit-identical to
/// what [`Nalix::answer`] returns for the same question), plus the
/// pretty-printed Schema-Free XQuery, non-blocking warnings, and
/// whether the translation came from the cache. This is the payload
/// the `nalixd` HTTP server serialises for `POST /query`.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The flat string values of the result sequence.
    pub values: Vec<String>,
    /// The compiled query, pretty-printed in the answering backend's
    /// language — Schema-Free XQuery for [`BackendKind::Xquery`], the
    /// SQL subset for [`BackendKind::Sql`]. (The field keeps its
    /// original name for wire compatibility; the `backend` field says
    /// which language it is.)
    pub xquery: String,
    /// Which translation backend produced the values.
    pub backend: BackendKind,
    /// True when the question imposed an explicit result order ("…
    /// sorted by year") — the [`AnswerSet`] equivalence mode.
    pub ordered: bool,
    /// Non-blocking warnings (pronouns, ambiguous names).
    pub warnings: Vec<Feedback>,
    /// True when the translation was served from the memo table (the
    /// evaluation still ran).
    pub cached: bool,
}

/// The outcome of submitting one natural language query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The query was understood; evaluate with [`Nalix::execute`].
    Translated(Box<Translated>),
    /// The query was rejected; revise using the error messages.
    Rejected(Rejected),
}

impl Outcome {
    /// True for [`Outcome::Translated`].
    pub fn is_translated(&self) -> bool {
        matches!(self, Outcome::Translated(_))
    }
}

/// The NaLIX system: a natural language query interface over one XML
/// document.
///
/// `Nalix` is `Send + Sync`: the document and catalog are immutable and
/// the two caches — translation outcomes here, the value index inside
/// the persistent [`Engine`] — are internally synchronized. A single
/// instance can therefore be shared by many threads; see
/// [`BatchRunner`] for the fan-out harness.
///
/// `Nalix` *shares ownership* of its document (`Arc<Document>`) rather
/// than borrowing it, so every pipeline is `'static`: instances can be
/// stored in registries, handed to plainly spawned worker threads, and
/// hot-swapped at runtime (the `store` crate builds on exactly this).
/// Constructors accept anything convertible into an `Arc<Document>` —
/// an owned [`Document`] or an existing `Arc`.
pub struct Nalix {
    doc: std::sync::Arc<Document>,
    catalog: Catalog,
    /// Persistent query engine: keeps its lazily built value index warm
    /// across queries instead of rebuilding it per [`Nalix::execute`].
    engine: Engine,
    /// Memo of `backend + normalized question → Outcome` (see
    /// [`crate::cache`]; the backend joins the key so switching
    /// backends on a shared pipeline can never serve a stale entry).
    translations: TranslationCache,
    /// Stage spans, query outcomes, and cache counters land here (the
    /// engine shares the same registry for its evaluation spans).
    metrics: std::sync::Arc<obs::MetricsRegistry>,
    /// The default translation backend ([`BackendKind::Xquery`] unless
    /// overridden by [`Nalix::with_backend`]).
    backend: BackendKind,
    /// The relational shredding the SQL backend evaluates over, built
    /// lazily on first SQL query and shared thereafter (updates patch
    /// it forward through [`Nalix::successor`]).
    shredding: std::sync::OnceLock<std::sync::Arc<relstore::Shredding>>,
}

impl Nalix {
    /// Build the interface for a (finalized) document. Catalog
    /// construction scans the document once. Metrics go to an isolated
    /// per-instance [`obs::MetricsRegistry`]; use
    /// [`Nalix::with_metrics`] to share one.
    pub fn new(doc: impl Into<std::sync::Arc<Document>>) -> Self {
        Nalix::with_metrics(doc, std::sync::Arc::new(obs::MetricsRegistry::new()))
    }

    /// Build the interface recording into a caller-supplied registry —
    /// typically [`obs::global_handle()`] so pipeline spans land next
    /// to the process-global `xmldb`/`nlparser` counters, or a fresh
    /// registry shared by a group of instances under test.
    pub fn with_metrics(
        doc: impl Into<std::sync::Arc<Document>>,
        metrics: std::sync::Arc<obs::MetricsRegistry>,
    ) -> Self {
        let doc = doc.into();
        Nalix {
            catalog: Catalog::build(&doc),
            engine: Engine::with_metrics(doc.clone(), metrics.clone()),
            doc,
            translations: TranslationCache::default(),
            metrics,
            backend: BackendKind::default(),
            shredding: std::sync::OnceLock::new(),
        }
    }

    /// Build the pipeline for the successor document of a node-level
    /// update, reusing everything the update provably did not touch.
    ///
    /// On [`xmldb::CommitStrategy::Patch`] commits the catalog is
    /// folded forward from the overlay's balanced value deltas
    /// ([`catalog::Catalog::apply_update`]) and the engine inherits the
    /// prior engine's value indexes for every label outside
    /// `stats.dirty_labels` ([`Engine::seeded_from`]) — node identities
    /// are stable across a patch commit, so the carried indexes are
    /// bit-identical to a cold rebuild's. On
    /// [`xmldb::CommitStrategy::Rebuild`] commits everything is rebuilt
    /// from scratch, exactly as [`Nalix::with_metrics`] would.
    ///
    /// Either way the successor records into a *fresh* metrics registry
    /// — exactly as a hot reload does — so registries stay one-to-one
    /// with pipeline generations and the `store` crate's retire-and-fold
    /// accounting stays monotone. It keeps the prior translation-cache
    /// capacity but starts with an empty memo table: the catalog
    /// changed, so stale translation outcomes must not survive.
    pub fn successor(
        prior: &Nalix,
        doc: impl Into<std::sync::Arc<Document>>,
        stats: &xmldb::UpdateStats,
    ) -> Self {
        let doc = doc.into();
        let metrics = std::sync::Arc::new(obs::MetricsRegistry::new());
        let (catalog, engine) = match stats.strategy {
            xmldb::CommitStrategy::Patch => {
                let mut catalog = prior.catalog.clone();
                catalog.apply_update(&doc, stats);
                let engine = Engine::seeded_from(
                    doc.clone(),
                    metrics.clone(),
                    &prior.engine,
                    &stats.dirty_labels,
                );
                (catalog, engine)
            }
            xmldb::CommitStrategy::Rebuild => (
                Catalog::build(&doc),
                Engine::with_metrics(doc.clone(), metrics.clone()),
            ),
        };
        // Carry the shredding forward only if the prior generation had
        // built one (the SQL backend was in use): a value-only commit
        // patches the tables in place, anything structural rebuilds.
        let shredding = std::sync::OnceLock::new();
        if let Some(prev) = prior.shredding.get() {
            let span = metrics.span(obs::Stage::ShredBuild);
            let next = prev.successor(&doc, stats);
            span.finish(obs::SpanOutcome::Ok);
            metrics.add(obs::Counter::ShredBuilds, 1);
            let _ = shredding.set(std::sync::Arc::new(next));
        }
        Nalix {
            catalog,
            engine,
            doc,
            translations: TranslationCache::with_capacity(prior.translations.capacity()),
            metrics,
            backend: prior.backend,
            shredding,
        }
    }

    /// Select the default translation backend (builder-style). Every
    /// entry point that does not name a backend explicitly —
    /// [`Nalix::answer`], [`Nalix::answer_full`], [`Nalix::query`] —
    /// uses this one; [`Nalix::answer_full_on`] overrides per call.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The active default backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The relational shredding of the document (the SQL backend's
    /// tables), built lazily on first touch under an
    /// [`obs::Stage::ShredBuild`] span and shared thereafter.
    pub fn shredding(&self) -> std::sync::Arc<relstore::Shredding> {
        self.shredding
            .get_or_init(|| {
                let span = self.metrics.span(obs::Stage::ShredBuild);
                let shred = relstore::Shredding::build(&self.doc);
                span.finish(obs::SpanOutcome::Ok);
                self.metrics.add(obs::Counter::ShredBuilds, 1);
                std::sync::Arc::new(shred)
            })
            .clone()
    }

    /// Replace the translation cache with one bounded to `capacity`
    /// entries (builder-style; `0` disables memoisation). The default
    /// is [`DEFAULT_CACHE_CAPACITY`]. Long-running servers set this
    /// from their config so memory stays bounded under an unbounded
    /// stream of distinct questions; see [`Nalix::cache_stats`] for the
    /// eviction counter.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.translations = TranslationCache::with_capacity(capacity);
        self
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// A shared handle to the underlying document.
    pub fn doc_handle(&self) -> std::sync::Arc<Document> {
        self.doc.clone()
    }

    /// The database catalog (labels and value index).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The translation-cache key for `sentence` on `backend`: the
    /// backend's wire name, a unit separator (which
    /// [`cache::normalize`] can never emit), and the normalized
    /// sentence. Keying by backend means switching backends on a shared
    /// pipeline can never serve an entry filed for the other target.
    fn cache_key_on(&self, backend: BackendKind, sentence: &str) -> String {
        format!("{}\u{1f}{}", backend.name(), cache::normalize(sentence))
    }

    fn cache_key(&self, sentence: &str) -> String {
        self.cache_key_on(self.backend, sentence)
    }

    /// Submit a natural language query: parse → classify → validate →
    /// translate.
    ///
    /// Outcomes are memoised by the whitespace-normalized sentence: the
    /// pipeline is a pure function of sentence and catalog, so repeated
    /// questions (interactive retries, batch workloads) skip it
    /// entirely. Use [`Nalix::cache_stats`] to observe the hit rate and
    /// [`Nalix::clear_cache`] to drop the memo table.
    pub fn query(&self, sentence: &str) -> Outcome {
        let key = self.cache_key(sentence);
        if let Some(memo) = self.translations.get(&key, &self.metrics) {
            // The pipeline did not run: a cache hit records a query
            // outcome but no stage spans.
            self.metrics.record_query(obs::SpanOutcome::CacheHit);
            return memo;
        }
        let out = self.query_uncached(sentence);
        self.translations.insert(key, out.clone(), &self.metrics);
        out
    }

    /// [`Nalix::query`] without consulting or filling the translation
    /// cache.
    pub fn query_uncached(&self, sentence: &str) -> Outcome {
        match self.parse_stage(sentence) {
            Ok(dep) => self.query_tree(&dep),
            Err(e) => {
                self.metrics.record_query(obs::SpanOutcome::ParseError);
                Outcome::Rejected(Rejected {
                    errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                        detail: e.message,
                    })],
                    warnings: vec![],
                })
            }
        }
    }

    /// Dependency-parse `sentence` under an [`obs::Stage::Parse`] span.
    fn parse_stage(&self, sentence: &str) -> Result<nlparser::DepTree, nlparser::ParseFailure> {
        let span = self.metrics.span(obs::Stage::Parse);
        match nlparser::parse(sentence) {
            Ok(t) => {
                span.finish(obs::SpanOutcome::Ok);
                Ok(t)
            }
            Err(e) => {
                span.finish(obs::SpanOutcome::ParseError);
                Err(e)
            }
        }
    }

    /// Submit an already-parsed dependency tree (the user-study harness
    /// uses this entry point to inject parse noise upstream).
    pub fn query_tree(&self, dep: &nlparser::DepTree) -> Outcome {
        let (out, class) = self.run_pipeline(dep);
        self.metrics.record_query(class);
        out
    }

    /// Classify → validate → translate under stage spans, returning the
    /// outcome plus its [`obs::SpanOutcome`] class (which stage failed,
    /// if any — the same distinction [`QueryError`] draws).
    fn run_pipeline(&self, dep: &nlparser::DepTree) -> (Outcome, obs::SpanOutcome) {
        let cspan = self.metrics.span(obs::Stage::Classify);
        let classified = classify::classify(dep);
        cspan.finish(obs::SpanOutcome::Ok);
        self.run_from_classified(classified)
    }

    /// Validate → translate an already-classified tree under stage
    /// spans. Shared by [`Nalix::run_pipeline`] and the session layer,
    /// whose resolved follow-up trees enter the pipeline here (there is
    /// no sentence to classify — the tree was spliced together from the
    /// prior turn and the follow-up fragment).
    pub(crate) fn run_from_classified(
        &self,
        classified: ClassifiedTree,
    ) -> (Outcome, obs::SpanOutcome) {
        let vspan = self.metrics.span(obs::Stage::Validate);
        let validation = validate::validate(classified, &self.catalog);
        let warnings: Vec<Feedback> = validation.warnings().into_iter().cloned().collect();
        self.metrics
            .add(obs::Counter::ValidateWarnings, warnings.len() as u64);
        if !validation.is_valid() {
            let errors: Vec<Feedback> = validation.errors().into_iter().cloned().collect();
            self.metrics
                .add(obs::Counter::ValidateErrors, errors.len() as u64);
            // The "unknown term" class is a classification failure;
            // everything else the validator reports is a validation
            // failure (mirrors `QueryError::from(Rejected)`).
            let class = if errors
                .iter()
                .any(|f| matches!(f.kind, FeedbackKind::UnknownTerm { .. }))
            {
                obs::SpanOutcome::ClassifyError
            } else {
                obs::SpanOutcome::ValidateError
            };
            vspan.finish(class);
            return (Outcome::Rejected(Rejected { errors, warnings }), class);
        }
        vspan.finish(obs::SpanOutcome::Ok);

        let tspan = self.metrics.span(obs::Stage::Translate);
        match translate::translate(&validation.tree) {
            Ok(translation) => {
                tspan.finish(obs::SpanOutcome::Ok);
                (
                    Outcome::Translated(Box::new(Translated {
                        translation,
                        warnings,
                        tree: validation.tree,
                    })),
                    obs::SpanOutcome::Ok,
                )
            }
            Err(e) => {
                tspan.finish(obs::SpanOutcome::TranslateError);
                (
                    Outcome::Rejected(Rejected {
                        errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                            detail: e.message,
                        })],
                        warnings,
                    }),
                    obs::SpanOutcome::TranslateError,
                )
            }
        }
    }

    /// Evaluate a translated query against the database (on the
    /// persistent engine, whose value index stays warm across calls),
    /// under the default [`EvalBudget`].
    pub fn execute(&self, t: &Translated) -> Result<Sequence, EvalError> {
        self.engine.eval_expr(&t.translation.query)
    }

    /// [`Nalix::execute`] under an explicit resource budget.
    pub fn execute_with_budget(
        &self,
        t: &Translated,
        budget: &EvalBudget,
    ) -> Result<Sequence, EvalError> {
        self.engine
            .eval_expr_with_budget(&t.translation.query, budget)
    }

    /// Answer a question end to end — parse → classify → validate →
    /// translate → evaluate — under the default [`EvalBudget`].
    ///
    /// This is the panic-free entry point the paper's Sec. 4 contract
    /// maps to: every failure comes back as a [`QueryError`] naming the
    /// offending stage and token, with a non-empty rephrasing
    /// suggestion. Successful questions return the flat string values.
    pub fn answer(&self, sentence: &str) -> Result<Vec<String>, QueryError> {
        self.answer_with_budget(sentence, &EvalBudget::default())
    }

    /// [`Nalix::answer`] under an explicit resource budget.
    pub fn answer_with_budget(
        &self,
        sentence: &str,
        budget: &EvalBudget,
    ) -> Result<Vec<String>, QueryError> {
        self.answer_full_tree_on(self.backend, sentence, budget)
            .map(|(a, _)| a.values)
    }

    /// [`Nalix::answer_with_budget`], keeping the full detail of the
    /// success path: the values (bit-identical to what
    /// [`Nalix::answer`] returns), the pretty-printed XQuery, the
    /// non-blocking warnings, and whether the translation was a cache
    /// hit. This is what the `nalixd` HTTP server serialises.
    pub fn answer_full(&self, sentence: &str, budget: &EvalBudget) -> Result<Answer, QueryError> {
        self.answer_full_tree(sentence, budget).map(|(a, _)| a)
    }

    /// [`Nalix::answer_full`] on an explicitly named backend,
    /// overriding the instance default for this one call. This is the
    /// entry point behind the server's per-request `backend` knob and
    /// the dual-backend equivalence suite.
    pub fn answer_full_on(
        &self,
        backend: BackendKind,
        sentence: &str,
        budget: &EvalBudget,
    ) -> Result<Answer, QueryError> {
        self.answer_full_tree_on(backend, sentence, budget)
            .map(|(a, _)| a)
    }

    /// Answer on `backend` and fold the result into an [`AnswerSet`] —
    /// the normalized form cross-backend equivalence is asserted over.
    pub fn answer_set(
        &self,
        backend: BackendKind,
        sentence: &str,
        budget: &EvalBudget,
    ) -> Result<AnswerSet, QueryError> {
        let a = self.answer_full_on(backend, sentence, budget)?;
        Ok(AnswerSet::new(a.values, a.ordered))
    }

    /// [`Nalix::answer_full`], additionally returning the classified,
    /// validated parse tree — the session layer stores it as the prior
    /// turn a follow-up question resolves against.
    pub(crate) fn answer_full_tree(
        &self,
        sentence: &str,
        budget: &EvalBudget,
    ) -> Result<(Answer, ClassifiedTree), QueryError> {
        self.answer_full_tree_on(self.backend, sentence, budget)
    }

    fn answer_full_tree_on(
        &self,
        backend: BackendKind,
        sentence: &str,
        budget: &EvalBudget,
    ) -> Result<(Answer, ClassifiedTree), QueryError> {
        if let Some(verb) = detect_update_intent(sentence) {
            self.metrics.record_query(obs::SpanOutcome::ValidateError);
            return Err(QueryError::update_intent(verb));
        }
        let key = self.cache_key_on(backend, sentence);
        let (outcome, cached) = match self.translations.get(&key, &self.metrics) {
            Some(memo) => {
                self.metrics.record_query(obs::SpanOutcome::CacheHit);
                (memo, true)
            }
            None => {
                // Surfacing the parse stage as its own
                // [`QueryError::Parse`] needs the raw failure, so the
                // `query` wrapper (which folds it into generic
                // feedback) is bypassed on a miss. Parse failures are
                // not memoised; parsing is cheap.
                let dep = match self.parse_stage(sentence) {
                    Ok(dep) => dep,
                    Err(e) => {
                        self.metrics.record_query(obs::SpanOutcome::ParseError);
                        return Err(e.into());
                    }
                };
                let out = self.query_tree(&dep);
                self.translations.insert(key, out.clone(), &self.metrics);
                (out, false)
            }
        };
        match outcome {
            Outcome::Translated(t) => {
                let (values, text, ordered) = self.run_translated(&t, backend, budget)?;
                Ok((
                    Answer {
                        values,
                        xquery: text,
                        backend,
                        ordered,
                        warnings: t.warnings,
                        cached,
                    },
                    t.tree,
                ))
            }
            Outcome::Rejected(r) => Err(QueryError::from(r)),
        }
    }

    /// Evaluate a translated query on `backend`: the values, the
    /// compiled query text in the backend's own language, and whether
    /// the plan carries an explicit result order.
    fn run_translated(
        &self,
        t: &Translated,
        backend: BackendKind,
        budget: &EvalBudget,
    ) -> Result<(Vec<String>, String, bool), QueryError> {
        let ordered = backend::sql::has_explicit_order(&t.translation);
        match backend {
            BackendKind::Xquery => {
                let seq = self
                    .engine
                    .eval_expr_with_budget(&t.translation.query, budget)?;
                Ok((
                    self.engine.strings(&seq),
                    xquery::pretty::pretty(&t.translation.query),
                    ordered,
                ))
            }
            BackendKind::Sql => {
                let (values, text) = self.run_sql(t, budget)?;
                Ok((values, text, ordered))
            }
        }
    }

    /// Lower the shared plan to the SQL subset and run it over the
    /// relational shredding, under [`obs::Stage::SqlTranslate`] and
    /// [`obs::Stage::SqlEval`] spans. Budget trips map to the same
    /// `budget.tuples` error class as the XQuery engine's.
    fn run_sql(
        &self,
        t: &Translated,
        budget: &EvalBudget,
    ) -> Result<(Vec<String>, String), QueryError> {
        let tspan = self.metrics.span(obs::Stage::SqlTranslate);
        let q = match backend::sql::lower(&t.translation) {
            Ok(q) => {
                tspan.finish(obs::SpanOutcome::Ok);
                q
            }
            Err(e) => {
                tspan.finish(obs::SpanOutcome::TranslateError);
                return Err(QueryError::Translate {
                    message: e.message,
                    suggestion: "The question uses a construct the SQL backend cannot \
                                 compile; please rephrase it more simply, or ask again \
                                 on the xquery backend."
                        .to_string(),
                });
            }
        };
        let shred = self.shredding();
        let limits = sqlq::ExecLimits {
            max_tuples: Some(budget.max_tuples as u64),
        };
        let espan = self.metrics.span(obs::Stage::SqlEval);
        match sqlq::execute(&shred, &q, &limits) {
            Ok(out) => {
                espan.finish(obs::SpanOutcome::Ok);
                self.metrics.add(obs::Counter::SqlTuples, out.tuples());
                Ok((out.strings(&shred), sqlq::pretty(&q)))
            }
            Err(e @ sqlq::SqlError::Budget(limit)) => {
                espan.finish(obs::SpanOutcome::ResourceExhausted);
                self.metrics.add(obs::Counter::SqlTuples, limit);
                Err(QueryError::ResourceExhausted {
                    resource: xquery::ExhaustedResource::Tuples,
                    message: e.to_string(),
                    suggestion: "Answering this question requires combining too many \
                                 items at once. Please add a condition that narrows \
                                 the search (a name, a value, or a year), or split it \
                                 into smaller questions."
                        .to_string(),
                })
            }
            Err(e) => {
                espan.finish(obs::SpanOutcome::EvalError);
                Err(QueryError::Eval {
                    message: e.to_string(),
                    suggestion: "The question translated to a query the engine could \
                                 not run; please rephrase it more simply."
                        .to_string(),
                })
            }
        }
    }

    /// Hit/miss/size/eviction counters of the translation cache.
    ///
    /// The hit/miss pair is read from a single atomic in the metrics
    /// registry — always mutually consistent, and always equal to what
    /// [`Nalix::metrics`] reports. With the `metrics` feature compiled
    /// out, hits and misses read as zero (entries, capacity, and
    /// evictions are still live).
    pub fn cache_stats(&self) -> CacheStats {
        let (hits, misses) = self.metrics.cache_counts();
        CacheStats {
            backend: self.backend,
            hits,
            misses,
            entries: self.translations.len(),
            capacity: self.translations.capacity(),
            evictions: self.translations.evictions(),
        }
    }

    /// Snapshot of everything this instance has recorded: stage spans,
    /// query outcomes, engine counters, cache counters — with the cache
    /// entry gauge folded in. See [`obs::MetricsSnapshot`] for merging,
    /// diffing, and rendering.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.cache_entries = self.translations.len() as u64;
        snap
    }

    /// A clonable handle to this instance's registry (shared with its
    /// internal [`Engine`]).
    pub fn metrics_handle(&self) -> std::sync::Arc<obs::MetricsRegistry> {
        self.metrics.clone()
    }

    /// Drop all memoised translation outcomes (counters survive).
    pub fn clear_cache(&self) {
        self.translations.clear()
    }

    /// Convenience: query + execute, returning flat string values.
    pub fn ask(&self, sentence: &str) -> Result<Vec<String>, Rejected> {
        match self.query(sentence) {
            Outcome::Translated(t) => {
                let engine = &self.engine;
                match engine.eval_expr(&t.translation.query) {
                    Ok(seq) => Ok(engine.strings(&seq)),
                    Err(e) => Err(Rejected {
                        errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                            detail: format!("evaluation failed: {e}"),
                        })],
                        warnings: t.warnings.clone(),
                    }),
                }
            }
            Outcome::Rejected(r) => Err(r),
        }
    }

    /// Flatten a result sequence into the independent element/attribute
    /// values the paper's precision/recall metric counts ("we considered
    /// each element and attribute value as an independent value").
    pub fn flatten_values(&self, seq: &Sequence) -> Vec<String> {
        let mut out = Vec::new();
        for item in seq {
            self.flatten_item(item, &mut out);
        }
        out
    }

    fn flatten_item(&self, item: &Item, out: &mut Vec<String>) {
        match item {
            Item::Elem(e) => {
                for c in &e.children {
                    self.flatten_item(c, out);
                }
            }
            Item::Node(id) => {
                // Leaf values of the subtree: one entry per element or
                // attribute value.
                let doc = &self.doc;
                let mut found_child = false;
                for c in doc.children(*id) {
                    match doc.node(c).kind {
                        xmldb::NodeKind::Element | xmldb::NodeKind::Attribute => {
                            found_child = true;
                            self.flatten_item(&Item::Node(c), out);
                        }
                        xmldb::NodeKind::Text => {}
                    }
                }
                if !found_child {
                    out.push(doc.string_value(*id));
                }
            }
            other => out.push(other.string_value(&self.doc)),
        }
    }
}

/// Imperative verbs that ask for a mutation rather than an answer.
/// Deliberately disjoint from the parser's command verbs (`return`,
/// `find`, `list`, …), so no currently-answerable question changes
/// behaviour — every sentence these catch was a parse error before.
const UPDATE_VERBS: [&str; 13] = [
    "add", "change", "delete", "drop", "edit", "erase", "insert", "modify", "remove", "rename",
    "replace", "set", "update",
];

/// Lexical update-intent detection: does `sentence` lead with a
/// mutation verb ("Delete all the books …", "Please add a review …")?
/// Returns the verb when it does. Questions flagged here are *never*
/// applied — [`Nalix::answer`] and friends reject them with the typed
/// [`QueryError::UpdateIntent`] (`update.requires_confirmation`),
/// which points the caller at the explicit edit API instead
/// (docs/UPDATES.md). Detection is intentionally shallow: only the
/// leading word (after an optional "please") counts, so mutation
/// verbs in object position ("Find all the books that replace …")
/// never trigger it.
pub fn detect_update_intent(sentence: &str) -> Option<&'static str> {
    let mut words = sentence
        .split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()));
    let mut first = words.next()?;
    if first.eq_ignore_ascii_case("please") {
        first = words.next()?;
    }
    UPDATE_VERBS
        .iter()
        .find(|v| first.eq_ignore_ascii_case(v))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::movies::movies;

    #[test]
    fn end_to_end_accept() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let out = nalix
            .ask("Return the director of the movie, where the title of the movie is \"Traffic\".")
            .unwrap();
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn end_to_end_reject_and_suggest() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let err = nalix
            .ask("Return every director who has directed as many movies as has Ron Howard.")
            .unwrap_err();
        assert!(err
            .errors
            .iter()
            .any(|f| f.message().contains("the same as")));
    }

    #[test]
    fn mutation_questions_are_refused_not_applied() {
        let doc = std::sync::Arc::new(movies());
        let nalix = Nalix::new(std::sync::Arc::clone(&doc));
        let before = doc.stats().total_nodes();
        for q in [
            "Delete all the movies directed by Ron Howard.",
            "Please remove the book titled \"Data on the Web\".",
            "Add a review to every movie.",
            "Update the year of the movie to 2001.",
        ] {
            let err = nalix.answer(q).unwrap_err();
            assert_eq!(err.code(), "update.requires_confirmation", "{q}");
            assert!(err.suggestion().contains("/update"), "{q}");
        }
        // Nothing was applied, and read questions are untouched.
        assert_eq!(doc.stats().total_nodes(), before);
        assert!(nalix
            .answer("Find all the movies directed by Ron Howard.")
            .is_ok());
        assert!(detect_update_intent("Find all the books that replace the old edition.").is_none());
        assert!(detect_update_intent("What about by Suciu?").is_none());
    }

    #[test]
    fn warnings_do_not_block() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        match nalix.query("Return all movies and their titles.") {
            Outcome::Translated(t) => {
                assert!(!t.warnings.is_empty());
            }
            Outcome::Rejected(r) => panic!("{:?}", r.errors),
        }
    }

    #[test]
    fn flatten_values_expands_subtrees() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        match nalix.query("Find all the movies directed by Ron Howard.") {
            Outcome::Translated(t) => {
                let seq = nalix.execute(&t).unwrap();
                let values = nalix.flatten_values(&seq);
                // each movie contributes its title and director values
                assert_eq!(values.len(), 4);
                assert!(values.contains(&"Ron Howard".to_owned()));
                assert!(values.contains(&"A Beautiful Mind".to_owned()));
            }
            Outcome::Rejected(r) => panic!("{:?}", r.errors),
        }
    }

    #[test]
    fn nalix_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Nalix>();
        assert_send_sync::<BatchRunner>();
    }

    #[test]
    fn repeated_questions_hit_the_cache() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let q = "Find all the movies directed by Ron Howard.";
        let a = nalix.ask(q).unwrap();
        let b = nalix.ask(&format!("  {q}  ")).unwrap(); // whitespace-insensitive
        assert_eq!(a, b);
        let s = nalix.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        nalix.clear_cache();
        assert_eq!(nalix.cache_stats().entries, 0);
        assert_eq!(nalix.ask(q).unwrap(), a); // re-translates identically
    }

    #[test]
    fn trivially_reworded_repeats_hit_the_cache() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let a = nalix
            .ask("Find all the movies directed by Ron Howard.")
            .unwrap();
        // Unicode whitespace, curly quotes around nothing, and case
        // changes on closed-class words are tagging-equivalent — each
        // variant must hit, not re-translate.
        for variant in [
            "Find\u{00A0}all the movies\u{2009}directed by Ron Howard.",
            "find all the movies directed by Ron Howard.",
            "FIND ALL THE movies directed by Ron Howard.",
        ] {
            assert_eq!(nalix.ask(variant).unwrap(), a, "{variant:?}");
        }
        let s = nalix.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (3, 1, 1));
        // Case on a proper noun (a value) is meaning-bearing: miss.
        let _ = nalix.ask("Find all the movies directed by ron howard.");
        assert_eq!(nalix.cache_stats().misses, 2);
    }

    #[test]
    fn answer_full_values_match_answer_exactly() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let q = "Find all the movies directed by Ron Howard.";
        let plain = nalix.answer(q).unwrap();
        let full = nalix.answer_full(q, &EvalBudget::default()).unwrap();
        assert_eq!(full.values, plain);
        assert!(full.cached, "second submission should hit the cache");
        assert!(full.xquery.contains("for"), "xquery text: {}", full.xquery);
        let first = nalix
            .answer_full(
                "Return all movies and their titles.",
                &EvalBudget::default(),
            )
            .unwrap();
        assert!(!first.cached);
        assert!(!first.warnings.is_empty());
    }

    #[test]
    fn backend_joins_the_cache_key() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let q = "Find all the movies directed by Ron Howard.";
        let budget = EvalBudget::default();
        let a = nalix
            .answer_full_on(BackendKind::Xquery, q, &budget)
            .unwrap();
        let b = nalix.answer_full_on(BackendKind::Sql, q, &budget).unwrap();
        // Same question on the other backend is a distinct cache entry:
        // two misses, zero hits, two entries.
        let s = nalix.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
        assert_eq!(s.backend, BackendKind::Xquery);
        // Repeats on either backend hit their own entry.
        assert!(
            nalix
                .answer_full_on(BackendKind::Sql, q, &budget)
                .unwrap()
                .cached
        );
        assert!(
            nalix
                .answer_full_on(BackendKind::Xquery, q, &budget)
                .unwrap()
                .cached
        );
        assert_eq!(nalix.cache_stats().hits, 2);
        // And the two backends agree on the answer set.
        assert_eq!(a.backend, BackendKind::Xquery);
        assert_eq!(b.backend, BackendKind::Sql);
        assert!(b.xquery.starts_with("SELECT"), "sql text: {}", b.xquery);
        assert!(
            AnswerSet::new(a.values, a.ordered).equivalent(&AnswerSet::new(b.values, b.ordered))
        );
    }

    #[test]
    fn sql_backend_answers_end_to_end() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone()).with_backend(BackendKind::Sql);
        assert_eq!(nalix.backend(), BackendKind::Sql);
        let out = nalix
            .answer(
                "Return the director of the movie, where the title of the movie is \"Traffic\".",
            )
            .unwrap();
        assert_eq!(out, vec!["Steven Soderbergh"]);
        let snap = nalix.metrics();
        assert!(snap.counter(obs::Counter::ShredBuilds) == 1);
        assert!(snap.counter(obs::Counter::SqlTuples) > 0);
    }

    #[test]
    fn sql_backend_budget_trips_as_tuple_exhaustion() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone()).with_backend(BackendKind::Sql);
        let budget = EvalBudget {
            max_tuples: 1,
            ..EvalBudget::default()
        };
        let err = nalix
            .answer_with_budget("Return all movies and their titles.", &budget)
            .unwrap_err();
        assert_eq!(err.code(), "budget.tuples");
        assert!(!err.suggestion().is_empty());
    }

    #[test]
    fn bounded_cache_evicts_and_keeps_answering() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone()).with_cache_capacity(2);
        assert_eq!(nalix.cache_stats().capacity, 2);
        let questions = [
            "Find all the movies directed by Ron Howard.",
            "Return the director of the movie, where the title of the movie is \"Traffic\".",
            "Return all movies and their titles.",
            "Return the title of every movie.",
        ];
        let first: Vec<_> = questions.iter().map(|q| nalix.ask(q).ok()).collect();
        let s = nalix.cache_stats();
        assert_eq!(s.entries, 2, "capacity bound violated");
        assert_eq!(s.evictions, 2);
        // Evicted questions re-translate to the same replies.
        let second: Vec<_> = questions.iter().map(|q| nalix.ask(q).ok()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn unparseable_sentence_is_rejected_gracefully() {
        let doc = movies();
        let nalix = Nalix::new(doc.clone());
        let out = nalix.query("The weather is nice today.");
        assert!(!out.is_translated());
    }
}
