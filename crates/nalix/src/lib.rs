#![warn(missing_docs)]

//! # nalix — a generic natural language interface for an XML database
//!
//! Reproduction of *Li, Yang & Jagadish, "Constructing a Generic Natural
//! Language Interface for an XML Database", EDBT 2006*: an arbitrary
//! English query is parsed (crate [`nlparser`]), classified into tokens
//! and markers (Tables 1–2), validated against the supported grammar
//! (Table 6) with dynamically generated feedback, and translated into a
//! Schema-Free XQuery expression (crate [`xquery`]) evaluated against an
//! XML database (crate [`xmldb`]).
//!
//! ## Quick start
//!
//! ```
//! use nalix::Nalix;
//! use xmldb::datasets::movies::movies;
//!
//! let doc = movies();
//! let nalix = Nalix::new(&doc);
//! match nalix.query("Find all the movies directed by Ron Howard.") {
//!     nalix::Outcome::Translated(t) => {
//!         let results = nalix.execute(&t).unwrap();
//!         assert_eq!(results.len(), 2);
//!     }
//!     nalix::Outcome::Rejected(r) => panic!("{:?}", r.errors),
//! }
//! ```
//!
//! ## The interactive loop
//!
//! When a query cannot be understood, [`Nalix::query`] returns
//! [`Outcome::Rejected`] carrying error messages with rephrasing
//! suggestions — the paper's interactive query-formulation mechanism
//! (Sec. 4). The paper's running example works verbatim:
//!
//! ```
//! use nalix::{Nalix, Outcome};
//! use xmldb::datasets::movies::movies;
//!
//! let doc = movies();
//! let nalix = Nalix::new(&doc);
//! // Query 1 is invalid — "as" is outside the vocabulary…
//! let out = nalix.query(
//!     "Return every director who has directed as many movies as has Ron Howard.");
//! let rejection = match out {
//!     Outcome::Rejected(r) => r,
//!     _ => panic!("expected rejection"),
//! };
//! assert!(rejection.errors[0].message().contains("the same as"));
//! // …and Query 2, the suggested rephrasing, translates and runs.
//! let out = nalix.query(
//!     "Return every director, where the number of movies directed by the \
//!      director is the same as the number of movies directed by Ron Howard.");
//! assert!(matches!(out, Outcome::Translated(_)));
//! ```

pub mod binding;
pub mod catalog;
pub mod classify;
pub mod explain;
pub mod feedback;
pub mod semantics;
pub mod thesaurus;
pub mod token;
pub mod translate;
pub mod validate;
pub mod vocab;

pub use feedback::{Feedback, FeedbackKind, Severity};
pub use token::{ClassifiedTree, NodeClass, OpSem, QtKind, TokenType};
pub use translate::{TranslateError, Translation};

use catalog::Catalog;
use xmldb::Document;
use xquery::{Engine, EvalError, Item, Sequence};

/// A successfully translated query.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The Schema-Free XQuery expression.
    pub translation: Translation,
    /// Non-blocking warnings (pronouns, ambiguous names).
    pub warnings: Vec<Feedback>,
    /// The classified, validated parse tree (for explain output).
    pub tree: ClassifiedTree,
}

/// A rejected query, with the feedback the user sees.
#[derive(Debug, Clone)]
pub struct Rejected {
    /// The errors (at least one).
    pub errors: Vec<Feedback>,
    /// Warnings gathered before rejection.
    pub warnings: Vec<Feedback>,
}

/// The outcome of submitting one natural language query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The query was understood; evaluate with [`Nalix::execute`].
    Translated(Box<Translated>),
    /// The query was rejected; revise using the error messages.
    Rejected(Rejected),
}

impl Outcome {
    /// True for [`Outcome::Translated`].
    pub fn is_translated(&self) -> bool {
        matches!(self, Outcome::Translated(_))
    }
}

/// The NaLIX system: a natural language query interface over one XML
/// document.
pub struct Nalix<'d> {
    doc: &'d Document,
    catalog: Catalog,
}

impl<'d> Nalix<'d> {
    /// Build the interface for a (finalized) document. Catalog
    /// construction scans the document once.
    pub fn new(doc: &'d Document) -> Self {
        Nalix {
            doc,
            catalog: Catalog::build(doc),
        }
    }

    /// The underlying document.
    pub fn doc(&self) -> &'d Document {
        self.doc
    }

    /// The database catalog (labels and value index).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Submit a natural language query: parse → classify → validate →
    /// translate.
    pub fn query(&self, sentence: &str) -> Outcome {
        let dep = match nlparser::parse(sentence) {
            Ok(t) => t,
            Err(e) => {
                return Outcome::Rejected(Rejected {
                    errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                        detail: e.message,
                    })],
                    warnings: vec![],
                })
            }
        };
        self.query_tree(&dep)
    }

    /// Submit an already-parsed dependency tree (the user-study harness
    /// uses this entry point to inject parse noise upstream).
    pub fn query_tree(&self, dep: &nlparser::DepTree) -> Outcome {
        let classified = classify::classify(dep);
        let validation = validate::validate(classified, &self.catalog);
        let warnings: Vec<Feedback> = validation
            .warnings()
            .into_iter()
            .cloned()
            .collect();
        if !validation.is_valid() {
            return Outcome::Rejected(Rejected {
                errors: validation.errors().into_iter().cloned().collect(),
                warnings,
            });
        }
        match translate::translate(&validation.tree) {
            Ok(translation) => Outcome::Translated(Box::new(Translated {
                translation,
                warnings,
                tree: validation.tree,
            })),
            Err(e) => Outcome::Rejected(Rejected {
                errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                    detail: e.message,
                })],
                warnings,
            }),
        }
    }

    /// Evaluate a translated query against the database.
    pub fn execute(&self, t: &Translated) -> Result<Sequence, EvalError> {
        Engine::new(self.doc).eval_expr(&t.translation.query)
    }

    /// Convenience: query + execute, returning flat string values.
    pub fn ask(&self, sentence: &str) -> Result<Vec<String>, Rejected> {
        match self.query(sentence) {
            Outcome::Translated(t) => {
                let engine = Engine::new(self.doc);
                match engine.eval_expr(&t.translation.query) {
                    Ok(seq) => Ok(engine.strings(&seq)),
                    Err(e) => Err(Rejected {
                        errors: vec![Feedback::error(FeedbackKind::GrammarViolation {
                            detail: format!("evaluation failed: {e}"),
                        })],
                        warnings: t.warnings.clone(),
                    }),
                }
            }
            Outcome::Rejected(r) => Err(r),
        }
    }

    /// Flatten a result sequence into the independent element/attribute
    /// values the paper's precision/recall metric counts ("we considered
    /// each element and attribute value as an independent value").
    pub fn flatten_values(&self, seq: &Sequence) -> Vec<String> {
        let mut out = Vec::new();
        for item in seq {
            self.flatten_item(item, &mut out);
        }
        out
    }

    fn flatten_item(&self, item: &Item, out: &mut Vec<String>) {
        match item {
            Item::Elem(e) => {
                for c in &e.children {
                    self.flatten_item(c, out);
                }
            }
            Item::Node(id) => {
                // Leaf values of the subtree: one entry per element or
                // attribute value.
                let doc = self.doc;
                let mut found_child = false;
                for c in doc.children(*id) {
                    match doc.node(c).kind {
                        xmldb::NodeKind::Element | xmldb::NodeKind::Attribute => {
                            found_child = true;
                            self.flatten_item(&Item::Node(c), out);
                        }
                        xmldb::NodeKind::Text => {}
                    }
                }
                if !found_child {
                    out.push(doc.string_value(*id));
                }
            }
            other => out.push(other.string_value(self.doc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::movies::movies;

    #[test]
    fn end_to_end_accept() {
        let doc = movies();
        let nalix = Nalix::new(&doc);
        let out = nalix
            .ask("Return the director of the movie, where the title of the movie is \"Traffic\".")
            .unwrap();
        assert_eq!(out, vec!["Steven Soderbergh"]);
    }

    #[test]
    fn end_to_end_reject_and_suggest() {
        let doc = movies();
        let nalix = Nalix::new(&doc);
        let err = nalix
            .ask("Return every director who has directed as many movies as has Ron Howard.")
            .unwrap_err();
        assert!(err
            .errors
            .iter()
            .any(|f| f.message().contains("the same as")));
    }

    #[test]
    fn warnings_do_not_block() {
        let doc = movies();
        let nalix = Nalix::new(&doc);
        match nalix.query("Return all movies and their titles.") {
            Outcome::Translated(t) => {
                assert!(!t.warnings.is_empty());
            }
            Outcome::Rejected(r) => panic!("{:?}", r.errors),
        }
    }

    #[test]
    fn flatten_values_expands_subtrees() {
        let doc = movies();
        let nalix = Nalix::new(&doc);
        match nalix.query("Find all the movies directed by Ron Howard.") {
            Outcome::Translated(t) => {
                let seq = nalix.execute(&t).unwrap();
                let values = nalix.flatten_values(&seq);
                // each movie contributes its title and director values
                assert_eq!(values.len(), 4);
                assert!(values.contains(&"Ron Howard".to_owned()));
                assert!(values.contains(&"A Beautiful Mind".to_owned()));
            }
            Outcome::Rejected(r) => panic!("{:?}", r.errors),
        }
    }

    #[test]
    fn unparseable_sentence_is_rejected_gracefully() {
        let doc = movies();
        let nalix = Nalix::new(&doc);
        let out = nalix.query("The weather is nice today.");
        assert!(!out.is_translated());
    }
}
