//! Database catalog: the label and value indexes validation consults.
//!
//! Built once per document, the catalog answers the two questions
//! NaLIX's validation asks of the database:
//!
//! 1. *Which element/attribute names exist?* — for term expansion of
//!    name tokens (paper Sec. 4, "Term Expansion").
//! 2. *Which names carry a given value?* — for implicit name-token
//!    resolution (Def. 11: "An implicit NT related to a VT is the
//!    name(s) of element or attribute with the value of VT in the
//!    database").
//!
//! ## Incremental maintenance
//!
//! The write path (`xmldb::PendingUpdate`) records every value it adds
//! or removes as a balanced [`xmldb::ValueOp`] delta;
//! [`Catalog::apply_update`] folds those deltas into the value index by
//! refcount instead of rescanning the document. Every structure is kept
//! *exactly* equal to what [`Catalog::build`] over the successor
//! document would produce (the update differential test asserts
//! equality): occurrence refcounts add and subtract symmetrically,
//! numeric per-label counts ride the same deltas, and a numeric range
//! is rescanned from the surviving index only when a deleted value sat
//! on its boundary.

use std::collections::HashMap;
use xmldb::{Document, NodeKind, UpdateStats};

/// Precomputed database metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    labels: Vec<String>,
    /// normalised value → label → occurrence refcount, for elements and
    /// attributes holding the value
    value_index: HashMap<String, HashMap<String, usize>>,
    /// label → (numeric occurrences, total occurrences); labels whose
    /// values are (almost) always numeric are the fallback for numeric
    /// VTs whose exact value is absent ("after 2030")
    numeric: HashMap<String, (usize, usize)>,
    /// per-label numeric value range, for range-aware fallback
    numeric_ranges: HashMap<String, (f64, f64)>,
}

fn norm(v: &str) -> String {
    v.trim().to_lowercase()
}

impl Catalog {
    /// Scan `doc` and build the catalog.
    pub fn build(doc: &Document) -> Self {
        let mut value_index: HashMap<String, HashMap<String, usize>> = HashMap::new();
        let mut numeric: HashMap<String, (usize, usize)> = HashMap::new();
        let mut ranges: HashMap<String, (f64, f64)> = HashMap::new();
        let mut record = |label: &str, value: &str| {
            record_one(&mut value_index, &mut numeric, &mut ranges, label, value);
        };

        // Walk the tree from the root rather than the arena slots: after
        // node-level updates the arena may hold detached (deleted) slots
        // whose values must not resurface in the catalog.
        let root = doc.root();
        for id in std::iter::once(root).chain(doc.descendants(root)) {
            let n = doc.node(id);
            match n.kind {
                NodeKind::Attribute => {
                    record(doc.label(id), n.value.unwrap_or(""));
                }
                NodeKind::Text => {
                    // Value is recorded under the owning element's label.
                    if let Some(p) = n.parent {
                        record(doc.label(p), n.value.unwrap_or(""));
                    }
                }
                NodeKind::Element => {}
            }
        }

        Catalog {
            labels: doc.labels().into_iter().map(str::to_owned).collect(),
            value_index,
            numeric,
            numeric_ranges: ranges,
        }
    }

    /// Fold one committed update batch's deltas into the catalog,
    /// leaving it equal to [`Catalog::build`] over the successor
    /// document — without the full scan. `doc` must be the successor
    /// the deltas in `stats` describe (its interner resolves the
    /// symbols the ops carry).
    pub fn apply_update(&mut self, doc: &Document, stats: &UpdateStats) {
        // The label list is interner-derived and the interner is
        // append-only, so re-deriving it is both cheap and identical to
        // a rebuild's.
        self.labels = doc.labels().into_iter().map(str::to_owned).collect();

        let mut stale_ranges: Vec<String> = Vec::new();
        for op in &stats.value_ops {
            let key = norm(&op.value);
            if key.is_empty() {
                continue;
            }
            let label = doc.resolve_label(op.label);
            if op.added {
                record_one(
                    &mut self.value_index,
                    &mut self.numeric,
                    &mut self.numeric_ranges,
                    label,
                    &op.value,
                );
                continue;
            }
            let parsed = op.value.trim().parse::<f64>().ok();
            if let Some(entry) = self.value_index.get_mut(&key) {
                if let Some(c) = entry.get_mut(label) {
                    *c = c.saturating_sub(1);
                    if *c == 0 {
                        entry.remove(label);
                    }
                }
                if entry.is_empty() {
                    self.value_index.remove(&key);
                }
            }
            if let Some(c) = self.numeric.get_mut(label) {
                c.1 = c.1.saturating_sub(1);
                if parsed.is_some() {
                    c.0 = c.0.saturating_sub(1);
                }
                let numeric_left = c.0;
                if c.1 == 0 {
                    self.numeric.remove(label);
                    self.numeric_ranges.remove(label);
                } else if let Some(v) = parsed {
                    if numeric_left == 0 {
                        self.numeric_ranges.remove(label);
                    } else if self
                        .numeric_ranges
                        .get(label)
                        .is_some_and(|(lo, hi)| v <= *lo || v >= *hi)
                    {
                        // A boundary value left: the range may shrink,
                        // which a widen-only fold cannot express.
                        stale_ranges.push(label.to_owned());
                    }
                }
            }
        }

        // Rescan only the labels whose range boundary was deleted, from
        // the (already-patched) value index.
        stale_ranges.sort_unstable();
        stale_ranges.dedup();
        for label in stale_ranges {
            if self.numeric.get(&label).is_none_or(|c| c.0 == 0) {
                continue;
            }
            let mut range: Option<(f64, f64)> = None;
            for (key, labels) in &self.value_index {
                if !labels.contains_key(&label) {
                    continue;
                }
                if let Ok(v) = key.parse::<f64>() {
                    range = Some(match range {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                }
            }
            match range {
                Some(r) => {
                    self.numeric_ranges.insert(label, r);
                }
                None => {
                    self.numeric_ranges.remove(&label);
                }
            }
        }
    }

    /// All element/attribute names in the database.
    pub fn labels(&self) -> Vec<&str> {
        self.labels.iter().map(String::as_str).collect()
    }

    /// Names of elements/attributes holding exactly `value`
    /// (case-insensitive), sorted for determinism.
    pub fn labels_for_value(&self, value: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .value_index
            .get(&norm(value))
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Names whose values are numeric — the implicit-NT fallback for a
    /// numeric value token that does not literally occur.
    pub fn numeric_labels(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .numeric
            .iter()
            .filter(|(_, (num, total))| *total > 0 && *num * 10 >= *total * 9)
            .map(|(l, _)| l.clone())
            .collect();
        v.sort();
        v
    }

    /// Range-aware fallback: numeric labels whose observed value range
    /// covers `value` (so "before 1993" resolves to `year`, whose values
    /// span 1992–2000, and not to `price`, whose values span 39–130).
    /// Falls back to all numeric labels when none covers the value.
    pub fn numeric_labels_for(&self, value: f64) -> Vec<String> {
        let v: Vec<String> = self
            .numeric_labels()
            .into_iter()
            .filter(|l| {
                self.numeric_ranges
                    .get(l)
                    .is_some_and(|(lo, hi)| *lo <= value && value <= *hi)
            })
            .collect();
        if v.is_empty() {
            return self.numeric_labels();
        }
        v
    }
}

/// Record one occurrence of `value` under `label` — shared by the full
/// scan and the incremental add path, so the two stay byte-identical.
fn record_one(
    value_index: &mut HashMap<String, HashMap<String, usize>>,
    numeric: &mut HashMap<String, (usize, usize)>,
    ranges: &mut HashMap<String, (f64, f64)>,
    label: &str,
    value: &str,
) {
    let key = norm(value);
    if key.is_empty() {
        return;
    }
    *value_index
        .entry(key)
        .or_default()
        .entry(label.to_owned())
        .or_insert(0) += 1;
    let c = numeric.entry(label.to_owned()).or_insert((0, 0));
    c.1 += 1;
    if let Ok(v) = value.trim().parse::<f64>() {
        c.0 += 1;
        ranges
            .entry(label.to_owned())
            .and_modify(|(lo, hi)| {
                *lo = lo.min(v);
                *hi = hi.max(v);
            })
            .or_insert((v, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::bib::bib;
    use xmldb::datasets::movies::movies;
    use xmldb::{Edit, NewNode};

    #[test]
    fn labels_enumerated() {
        let c = Catalog::build(&movies());
        let labels = c.labels();
        assert!(labels.contains(&"movie"));
        assert!(labels.contains(&"director"));
        assert!(!labels.contains(&"#text"));
    }

    #[test]
    fn value_lookup_finds_director() {
        let c = Catalog::build(&movies());
        assert_eq!(c.labels_for_value("Ron Howard"), vec!["director"]);
        assert_eq!(c.labels_for_value("ron howard"), vec!["director"]);
    }

    #[test]
    fn value_lookup_multiple_labels() {
        let d =
            xmldb::Document::parse_str("<r><a>shared</a><b>shared</b><a>other</a></r>").unwrap();
        let c = Catalog::build(&d);
        assert_eq!(c.labels_for_value("shared"), vec!["a", "b"]);
    }

    #[test]
    fn missing_value_is_empty() {
        let c = Catalog::build(&movies());
        assert!(c.labels_for_value("Stanley Kubrick").is_empty());
    }

    #[test]
    fn numeric_labels_detected() {
        let c = Catalog::build(&bib());
        let numeric = c.numeric_labels();
        assert!(numeric.contains(&"price".to_owned()), "{numeric:?}");
        assert!(numeric.contains(&"year".to_owned()), "{numeric:?}");
        assert!(!numeric.contains(&"title".to_owned()));
    }

    #[test]
    fn attribute_values_indexed() {
        let c = Catalog::build(&bib());
        assert_eq!(c.labels_for_value("1994"), vec!["year"]);
    }

    /// Apply an edit batch both ways — incremental fold vs full rebuild
    /// over the successor — and require exact catalog equality.
    fn assert_patch_matches_rebuild(doc: &Document, edits: &[Edit]) {
        let mut catalog = Catalog::build(doc);
        let mut up = doc.begin_update().unwrap();
        for e in edits {
            up.apply(e).unwrap();
        }
        let (next, stats) = up.commit();
        assert_eq!(
            stats.strategy,
            xmldb::CommitStrategy::Patch,
            "test batches must stay on the patch path"
        );
        catalog.apply_update(&next, &stats);
        assert_eq!(catalog, Catalog::build(&next));
    }

    #[test]
    fn patched_catalog_matches_rebuild_after_insert() {
        let doc = bib();
        let book = doc.nodes_labeled("book")[0];
        assert_patch_matches_rebuild(
            &doc,
            &[
                Edit::InsertChild {
                    parent: book,
                    node: NewNode::Leaf {
                        label: "note".into(),
                        text: "second printing".into(),
                    },
                },
                Edit::InsertChild {
                    parent: book,
                    node: NewNode::Attribute {
                        name: "lang".into(),
                        value: "en".into(),
                    },
                },
            ],
        );
    }

    #[test]
    fn patched_catalog_matches_rebuild_after_delete() {
        // A small deletion (one price leaf + one author) stays under the
        // patch threshold; whole-book deletes would trip the rebuild.
        let doc = bib();
        let price = doc.nodes_labeled("price")[1];
        let author = doc.nodes_labeled("author")[0];
        assert_patch_matches_rebuild(
            &doc,
            &[
                Edit::DeleteSubtree { target: price },
                Edit::DeleteSubtree { target: author },
            ],
        );
    }

    #[test]
    fn patched_catalog_matches_rebuild_after_replace_and_rename() {
        let doc = bib();
        let title = doc.nodes_labeled("title")[1];
        let text = doc.first_child(title).unwrap();
        assert_patch_matches_rebuild(
            &doc,
            &[
                Edit::ReplaceValue {
                    target: text,
                    value: "A Fresh Title".into(),
                },
                Edit::RenameLabel {
                    target: title,
                    label: "heading".into(),
                },
            ],
        );
    }

    #[test]
    fn deleting_a_range_boundary_shrinks_the_range() {
        // years 1992/1994/2000: deleting the 2000 book must shrink the
        // year range so range-aware fallback stays exact.
        let doc = bib();
        let boundary_year = doc
            .nodes_labeled("year")
            .iter()
            .copied()
            .find(|&y| doc.string_value(y) == "2000")
            .expect("a year node holding 2000");
        let mut catalog = Catalog::build(&doc);
        let mut up = doc.begin_update().unwrap();
        up.apply(&Edit::DeleteSubtree {
            target: boundary_year,
        })
        .unwrap();
        let (next, stats) = up.commit();
        catalog.apply_update(&next, &stats);
        let rebuilt = Catalog::build(&next);
        assert_eq!(catalog, rebuilt);
        // bib's remaining years are 1992/1994/1999: the upper bound must
        // have shrunk below the deleted 2000.
        let (lo, hi) = catalog.numeric_ranges["year"];
        assert_eq!((lo, hi), (1992.0, 1999.0));
    }
}
