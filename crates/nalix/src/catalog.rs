//! Database catalog: the label and value indexes validation consults.
//!
//! Built once per document, the catalog answers the two questions
//! NaLIX's validation asks of the database:
//!
//! 1. *Which element/attribute names exist?* — for term expansion of
//!    name tokens (paper Sec. 4, "Term Expansion").
//! 2. *Which names carry a given value?* — for implicit name-token
//!    resolution (Def. 11: "An implicit NT related to a VT is the
//!    name(s) of element or attribute with the value of VT in the
//!    database").

use std::collections::{HashMap, HashSet};
use xmldb::{Document, NodeKind};

/// Precomputed database metadata.
#[derive(Debug, Clone)]
pub struct Catalog {
    labels: Vec<String>,
    /// normalised value → labels of elements/attributes holding it
    value_index: HashMap<String, Vec<String>>,
    /// labels whose values are (almost) always numeric — the fallback
    /// for numeric VTs whose exact value is absent ("after 2030")
    numeric_labels: Vec<String>,
    /// per-label numeric value range, for range-aware fallback
    numeric_ranges: HashMap<String, (f64, f64)>,
}

fn norm(v: &str) -> String {
    v.trim().to_lowercase()
}

impl Catalog {
    /// Scan `doc` and build the catalog.
    pub fn build(doc: &Document) -> Self {
        let mut labels: Vec<String> = Vec::new();
        let mut seen = HashSet::new();
        for l in doc.labels() {
            if seen.insert(l.to_owned()) {
                labels.push(l.to_owned());
            }
        }

        let mut value_index: HashMap<String, Vec<String>> = HashMap::new();
        let mut numeric: HashMap<String, (usize, usize)> = HashMap::new(); // label -> (numeric, total)
        let mut ranges: HashMap<String, (f64, f64)> = HashMap::new();
        let mut record = |label: &str, value: &str| {
            let key = norm(value);
            if key.is_empty() {
                return;
            }
            let entry = value_index.entry(key).or_default();
            if !entry.iter().any(|l| l == label) {
                entry.push(label.to_owned());
            }
            let c = numeric.entry(label.to_owned()).or_insert((0, 0));
            c.1 += 1;
            if let Ok(v) = value.trim().parse::<f64>() {
                c.0 += 1;
                ranges
                    .entry(label.to_owned())
                    .and_modify(|(lo, hi)| {
                        *lo = lo.min(v);
                        *hi = hi.max(v);
                    })
                    .or_insert((v, v));
            }
        };

        for r in 0..doc.len() {
            let id = xmldb::NodeId::from_index(r);
            let n = doc.node(id);
            match n.kind {
                NodeKind::Attribute => {
                    record(doc.label(id), n.value.unwrap_or(""));
                }
                NodeKind::Text => {
                    // Value is recorded under the owning element's label.
                    if let Some(p) = n.parent {
                        record(doc.label(p), n.value.unwrap_or(""));
                    }
                }
                NodeKind::Element => {}
            }
        }

        let numeric_labels = numeric
            .into_iter()
            .filter(|(_, (num, total))| *total > 0 && *num * 10 >= *total * 9)
            .map(|(l, _)| l)
            .collect();

        Catalog {
            labels,
            value_index,
            numeric_labels,
            numeric_ranges: ranges,
        }
    }

    /// All element/attribute names in the database.
    pub fn labels(&self) -> Vec<&str> {
        self.labels.iter().map(String::as_str).collect()
    }

    /// Names of elements/attributes holding exactly `value`
    /// (case-insensitive).
    pub fn labels_for_value(&self, value: &str) -> Vec<String> {
        self.value_index
            .get(&norm(value))
            .cloned()
            .unwrap_or_default()
    }

    /// Names whose values are numeric — the implicit-NT fallback for a
    /// numeric value token that does not literally occur.
    pub fn numeric_labels(&self) -> Vec<String> {
        let mut v = self.numeric_labels.clone();
        v.sort();
        v
    }

    /// Range-aware fallback: numeric labels whose observed value range
    /// covers `value` (so "before 1993" resolves to `year`, whose values
    /// span 1992–2000, and not to `price`, whose values span 39–130).
    /// Falls back to all numeric labels when none covers the value.
    pub fn numeric_labels_for(&self, value: f64) -> Vec<String> {
        let mut v: Vec<String> = self
            .numeric_labels
            .iter()
            .filter(|l| {
                self.numeric_ranges
                    .get(*l)
                    .is_some_and(|(lo, hi)| *lo <= value && value <= *hi)
            })
            .cloned()
            .collect();
        if v.is_empty() {
            return self.numeric_labels();
        }
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::bib::bib;
    use xmldb::datasets::movies::movies;

    #[test]
    fn labels_enumerated() {
        let c = Catalog::build(&movies());
        let labels = c.labels();
        assert!(labels.contains(&"movie"));
        assert!(labels.contains(&"director"));
        assert!(!labels.contains(&"#text"));
    }

    #[test]
    fn value_lookup_finds_director() {
        let c = Catalog::build(&movies());
        assert_eq!(c.labels_for_value("Ron Howard"), vec!["director"]);
        assert_eq!(c.labels_for_value("ron howard"), vec!["director"]);
    }

    #[test]
    fn value_lookup_multiple_labels() {
        let d =
            xmldb::Document::parse_str("<r><a>shared</a><b>shared</b><a>other</a></r>").unwrap();
        let c = Catalog::build(&d);
        let mut hits = c.labels_for_value("shared");
        hits.sort();
        assert_eq!(hits, vec!["a", "b"]);
    }

    #[test]
    fn missing_value_is_empty() {
        let c = Catalog::build(&movies());
        assert!(c.labels_for_value("Stanley Kubrick").is_empty());
    }

    #[test]
    fn numeric_labels_detected() {
        let c = Catalog::build(&bib());
        let numeric = c.numeric_labels();
        assert!(numeric.contains(&"price".to_owned()), "{numeric:?}");
        assert!(numeric.contains(&"year".to_owned()), "{numeric:?}");
        assert!(!numeric.contains(&"title".to_owned()));
    }

    #[test]
    fn attribute_values_indexed() {
        let c = Catalog::build(&bib());
        assert_eq!(c.labels_for_value("1994"), vec!["year"]);
    }
}
