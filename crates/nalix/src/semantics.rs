//! The token-relationship semantics of Sec. 3.2.1: name-token
//! equivalence (Def. 1), sub-parse trees (Def. 2), core tokens
//! (Def. 3), direct relatedness (Def. 4), relatedness by core token
//! (Def. 5), the related-NT closure (Def. 6), and attachment (Def. 7).

use crate::token::{ClassifiedTree, NodeClass, TokenType};
use std::collections::HashMap;

/// Computed relationship structure over a validated parse tree.
#[derive(Debug, Clone)]
pub struct Semantics {
    /// All NT node indices, in tree order.
    pub nts: Vec<usize>,
    /// Per NT (indexed like `nts`): is it a core token?
    pub core: HashMap<usize, bool>,
    /// Pairs of directly related NTs (Def. 4), symmetric.
    pub directly_related: Vec<(usize, usize)>,
    /// Partition of NT nodes into related sets (Def. 6).
    pub related_sets: Vec<Vec<usize>>,
    /// Whether the query has any core token at all (drives Def. 10).
    pub has_core: bool,
}

/// Modifier fingerprint of an NT: the lemmas of its modifier-marker
/// children, sorted. Two NTs with the same noun but different modifiers
/// ("first book" vs "second book") are not equivalent (Def. 1).
fn modifiers(tree: &ClassifiedTree, nt: usize) -> Vec<String> {
    let mut mods: Vec<String> = tree
        .node(nt)
        .children
        .iter()
        .filter(|&&c| {
            matches!(
                tree.node(c).class,
                NodeClass::Marker(crate::token::MarkerType::Mm)
            )
        })
        .map(|&c| tree.node(c).lemma.clone())
        .collect();
    mods.sort();
    mods
}

/// Name-token equivalence (Def. 1).
pub fn equivalent(tree: &ClassifiedTree, a: usize, b: usize) -> bool {
    let na = tree.node(a);
    let nb = tree.node(b);
    if !na.class.is_nt() || !nb.class.is_nt() {
        return false;
    }
    match (na.implicit, nb.implicit) {
        (false, false) => {
            let same_name =
                na.lemma == nb.lemma || (!na.expansion.is_empty() && na.expansion == nb.expansion);
            same_name && modifiers(tree, a) == modifiers(tree, b)
        }
        (true, true) => {
            // Implicit NTs are equivalent when their VTs hold the same
            // value.
            let va = vt_value(tree, a);
            let vb = vt_value(tree, b);
            va.is_some() && va == vb
        }
        _ => false,
    }
}

/// The value of the VT directly under an (implicit) NT, if any.
pub fn vt_value(tree: &ClassifiedTree, nt: usize) -> Option<String> {
    tree.node(nt)
        .children
        .iter()
        .find(|&&c| tree.node(c).class.is_vt())
        .map(|&c| tree.node(c).words.clone())
}

/// The "effective parent" of Def. 4: the nearest ancestor that is not a
/// marker and not an FT/OT node with a single (non-marker) child.
pub fn effective_parent(tree: &ClassifiedTree, node: usize) -> Option<usize> {
    let mut cur = tree.node(node).parent?;
    loop {
        let n = tree.node(cur);
        let skip = match n.class {
            NodeClass::Marker(_) => true,
            NodeClass::Token(TokenType::Ft(_)) | NodeClass::Token(TokenType::Ot(_)) => {
                let token_children = n
                    .children
                    .iter()
                    .filter(|&&c| !tree.node(c).class.is_marker())
                    .count();
                token_children <= 1
            }
            _ => false,
        };
        if skip {
            cur = tree.node(cur).parent?;
        } else {
            return Some(cur);
        }
    }
}

/// Directly related name tokens (Def. 4).
pub fn directly_related(tree: &ClassifiedTree, a: usize, b: usize) -> bool {
    if !tree.node(a).class.is_nt() || !tree.node(b).class.is_nt() || a == b {
        return false;
    }
    effective_parent(tree, a) == Some(b) || effective_parent(tree, b) == Some(a)
}

/// The token (if any) that a token node *attaches to* (Def. 7): its
/// parent/child token partner, with the direction fixed by sentence
/// order. Used for FT and QT scope decisions ("the basic variable that
/// the function directly attaches to").
pub fn attaches_to(tree: &ClassifiedTree, node: usize) -> Option<usize> {
    // Prefer a single non-marker child; else the effective parent.
    let token_children: Vec<usize> = tree
        .node(node)
        .children
        .iter()
        .copied()
        .filter(|&c| !tree.node(c).class.is_marker())
        .collect();
    if token_children.len() == 1 {
        return Some(token_children[0]);
    }
    effective_parent(tree, node)
}

/// Analyze the tree (all of Defs. 1–6 combined).
pub fn analyze(tree: &ClassifiedTree) -> Semantics {
    let nts: Vec<usize> = tree
        .refs()
        .filter(|&r| tree.node(r).class.is_nt())
        .collect();

    // --- Sub-parse trees (Def. 2): OT nodes with ≥2 non-marker children.
    let sub_roots: Vec<usize> = tree
        .refs()
        .filter(|&r| {
            tree.node(r).class.ot().is_some()
                && tree
                    .node(r)
                    .children
                    .iter()
                    .filter(|&&c| !tree.node(c).class.is_marker())
                    .count()
                    >= 2
        })
        .collect();

    let in_subtree = |node: usize, root: usize| -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == root {
                return true;
            }
            cur = tree.node(c).parent;
        }
        false
    };

    // --- Core tokens (Def. 3i): NT in a sub-parse tree with no
    // descendant NTs.
    let has_descendant_nt = |nt: usize| -> bool {
        // BFS below nt
        let mut stack: Vec<usize> = tree.node(nt).children.clone();
        while let Some(c) = stack.pop() {
            if tree.node(c).class.is_nt() {
                return true;
            }
            stack.extend(tree.node(c).children.iter().copied());
        }
        false
    };
    let mut core: HashMap<usize, bool> = nts.iter().map(|&n| (n, false)).collect();
    for &nt in &nts {
        let in_sub = sub_roots.iter().any(|&r| in_subtree(nt, r));
        if in_sub && !has_descendant_nt(nt) {
            core.insert(nt, true);
        }
    }
    // Def. 3(ii): equivalent to a core token — iterate to fixpoint.
    loop {
        let mut changed = false;
        for &a in &nts {
            if core[&a] {
                continue;
            }
            if nts.iter().any(|&b| core[&b] && equivalent(tree, a, b)) {
                core.insert(a, true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- Directly related pairs (Def. 4).
    let mut directly: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in nts.iter().enumerate() {
        for &b in &nts[i + 1..] {
            if directly_related(tree, a, b) {
                directly.push((a, b));
            }
        }
    }

    // --- Related closure (Def. 6) via union-find: union direct pairs
    // and equivalent *core* pairs (Def. 5 reaches across equivalent core
    // tokens).
    let mut uf: HashMap<usize, usize> = nts.iter().map(|&n| (n, n)).collect();
    fn find(uf: &mut HashMap<usize, usize>, mut x: usize) -> usize {
        while uf[&x] != x {
            let next = uf[&uf[&x]];
            uf.insert(x, next);
            x = next;
        }
        x
    }
    let union = |uf: &mut HashMap<usize, usize>, a: usize, b: usize| {
        let ra = find(uf, a);
        let rb = find(uf, b);
        if ra != rb {
            uf.insert(ra, rb);
        }
    };
    for &(a, b) in &directly {
        union(&mut uf, a, b);
    }
    for (i, &a) in nts.iter().enumerate() {
        for &b in &nts[i + 1..] {
            if core[&a] && core[&b] && equivalent(tree, a, b) {
                union(&mut uf, a, b);
            }
        }
    }

    let mut sets: HashMap<usize, Vec<usize>> = HashMap::new();
    for &n in &nts {
        let r = find(&mut uf, n);
        sets.entry(r).or_default().push(n);
    }
    let mut related_sets: Vec<Vec<usize>> = sets.into_values().collect();
    for s in &mut related_sets {
        s.sort();
    }
    related_sets.sort();

    let has_core = core.values().any(|&c| c);
    Semantics {
        nts,
        core,
        directly_related: directly,
        related_sets,
        has_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::classify::classify;
    use crate::validate::validate;
    use nlparser::parse;
    use xmldb::datasets::movies::{movies, movies_and_books};
    use xmldb::Document;

    fn prepared(doc: &Document, q: &str) -> ClassifiedTree {
        let catalog = Catalog::build(doc);
        let v = validate(classify(&parse(q).unwrap()), &catalog);
        assert!(v.is_valid(), "{q}: {:?}", v.feedback);
        v.tree
    }

    fn nts_by_lemma(tree: &ClassifiedTree, lemma: &str) -> Vec<usize> {
        tree.refs()
            .filter(|&r| tree.node(r).class.is_nt() && tree.node(r).lemma == lemma)
            .collect()
    }

    #[test]
    fn query2_core_tokens_match_paper() {
        // Paper Sec. 3.2.2: "Two different core tokens can be found in
        // Query 2. One is director, represented by nodes 2 and 7. The
        // other is a different director, represented by node 11 [the
        // implicit one]."
        let doc = movies();
        let t = prepared(
            &doc,
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        let s = analyze(&t);
        let directors = nts_by_lemma(&t, "director");
        assert_eq!(directors.len(), 3); // two explicit + one implicit
        for d in &directors {
            assert!(
                s.core[d],
                "director node {d} should be core\n{}",
                t.outline()
            );
        }
        let movies_ = nts_by_lemma(&t, "movie");
        for m in &movies_ {
            assert!(!s.core[m], "movie must not be core");
        }
        // The explicit pair is equivalent; the implicit one is not
        // equivalent to them.
        let implicit: Vec<_> = directors
            .iter()
            .copied()
            .filter(|&d| t.node(d).implicit)
            .collect();
        let explicit: Vec<_> = directors
            .iter()
            .copied()
            .filter(|&d| !t.node(d).implicit)
            .collect();
        assert_eq!(implicit.len(), 1);
        assert_eq!(explicit.len(), 2);
        assert!(equivalent(&t, explicit[0], explicit[1]));
        assert!(!equivalent(&t, explicit[0], implicit[0]));
    }

    #[test]
    fn query3_related_sets_match_paper() {
        // Paper Sec. 3.2.1: "two sets of related nodes {2, 4, 6, 8} and
        // {9, 11}" — i.e. {director, movie, title, movie} and
        // {title, book}.
        let doc = movies_and_books();
        let t = prepared(
            &doc,
            "Return the directors of movies, where the title of each movie is \
             the same as the title of a book.",
        );
        let s = analyze(&t);
        assert_eq!(s.related_sets.len(), 2, "{}", t.outline());
        let lemma_sets: Vec<Vec<String>> = s
            .related_sets
            .iter()
            .map(|set| {
                let mut v: Vec<String> = set.iter().map(|&n| t.node(n).lemma.clone()).collect();
                v.sort();
                v
            })
            .collect();
        assert!(lemma_sets.contains(&vec![
            "director".to_owned(),
            "movie".to_owned(),
            "movie".to_owned(),
            "title".to_owned()
        ]));
        assert!(lemma_sets.contains(&vec!["book".to_owned(), "title".to_owned()]));
        // movie and book are the primitive cores
        let books = nts_by_lemma(&t, "book");
        assert!(s.core[&books[0]]);
        let movies_ = nts_by_lemma(&t, "movie");
        assert!(movies_.iter().all(|m| s.core[m]));
        // the two titles are equivalent but not related
        let titles = nts_by_lemma(&t, "title");
        assert_eq!(titles.len(), 2);
        assert!(equivalent(&t, titles[0], titles[1]));
    }

    #[test]
    fn no_core_without_operators() {
        let doc = movies();
        let t = prepared(&doc, "Return the director of each movie.");
        let s = analyze(&t);
        assert!(!s.has_core);
        assert_eq!(s.related_sets.len(), 1);
    }

    #[test]
    fn directly_related_ignores_markers() {
        let doc = movies();
        let t = prepared(&doc, "Return the director of each movie.");
        let d = nts_by_lemma(&t, "director")[0];
        let m = nts_by_lemma(&t, "movie")[0];
        assert!(directly_related(&t, d, m));
    }

    #[test]
    fn effective_parent_skips_single_child_ft() {
        let doc = movies();
        let t = prepared(
            &doc,
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        // movie's effective parent skips the FT (single child) and lands
        // on the OT (two children).
        let movies_ = nts_by_lemma(&t, "movie");
        let ep = effective_parent(&t, movies_[0]).unwrap();
        assert!(t.node(ep).class.ot().is_some(), "{}", t.outline());
    }

    #[test]
    fn attachment_of_superlative_ft() {
        let doc = xmldb::datasets::bib::bib();
        let t = prepared(&doc, "Return the lowest price for each book.");
        let ft = t.refs().find(|&r| t.node(r).class.ft().is_some()).unwrap();
        let target = attaches_to(&t, ft).unwrap();
        assert_eq!(t.node(target).lemma, "price");
    }

    #[test]
    fn attachment_of_count_phrase_ft() {
        let doc = movies();
        let t = prepared(
            &doc,
            "Return the total number of movies, where the director of each movie \
             is Ron Howard.",
        );
        let ft = t.refs().find(|&r| t.node(r).class.ft().is_some()).unwrap();
        let target = attaches_to(&t, ft).unwrap();
        assert_eq!(t.node(target).lemma, "movie");
    }

    #[test]
    fn modifier_difference_breaks_equivalence() {
        // "first book" vs "second book" (paper Sec. 3.2.1).
        let doc = xmldb::Document::parse_str(
            "<bib><book><title>A</title></book><book><title>B</title></book></bib>",
        )
        .unwrap();
        let catalog = Catalog::build(&doc);
        let v = validate(
            classify(&parse("Return the first book and the second book.").unwrap()),
            &catalog,
        );
        let t = v.tree;
        let books: Vec<usize> = t
            .refs()
            .filter(|&r| t.node(r).class.is_nt() && t.node(r).lemma == "book")
            .collect();
        assert_eq!(books.len(), 2);
        assert!(!equivalent(&t, books[0], books[1]));
    }
}
