//! Conversational sessions: follow-up questions resolved against the
//! previous answer.
//!
//! The paper's Sec. 4 feedback loop already treats natural language
//! querying as a dialogue — the user reformulates until the system
//! understands. This module closes the other half of that loop: once a
//! question *has* been answered, the next question may refer back to
//! the answer ("of those, which were published after 2000?", "what
//! about by Suciu?") instead of repeating itself. Classic NLIDBs
//! punt on exactly this; both surveys the repository tracks (Affolter
//! et al. 2019; the NLI4DB survey) name contextual follow-ups as the
//! axis where they fall short.
//!
//! Two follow-up forms are supported, detected lexically by
//! [`detect_follow_up`] before any parsing happens:
//!
//! * **Refinement** (anaphora): the question narrows the previous
//!   answer set through a demonstrative or pronoun — "of those", "of
//!   these", "them", "they". The anaphor and its wh-scaffolding are
//!   stripped, the remaining constraint fragment is re-parsed in a
//!   synthetic command sentence built around the previous question's
//!   anchor noun, and the resulting constraint subtrees are *grafted*
//!   onto the previous turn's classified parse tree. "Of those, which
//!   were published after 2000?" after "List all the books written by
//!   Stevens." yields the same tree as "List all the books written by
//!   Stevens published after 2000." would have.
//! * **Ellipsis**: "what about by Suciu?" keeps the shape of the
//!   previous question and swaps one constraint. The fragment is
//!   re-parsed the same way; its value token is then substituted for
//!   the previous turn's value token with the same database labels
//!   (resolved through the catalog, exactly like implicit name-token
//!   insertion in Def. 11). Constraints that match nothing fall back
//!   to being grafted as refinements.
//!
//! Resolution is deliberately conservative: it never guesses silently.
//! Every resolved follow-up carries a
//! [`FeedbackKind::AnaphoraResolved`] warning naming the phrase and
//! the question it was resolved against — the sessions counterpart of
//! the paper's pronoun warning (`validate.rs` warns that pronouns "may
//! be misunderstood"; here the system resolved one and says how). A
//! follow-up with no context to resolve against is a typed error
//! ([`QueryError::MissingContext`] / [`QueryError::ExpiredContext`]),
//! never a silent mis-answer.
//!
//! [`Session`] is the per-conversation state (pinned document identity
//! plus the last [`PriorTurn`]); [`SessionStore`] bounds many of them
//! with an LRU capacity and a TTL so a server can hold sessions for
//! millions of users without unbounded memory. Sessions pin the
//! document by *name and generation*, never by reference — a hot
//! reload or eviction can therefore never be kept alive by an idle
//! conversation, and a stale session is detected by a generation
//! mismatch and retired with a typed error.

use crate::catalog::Catalog;
use crate::classify;
use crate::error::QueryError;
use crate::feedback::{Feedback, FeedbackKind};
use crate::token::{ClassifiedTree, TokenType};
use crate::validate;
use crate::{Answer, Nalix, Outcome};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use xquery::EvalBudget;

/// Default [`SessionStore`] capacity (live sessions, LRU-evicted).
pub const DEFAULT_SESSION_CAPACITY: usize = 1024;

/// Default [`SessionStore`] TTL (idle time before a session expires).
pub const DEFAULT_SESSION_TTL: Duration = Duration::from_secs(30 * 60);

/// One completed turn of a conversation: what was asked, the parse
/// tree it resolved to, and what came back.
#[derive(Debug, Clone)]
pub struct PriorTurn {
    /// The question as the user asked it (follow-ups keep their
    /// anaphoric surface form; the tree holds the resolution).
    pub question: String,
    /// The classified, validated parse tree of the *resolved* question
    /// — the antecedent the next follow-up grafts onto or substitutes
    /// into.
    pub tree: ClassifiedTree,
    /// The flat answer values of this turn (the "previous answer set"
    /// an anaphor refers to).
    pub values: Vec<String>,
}

/// Per-conversation state: which document snapshot the dialogue is
/// pinned to, and the last completed turn.
///
/// The document is pinned by **name and generation**, not by a shared
/// reference: a `Session` can never keep a retired snapshot alive, and
/// a hot reload (which bumps the store's generation counter) is
/// detected as a mismatch and surfaces as
/// [`QueryError::ExpiredContext`] rather than a silently wrong answer
/// computed against data that no longer exists.
#[derive(Debug, Clone)]
pub struct Session {
    /// Name of the document the conversation is about.
    pub doc: String,
    /// Store generation of that document at the last completed turn.
    pub generation: u64,
    /// Number of completed turns.
    pub turns: u64,
    /// The last completed turn, if any.
    pub prior: Option<PriorTurn>,
}

impl Session {
    /// A fresh session pinned to `doc` at `generation`, with no turns.
    ///
    /// ```
    /// let s = nalix::Session::new("bib", 1);
    /// assert_eq!(s.turns, 0);
    /// assert!(s.prior.is_none());
    /// ```
    pub fn new(doc: impl Into<String>, generation: u64) -> Self {
        Session {
            doc: doc.into(),
            generation,
            turns: 0,
            prior: None,
        }
    }

    /// Record a completed turn: bumps the turn counter and replaces the
    /// prior-turn context the next follow-up resolves against.
    pub fn record_turn(&mut self, turn: PriorTurn) {
        self.turns += 1;
        self.prior = Some(turn);
    }
}

/// How a question refers back to the previous turn (see
/// [`detect_follow_up`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FollowUp {
    /// The question narrows the previous answer set through an anaphor
    /// ("of those, which were published after 2000?").
    Refinement {
        /// The anaphoric phrase as typed ("of those", "them").
        phrase: String,
        /// The constraint fragment with anaphor and wh-scaffolding
        /// stripped ("published after 2000").
        fragment: String,
    },
    /// The question keeps the previous question's shape and swaps one
    /// constraint ("what about by Suciu?").
    Ellipsis {
        /// The elliptical lead-in as typed ("what about").
        phrase: String,
        /// The replacement constraint ("by Suciu").
        fragment: String,
    },
}

impl FollowUp {
    /// The anaphoric or elliptical phrase as the user typed it.
    pub fn phrase(&self) -> &str {
        match self {
            FollowUp::Refinement { phrase, .. } | FollowUp::Ellipsis { phrase, .. } => phrase,
        }
    }

    /// The constraint fragment to resolve against the prior turn.
    pub fn fragment(&self) -> &str {
        match self {
            FollowUp::Refinement { fragment, .. } | FollowUp::Ellipsis { fragment, .. } => fragment,
        }
    }
}

/// Standalone anaphors that make a question a refinement follow-up.
/// Possessives ("their") are deliberately absent: "Return all books
/// and their titles" is self-contained, and already draws the paper's
/// pronoun warning from validation instead.
const ANAPHORS: [&str; 4] = ["those", "these", "them", "they"];

/// Scaffolding words stripped from the front of a refinement fragment
/// (wh-words, copulas, and glue left over once the anaphor is
/// removed).
const SCAFFOLD: [&str; 14] = [
    "which", "who", "what", "ones", "one", "were", "are", "was", "is", "do", "does", "did", "and",
    "of",
];

/// Detect whether `question` is a follow-up that needs a previous turn
/// to be answerable, purely lexically (no parsing — the whole point is
/// that follow-ups like "of those, …" do *not* parse as standalone
/// questions).
///
/// Returns `None` for self-contained questions. The server uses this
/// on session-less requests to answer follow-ups with a typed
/// [`QueryError::MissingContext`] instead of an opaque parse error.
///
/// ```
/// use nalix::{detect_follow_up, FollowUp};
///
/// let f = detect_follow_up("Of those, which were published after 2000?").unwrap();
/// assert_eq!(f.phrase(), "of those");
/// assert_eq!(f.fragment(), "published after 2000");
/// assert!(matches!(f, FollowUp::Refinement { .. }));
///
/// let f = detect_follow_up("What about by Suciu?").unwrap();
/// assert_eq!(f.fragment(), "by Suciu");
/// assert!(matches!(f, FollowUp::Ellipsis { .. }));
///
/// assert!(detect_follow_up("Find all the books written by Stevens.").is_none());
/// // Possessive pronouns are self-contained (they draw a warning, not
/// // a context lookup).
/// assert!(detect_follow_up("Return all books and their titles.").is_none());
/// ```
pub fn detect_follow_up(question: &str) -> Option<FollowUp> {
    let words: Vec<&str> = question
        .split_whitespace()
        .map(|w| w.trim_matches(|c: char| ",.?!;:".contains(c)))
        .filter(|w| !w.is_empty())
        .collect();
    let lower: Vec<String> = words.iter().map(|w| w.to_lowercase()).collect();

    // Ellipsis: "what about …" / "how about …" (optionally after
    // "and").
    let ell = match lower.as_slice() {
        [a, b, ..] if (a == "what" || a == "how") && b == "about" => Some(2),
        [a, b, c, ..] if a == "and" && (b == "what" || b == "how") && c == "about" => Some(3),
        _ => None,
    };
    if let Some(k) = ell {
        if words.len() > k {
            return Some(FollowUp::Ellipsis {
                phrase: lower[..k].join(" "),
                fragment: words[k..].join(" "),
            });
        }
        return None;
    }

    // Refinement: a standalone anaphor anywhere in the question.
    let at = lower.iter().position(|w| ANAPHORS.contains(&w.as_str()))?;
    let preceded_by_of = at > 0 && lower[at - 1] == "of";
    let phrase = if preceded_by_of {
        format!("of {}", lower[at])
    } else {
        lower[at].clone()
    };
    let mut rest: Vec<&str> = Vec::new();
    for (i, w) in words.iter().enumerate() {
        if i == at || (preceded_by_of && i == at - 1) {
            continue;
        }
        rest.push(w);
    }
    let mut start = 0;
    while start < rest.len() {
        let w = rest[start].to_lowercase();
        if SCAFFOLD.contains(&w.as_str()) || nlparser::lexicon::is_command_verb(&w) {
            start += 1;
        } else {
            break;
        }
    }
    let fragment = rest[start..].join(" ");
    if fragment.is_empty() {
        return None;
    }
    Some(FollowUp::Refinement { phrase, fragment })
}

/// What a resolved follow-up was resolved to, attached to the
/// [`TurnAnswer`] so callers (the server, transcripts, tests) can show
/// the interpretation.
#[derive(Debug, Clone)]
pub struct ResolutionInfo {
    /// The anaphoric or elliptical phrase as typed.
    pub phrase: String,
    /// The previous question the phrase was resolved against.
    pub referent: String,
}

/// A successful conversational turn: the answer, the context the next
/// turn will resolve against, and — for follow-ups — what was
/// resolved.
#[derive(Debug, Clone)]
pub struct TurnAnswer {
    /// The answer payload (same shape the stateless path returns; for
    /// resolved follow-ups its warnings lead with
    /// [`FeedbackKind::AnaphoraResolved`]).
    pub answer: Answer,
    /// The completed turn — commit it to the [`Session`] so the next
    /// follow-up has context.
    pub turn: PriorTurn,
    /// Present when the question was a follow-up and resolution
    /// happened.
    pub resolution: Option<ResolutionInfo>,
}

impl Nalix {
    /// Answer one conversational turn.
    ///
    /// Self-contained questions behave exactly like
    /// [`Nalix::answer_full`] (including translation caching); the
    /// returned [`TurnAnswer::turn`] additionally carries the parse
    /// tree and values as context for the next turn. Follow-up
    /// questions (see [`detect_follow_up`]) are resolved against
    /// `prior`: refinements graft the new constraint onto the prior
    /// parse tree, ellipses substitute the matching value token. A
    /// follow-up with `prior == None` fails with
    /// [`QueryError::MissingContext`].
    ///
    /// Resolved follow-ups bypass the translation cache (the same
    /// surface text means different things in different conversations)
    /// and count one `anaphora_resolved` on the metrics registry.
    ///
    /// ```
    /// use nalix::{EvalBudget, Nalix};
    /// use xmldb::datasets::bib::bib;
    ///
    /// let nalix = Nalix::new(bib());
    /// let budget = EvalBudget::default();
    ///
    /// // Turn 1: a self-contained question.
    /// let t1 = nalix
    ///     .answer_turn("List all the books written by Stevens.", None, &budget)
    ///     .unwrap();
    /// assert!(t1.answer.values.iter().any(|v| v.contains("TCP/IP Illustrated")));
    ///
    /// // Turn 2: a follow-up refining the previous answer set.
    /// let t2 = nalix
    ///     .answer_turn(
    ///         "Of those, which were published after 1993?",
    ///         Some(&t1.turn),
    ///         &budget,
    ///     )
    ///     .unwrap();
    /// assert!(t2.answer.values.iter().any(|v| v.contains("TCP/IP Illustrated")));
    /// assert!(!t2.answer.values.iter().any(|v| v.contains("Unix")));
    /// assert!(t2.resolution.is_some());
    /// ```
    pub fn answer_turn(
        &self,
        sentence: &str,
        prior: Option<&PriorTurn>,
        budget: &EvalBudget,
    ) -> Result<TurnAnswer, QueryError> {
        self.answer_turn_on(self.backend(), sentence, prior, budget)
    }

    /// [`Nalix::answer_turn`] on an explicitly named backend (the
    /// server's per-request `backend` knob). Self-contained turns run
    /// the full backend path; resolved follow-ups compile and evaluate
    /// on the same backend after grafting.
    pub fn answer_turn_on(
        &self,
        backend: crate::BackendKind,
        sentence: &str,
        prior: Option<&PriorTurn>,
        budget: &EvalBudget,
    ) -> Result<TurnAnswer, QueryError> {
        let Some(follow) = detect_follow_up(sentence) else {
            let (answer, tree) = self.answer_full_tree_on(backend, sentence, budget)?;
            return Ok(TurnAnswer {
                turn: PriorTurn {
                    question: sentence.trim().to_string(),
                    tree,
                    values: answer.values.clone(),
                },
                answer,
                resolution: None,
            });
        };
        let Some(prior) = prior else {
            return Err(QueryError::missing_context(follow.phrase()));
        };
        let resolved = resolve(&follow, prior, &self.catalog)?;
        let (outcome, class) = self.run_from_classified(resolved);
        self.metrics.record_query(class);
        match outcome {
            Outcome::Translated(t) => {
                let (values, text, ordered) = self.run_translated(&t, backend, budget)?;
                self.metrics.add(obs::Counter::AnaphoraResolved, 1);
                let mut warnings = vec![Feedback::warning(FeedbackKind::AnaphoraResolved {
                    phrase: follow.phrase().to_string(),
                    referent: format!("\"{}\"", prior.question),
                })];
                warnings.extend(t.warnings);
                Ok(TurnAnswer {
                    answer: Answer {
                        values: values.clone(),
                        xquery: text,
                        backend,
                        ordered,
                        warnings,
                        cached: false,
                    },
                    turn: PriorTurn {
                        question: sentence.trim().to_string(),
                        tree: t.tree,
                        values,
                    },
                    resolution: Some(ResolutionInfo {
                        phrase: follow.phrase().to_string(),
                        referent: prior.question.clone(),
                    }),
                })
            }
            Outcome::Rejected(r) => Err(QueryError::from(r)),
        }
    }
}

/// Resolve a detected follow-up against the prior turn, producing the
/// classified tree that re-enters the pipeline at validation.
fn resolve(
    follow: &FollowUp,
    prior: &PriorTurn,
    catalog: &Catalog,
) -> Result<ClassifiedTree, QueryError> {
    let Some(prior_anchor) = anchor_of(&prior.tree) else {
        // The stored turn has no anchor noun to resolve against (it
        // answered, but not in a shape a follow-up can narrow).
        return Err(QueryError::missing_context(follow.phrase()));
    };
    let anchor_words = prior.tree.node(prior_anchor).words.clone();
    // Re-parse the fragment inside a synthetic command sentence built
    // around the prior anchor. The command form is the one shape the
    // grammar always accepts for a bare constraint.
    let synthetic_text = format!("Find all the {} {}.", anchor_words, follow.fragment());
    let dep = nlparser::parse(&synthetic_text).map_err(|e| QueryError::Parse {
        message: format!(
            "the follow-up \"{}\" could not be understood: {}",
            follow.fragment(),
            e.message
        ),
        position: e.position,
        suggestion: "Please rephrase the follow-up as a short constraint (for example \
                     \"of those, which were published after 2000?\") or repeat the \
                     full question."
            .into(),
    })?;
    let validation = validate::validate(classify::classify(&dep), catalog);
    if !validation.is_valid() {
        let errors: Vec<Feedback> = validation.errors().into_iter().cloned().collect();
        let warnings: Vec<Feedback> = validation.warnings().into_iter().cloned().collect();
        return Err(QueryError::from(crate::Rejected { errors, warnings }));
    }
    let synthetic = validation.tree;
    let Some(syn_anchor) = anchor_of(&synthetic) else {
        return Err(QueryError::missing_context(follow.phrase()));
    };
    match follow {
        FollowUp::Refinement { .. } => Ok(graft(&prior.tree, prior_anchor, &synthetic, syn_anchor)),
        FollowUp::Ellipsis { .. } => Ok(substitute(&prior.tree, &synthetic, catalog)
            .unwrap_or_else(|| graft(&prior.tree, prior_anchor, &synthetic, syn_anchor))),
    }
}

/// The anchor noun of a tree: the first name-token child of the root
/// command token ("books" in "Find all the books …").
fn anchor_of(tree: &ClassifiedTree) -> Option<usize> {
    tree.node(tree.root)
        .children
        .iter()
        .copied()
        .find(|&c| tree.node(c).class.is_nt())
}

/// Does the subtree at `i` carry an actual constraint — a value, name,
/// operator, function, sort, or negation token — as opposed to bare
/// markers and quantifiers ("all", "the")?
fn carries_constraint(tree: &ClassifiedTree, i: usize) -> bool {
    let n = tree.node(i);
    let content = matches!(
        n.class,
        crate::NodeClass::Token(
            TokenType::Vt
                | TokenType::Nt
                | TokenType::Ot(_)
                | TokenType::Obt(_)
                | TokenType::Ft(_)
                | TokenType::Neg
        )
    );
    content || n.children.iter().any(|&c| carries_constraint(tree, c))
}

/// Graft every constraint subtree under the synthetic anchor onto the
/// prior tree's anchor, remapping node indices and shifting sentence
/// orders past the prior tree's (so the combined tree still reads in
/// one consistent order).
fn graft(
    prior: &ClassifiedTree,
    prior_anchor: usize,
    synthetic: &ClassifiedTree,
    syn_anchor: usize,
) -> ClassifiedTree {
    let mut out = prior.clone();
    let base_order = out.nodes.iter().map(|n| n.order).max().unwrap_or(0) + 1;
    for &child in &synthetic.node(syn_anchor).children {
        if carries_constraint(synthetic, child) {
            copy_subtree(&mut out, prior_anchor, synthetic, child, base_order);
        }
    }
    out
}

/// Deep-copy the subtree rooted at `src[i]` into `out` under `parent`.
fn copy_subtree(
    out: &mut ClassifiedTree,
    parent: usize,
    src: &ClassifiedTree,
    i: usize,
    base_order: usize,
) {
    let mut node = src.node(i).clone();
    node.parent = Some(parent);
    node.children = Vec::new();
    node.order += base_order;
    let idx = out.nodes.len();
    out.nodes.push(node);
    if let Some(p) = out.nodes.get_mut(parent) {
        p.children.push(idx);
    }
    for &c in &src.node(i).children {
        copy_subtree(out, idx, src, c, base_order);
    }
}

/// The database labels a value token resolves to: its (implicit or
/// explicit) name-token parent's expansion when present, else a fresh
/// catalog lookup of the value itself.
fn vt_labels(tree: &ClassifiedTree, vt: usize, catalog: &Catalog) -> Vec<String> {
    if let Some(p) = tree.node(vt).parent {
        let parent = tree.node(p);
        if parent.class.is_nt() && !parent.expansion.is_empty() {
            return parent.expansion.clone();
        }
    }
    let word = &tree.node(vt).words;
    let labels = catalog.labels_for_value(word);
    if !labels.is_empty() {
        return labels;
    }
    match word.parse::<f64>() {
        Ok(v) => catalog.numeric_labels_for(v),
        Err(_) => Vec::new(),
    }
}

/// Ellipsis substitution: for every value token of the (validated)
/// synthetic tree, find a value token in the prior tree with an
/// overlapping label set and swap the value in place (updating the
/// implicit name token above it). Returns `None` — caller falls back
/// to grafting — when any synthetic value has no counterpart, or the
/// fragment carried no values at all.
fn substitute(
    prior: &ClassifiedTree,
    synthetic: &ClassifiedTree,
    catalog: &Catalog,
) -> Option<ClassifiedTree> {
    let syn_vts: Vec<usize> = (0..synthetic.nodes.len())
        .filter(|&i| synthetic.node(i).class.is_vt())
        .collect();
    if syn_vts.is_empty() {
        return None;
    }
    let mut out = prior.clone();
    for svt in syn_vts {
        let labels = vt_labels(synthetic, svt, catalog);
        if labels.is_empty() {
            return None;
        }
        let target = (0..out.nodes.len()).find(|&i| {
            out.node(i).class.is_vt()
                && vt_labels(&out, i, catalog)
                    .iter()
                    .any(|l| labels.contains(l))
        })?;
        let (words, lemma) = {
            let s = synthetic.node(svt);
            (s.words.clone(), s.lemma.clone())
        };
        if let Some(t) = out.nodes.get_mut(target) {
            t.words = words;
            t.lemma = lemma;
        }
        // Keep the implicit name token above the value in step with the
        // new value's labels.
        let tparent = out.node(target).parent;
        let sparent = synthetic.node(svt).parent;
        if let (Some(tp), Some(sp)) = (tparent, sparent) {
            if out.node(tp).implicit && synthetic.node(sp).implicit {
                let (w, l, e) = {
                    let s = synthetic.node(sp);
                    (s.words.clone(), s.lemma.clone(), s.expansion.clone())
                };
                if let Some(t) = out.nodes.get_mut(tp) {
                    t.words = w;
                    t.lemma = l;
                    t.expansion = e;
                }
            }
        }
    }
    Some(out)
}

/// Result of looking a session up in a [`SessionStore`].
#[derive(Debug, Clone)]
pub enum SessionCheckout {
    /// No session under this id (never created, or LRU-evicted).
    Absent,
    /// A session existed but sat idle past the TTL; it has been
    /// removed, and the lookup counted one `session_expired`.
    Expired,
    /// A live session (recency bumped; counted one `session_hit`).
    Live(Session),
}

/// A bounded, thread-safe store of [`Session`]s keyed by
/// caller-supplied opaque ids.
///
/// Two bounds keep memory finite under millions of users: an **LRU
/// capacity** (committing a new session past capacity evicts the least
/// recently used one) and a **TTL** (a session idle past it expires on
/// its next checkout). Both retirements count `session_expired` on the
/// metrics registry, so the bounds are observable in `/metrics`.
///
/// ```
/// use nalix::{Session, SessionCheckout, SessionStore};
/// use std::time::Duration;
///
/// let store = SessionStore::new(2, Duration::from_secs(60));
/// assert!(matches!(store.checkout("alice"), SessionCheckout::Absent));
///
/// store.commit("alice", Session::new("bib", 1));
/// store.commit("bob", Session::new("bib", 1));
/// // Touching "alice" makes "bob" the least recently used…
/// assert!(matches!(store.checkout("alice"), SessionCheckout::Live(_)));
/// // …so a third session evicts "bob" (capacity 2).
/// store.commit("carol", Session::new("bib", 1));
/// assert_eq!(store.len(), 2);
/// assert!(matches!(store.checkout("bob"), SessionCheckout::Absent));
/// assert!(matches!(store.checkout("alice"), SessionCheckout::Live(_)));
/// ```
pub struct SessionStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
    ttl: Duration,
    metrics: std::sync::Arc<obs::MetricsRegistry>,
}

struct StoreInner {
    map: HashMap<String, Entry>,
    seq: u64,
}

struct Entry {
    session: Session,
    last_used: Instant,
    seq: u64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SessionStore {
    /// A store bounded to `capacity` live sessions with idle timeout
    /// `ttl`, recording into an isolated metrics registry.
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        SessionStore::with_metrics(
            capacity,
            ttl,
            std::sync::Arc::new(obs::MetricsRegistry::new()),
        )
    }

    /// [`SessionStore::new`] recording into a caller-supplied registry
    /// (the server passes its global one, so `session_*` counters land
    /// in `/metrics`).
    pub fn with_metrics(
        capacity: usize,
        ttl: Duration,
        metrics: std::sync::Arc<obs::MetricsRegistry>,
    ) -> Self {
        SessionStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                seq: 0,
            }),
            capacity,
            ttl,
            metrics,
        }
    }

    /// Look up the session under `id`, bumping its recency.
    ///
    /// A live session is cloned out (counts `session_hit`); an idle
    /// one past the TTL is removed (counts `session_expired`). The
    /// caller distinguishes [`SessionCheckout::Absent`] (answer a
    /// follow-up with [`QueryError::MissingContext`]) from
    /// [`SessionCheckout::Expired`] ([`QueryError::ExpiredContext`]).
    pub fn checkout(&self, id: &str) -> SessionCheckout {
        let now = Instant::now();
        let mut g = lock(&self.inner);
        let expired = match g.map.get(id) {
            None => return SessionCheckout::Absent,
            Some(e) => now.saturating_duration_since(e.last_used) > self.ttl,
        };
        if expired {
            g.map.remove(id);
            self.metrics.add(obs::Counter::SessionExpired, 1);
            return SessionCheckout::Expired;
        }
        g.seq += 1;
        let seq = g.seq;
        if let Some(e) = g.map.get_mut(id) {
            e.last_used = now;
            e.seq = seq;
            self.metrics.add(obs::Counter::SessionHits, 1);
            return SessionCheckout::Live(e.session.clone());
        }
        SessionCheckout::Absent
    }

    /// Insert or update the session under `id` (bumps recency; a new
    /// id counts `session_create` and may LRU-evict the least recently
    /// used session, which counts `session_expired`).
    pub fn commit(&self, id: &str, session: Session) {
        let mut g = lock(&self.inner);
        g.seq += 1;
        let seq = g.seq;
        let fresh = g
            .map
            .insert(
                id.to_string(),
                Entry {
                    session,
                    last_used: Instant::now(),
                    seq,
                },
            )
            .is_none();
        if fresh {
            self.metrics.add(obs::Counter::SessionCreates, 1);
        }
        while g.map.len() > self.capacity {
            let Some(oldest) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            g.map.remove(&oldest);
            self.metrics.add(obs::Counter::SessionExpired, 1);
        }
    }

    /// Drop the session under `id` (counts `session_expired` when one
    /// was present). The server calls this when the pinned document was
    /// reloaded or evicted — the context is gone either way.
    pub fn invalidate(&self, id: &str) -> bool {
        let mut g = lock(&self.inner);
        let removed = g.map.remove(id).is_some();
        if removed {
            self.metrics.add(obs::Counter::SessionExpired, 1);
        }
        removed
    }

    /// Number of resident sessions (expired-but-unvisited ones count
    /// until their lazy removal).
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// True when no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The idle TTL bound.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nalix;
    use xmldb::datasets::bib::bib;

    fn nalix() -> Nalix {
        Nalix::new(bib())
    }

    #[test]
    fn detect_refinement_forms() {
        for q in [
            "Of those, which were published after 2000?",
            "of these, which were published after 2000?",
            "Which of those were published after 2000?",
            "Which of them were published after 2000?",
            "List them published after 2000.",
        ] {
            let f = detect_follow_up(q).unwrap_or_else(|| panic!("{q} not detected"));
            assert!(matches!(f, FollowUp::Refinement { .. }), "{q}");
            assert_eq!(f.fragment(), "published after 2000", "{q}");
        }
    }

    #[test]
    fn detect_ellipsis_forms() {
        let f = detect_follow_up("What about by Suciu?").unwrap();
        assert!(matches!(f, FollowUp::Ellipsis { .. }));
        assert_eq!(f.fragment(), "by Suciu");
        let f = detect_follow_up("And what about by Suciu?").unwrap();
        assert_eq!(f.fragment(), "by Suciu");
    }

    #[test]
    fn self_contained_questions_are_not_follow_ups() {
        for q in [
            "Find all the books written by Stevens.",
            "Return all books and their titles.",
            "Return every title.",
            "What about?",
            "",
        ] {
            assert!(detect_follow_up(q).is_none(), "{q}");
        }
    }

    #[test]
    fn three_turn_dialogue_matches_stateless_oracle() {
        let n = nalix();
        let budget = EvalBudget::default();
        let t1 = n
            .answer_turn("List all the books written by Stevens.", None, &budget)
            .unwrap();
        assert_eq!(
            t1.answer.values,
            n.answer("List all the books written by Stevens.").unwrap()
        );

        let t2 = n
            .answer_turn(
                "Of those, which were published after 1993?",
                Some(&t1.turn),
                &budget,
            )
            .unwrap();
        let oracle2 = n
            .answer("List all the books written by Stevens published after 1993.")
            .unwrap();
        assert_eq!(t2.answer.values, oracle2);
        assert!(t2.resolution.is_some());

        let t3 = n
            .answer_turn("What about by Suciu?", Some(&t2.turn), &budget)
            .unwrap();
        let oracle3 = n
            .answer("List all the books written by Suciu published after 1993.")
            .unwrap();
        assert_eq!(t3.answer.values, oracle3);
        assert!(t3
            .answer
            .values
            .iter()
            .any(|v| v.contains("Data on the Web")));
        assert!(!t3.answer.values.iter().any(|v| v.contains("Stevens")));
    }

    #[test]
    fn follow_up_without_context_is_missing_context() {
        let n = nalix();
        let err = n
            .answer_turn(
                "Of those, which were published after 2000?",
                None,
                &EvalBudget::default(),
            )
            .unwrap_err();
        assert_eq!(err.code(), "session.missing_context");
        assert!(!err.suggestion().is_empty());
    }

    #[test]
    fn resolved_turn_warns_with_referent() {
        let n = nalix();
        let budget = EvalBudget::default();
        let t1 = n
            .answer_turn("List all the books written by Stevens.", None, &budget)
            .unwrap();
        let t2 = n
            .answer_turn(
                "Of those, which were published after 1993?",
                Some(&t1.turn),
                &budget,
            )
            .unwrap();
        let msg = t2.answer.warnings[0].message();
        assert!(msg.contains("of those"), "{msg}");
        assert!(
            msg.contains("List all the books written by Stevens."),
            "{msg}"
        );
    }

    #[test]
    fn garbage_follow_up_is_a_typed_error() {
        let n = nalix();
        let budget = EvalBudget::default();
        let t1 = n
            .answer_turn("List all the books written by Stevens.", None, &budget)
            .unwrap();
        let err = n
            .answer_turn("Of those, which frobnicate zot?", Some(&t1.turn), &budget)
            .unwrap_err();
        assert!(!err.suggestion().is_empty());
    }

    #[test]
    fn anaphora_resolved_counts_on_metrics() {
        let n = nalix();
        let budget = EvalBudget::default();
        let t1 = n
            .answer_turn("List all the books written by Stevens.", None, &budget)
            .unwrap();
        let _ = n
            .answer_turn(
                "Of those, which were published after 1993?",
                Some(&t1.turn),
                &budget,
            )
            .unwrap();
        assert_eq!(n.metrics().counter(obs::Counter::AnaphoraResolved), 1);
    }

    #[test]
    fn store_ttl_expires_idle_sessions() {
        let store = SessionStore::new(8, Duration::ZERO);
        store.commit("s", Session::new("bib", 1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(store.checkout("s"), SessionCheckout::Expired));
        // Expiry is terminal: the next checkout is a plain miss.
        assert!(matches!(store.checkout("s"), SessionCheckout::Absent));
        assert_eq!(
            store
                .metrics
                .snapshot()
                .counter(obs::Counter::SessionExpired),
            1
        );
    }

    #[test]
    fn store_lru_evicts_least_recently_used() {
        let store = SessionStore::new(2, Duration::from_secs(60));
        store.commit("a", Session::new("bib", 1));
        store.commit("b", Session::new("bib", 1));
        // Touch "a" so "b" is the LRU victim.
        assert!(matches!(store.checkout("a"), SessionCheckout::Live(_)));
        store.commit("c", Session::new("bib", 1));
        assert_eq!(store.len(), 2);
        assert!(matches!(store.checkout("a"), SessionCheckout::Live(_)));
        assert!(matches!(store.checkout("b"), SessionCheckout::Absent));
        assert!(matches!(store.checkout("c"), SessionCheckout::Live(_)));
    }

    #[test]
    fn store_counts_creates_and_hits() {
        let store = SessionStore::new(8, Duration::from_secs(60));
        store.commit("s", Session::new("bib", 1));
        let mut s = match store.checkout("s") {
            SessionCheckout::Live(s) => s,
            other => panic!("{other:?}"),
        };
        s.record_turn(PriorTurn {
            question: "q".into(),
            tree: ClassifiedTree {
                nodes: vec![],
                root: 0,
            },
            values: vec![],
        });
        store.commit("s", s);
        let snap = store.metrics.snapshot();
        assert_eq!(snap.counter(obs::Counter::SessionCreates), 1);
        assert_eq!(snap.counter(obs::Counter::SessionHits), 1);
        match store.checkout("s") {
            SessionCheckout::Live(s) => assert_eq!(s.turns, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalidate_retires_and_counts() {
        let store = SessionStore::new(8, Duration::from_secs(60));
        store.commit("s", Session::new("bib", 1));
        assert!(store.invalidate("s"));
        assert!(!store.invalidate("s"));
        assert!(matches!(store.checkout("s"), SessionCheckout::Absent));
        assert_eq!(
            store
                .metrics
                .snapshot()
                .counter(obs::Counter::SessionExpired),
            1
        );
    }
}
