//! Translation introspection: renders the intermediate artifacts the
//! paper presents as Tables 3–5 — the variable-binding table and the
//! direct token-pattern mappings — for any translated query.
//!
//! Used by the examples' `--explain` output and by golden tests that
//! compare against the published tables.

use crate::binding::{bind, Binding};
use crate::token::ClassifiedTree;
use std::fmt::Write;

/// One row of the variable-binding table (paper Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableRow {
    /// `$v1`, `$v2`, … — `*` appended for core-token variables, as in
    /// the paper.
    pub variable: String,
    /// The element/attribute content the variable ranges over.
    pub content: String,
    /// The parse-tree nodes bound to it (tree indices).
    pub nodes: Vec<usize>,
    /// Variables related to this one (same `mqf` group).
    pub related_to: Vec<String>,
}

/// The rendered explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Table 3: variable bindings.
    pub variables: Vec<VariableRow>,
    /// Related variable sets, each becoming one `mqf()` clause.
    pub groups: Vec<Vec<String>>,
}

/// Build the explanation for a validated parse tree.
pub fn explain(tree: &ClassifiedTree) -> Explanation {
    let binding: Binding = bind(tree);
    let name = |v: usize| -> String {
        let star = if binding.vars[v].core { "*" } else { "" };
        format!("$v{}{}", v + 1, star)
    };
    let mut variables = Vec::new();
    for (i, var) in binding.vars.iter().enumerate() {
        let related: Vec<String> = binding
            .groups
            .iter()
            .filter(|g| g.contains(&i))
            .flat_map(|g| g.iter().copied())
            .filter(|&j| j != i)
            .map(name)
            .collect();
        variables.push(VariableRow {
            variable: name(i),
            content: var.names.join("|"),
            nodes: var.nodes.clone(),
            related_to: related,
        });
    }
    let groups = binding
        .groups
        .iter()
        .map(|g| g.iter().map(|&v| name(v)).collect())
        .collect();
    Explanation { variables, groups }
}

impl Explanation {
    /// Render in the paper's Table 3 style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<24} {:<14} Related To",
            "Variable", "Associated Content", "Nodes"
        );
        for row in &self.variables {
            let nodes = row
                .nodes
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let related = if row.related_to.is_empty() {
                "null".to_owned()
            } else {
                row.related_to.join(",")
            };
            let _ = writeln!(
                out,
                "{:<8} {:<24} {:<14} {}",
                row.variable, row.content, nodes, related
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::classify::classify;
    use crate::validate::validate;
    use nlparser::parse;
    use xmldb::datasets::movies::movies;

    fn explain_query(q: &str) -> Explanation {
        let doc = movies();
        let catalog = Catalog::build(&doc);
        let v = validate(classify(&parse(q).unwrap()), &catalog);
        assert!(v.is_valid(), "{:?}", v.feedback);
        explain(&v.tree)
    }

    #[test]
    fn table3_shape_for_query2() {
        // Paper Table 3: $v1* director, $v2 movie, $v3 movie, $v4*
        // director; $v1↔$v2, $v3↔$v4.
        let e = explain_query(
            "Return every director, where the number of movies directed by the \
             director is the same as the number of movies directed by Ron Howard.",
        );
        assert_eq!(e.variables.len(), 4);
        let stars = e
            .variables
            .iter()
            .filter(|r| r.variable.ends_with('*'))
            .count();
        assert_eq!(stars, 2, "{e:?}"); // the two director variables
        let contents: Vec<&str> = e.variables.iter().map(|r| r.content.as_str()).collect();
        assert_eq!(
            contents.iter().filter(|c| c.contains("director")).count(),
            2
        );
        assert_eq!(contents.iter().filter(|c| c.contains("movie")).count(), 2);
        // two groups of two
        assert_eq!(e.groups.len(), 2);
        assert!(e.groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn render_is_tabular() {
        let e = explain_query("Return the director of each movie.");
        let text = e.render();
        assert!(text.starts_with("Variable"));
        assert!(text.contains("$v1"));
        assert!(text.contains("director"));
    }

    #[test]
    fn no_core_query_has_single_group_and_no_stars() {
        let e = explain_query("Return the director of each movie.");
        assert_eq!(e.groups.len(), 1);
        assert!(e.variables.iter().all(|r| !r.variable.ends_with('*')));
    }
}
