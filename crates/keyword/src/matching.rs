//! Keyword → node matching.

use xmldb::{Document, NodeId, NodeKind};

/// One search term: a word, or a quoted phrase kept intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// Lower-cased text.
    pub text: String,
    /// Was the term quoted (phrase match only against content)?
    pub quoted: bool,
}

/// Split a query string into terms. Quoted spans become single terms.
pub fn parse_query(query: &str) -> Vec<Term> {
    let mut terms = Vec::new();
    let mut chars = query.chars().peekable();
    let mut cur = String::new();
    let flush = |cur: &mut String, terms: &mut Vec<Term>| {
        if !cur.is_empty() {
            terms.push(Term {
                text: cur.to_lowercase(),
                quoted: false,
            });
            cur.clear();
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                flush(&mut cur, &mut terms);
                let mut phrase = String::new();
                for q in chars.by_ref() {
                    if q == '"' {
                        break;
                    }
                    phrase.push(q);
                }
                if !phrase.is_empty() {
                    terms.push(Term {
                        text: phrase.to_lowercase(),
                        quoted: true,
                    });
                }
            }
            c if c.is_whitespace() || c == ',' => flush(&mut cur, &mut terms),
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut terms);
    terms
}

/// Singular candidates for label matching ("movies" → {"movie",
/// "movy"}), mirroring what a keyword interface's stemmer would do.
/// Both the plain `-s` strip and the `-ies → -y` rewrite are offered,
/// since either may be the real singular.
fn singular_candidates(w: &str) -> Vec<String> {
    let mut out = Vec::new();
    if w.ends_with('s') && !w.ends_with("ss") && w.len() > 2 {
        out.push(w[..w.len() - 1].to_owned());
    }
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 2 {
            out.push(format!("{stem}y"));
        }
    }
    out
}

/// All nodes matching `term`, in document order.
///
/// - label match: element/attribute whose label equals the term (or its
///   singular form) — unless the term was quoted;
/// - content match: text/attribute value containing the term
///   case-insensitively (the *owning element* is the match).
pub fn match_nodes(doc: &Document, term: &Term) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();

    if !term.quoted {
        let mut cands = vec![term.text.clone()];
        cands.extend(singular_candidates(&term.text));
        for cand in cands {
            for label in doc.labels() {
                if label.to_lowercase() == cand {
                    out.extend_from_slice(doc.nodes_labeled(label));
                }
            }
        }
    }

    // Content matches.
    let needle = &term.text;
    for i in 0..doc.len() {
        let id = NodeId::from_index(i);
        let n = doc.node(id);
        match n.kind {
            NodeKind::Text => {
                if let (Some(v), Some(p)) = (&n.value, n.parent) {
                    if v.to_lowercase().contains(needle) {
                        out.push(p);
                    }
                }
            }
            NodeKind::Attribute => {
                if let Some(v) = &n.value {
                    if v.to_lowercase().contains(needle) {
                        out.push(id);
                    }
                }
            }
            NodeKind::Element => {}
        }
    }

    out.sort_by_key(|&id| doc.node(id).pre);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::movies::movies;

    #[test]
    fn parse_query_splits_words() {
        let t = parse_query("director movie title");
        assert_eq!(t.len(), 3);
        assert!(!t[0].quoted);
    }

    #[test]
    fn parse_query_keeps_phrases() {
        let t = parse_query("director \"Ron Howard\"");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].text, "ron howard");
        assert!(t[1].quoted);
    }

    #[test]
    fn parse_query_handles_commas() {
        let t = parse_query("title, year");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn label_match() {
        let d = movies();
        let t = Term {
            text: "director".into(),
            quoted: false,
        };
        let m = match_nodes(&d, &t);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn plural_label_match() {
        let d = movies();
        let t = Term {
            text: "movies".into(),
            quoted: false,
        };
        let m = match_nodes(&d, &t);
        // the movies root (label "movies") and the five movie elements
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn content_match_returns_owning_element() {
        let d = movies();
        let t = Term {
            text: "ron howard".into(),
            quoted: true,
        };
        let m = match_nodes(&d, &t);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|&n| d.label(n) == "director"));
    }

    #[test]
    fn quoted_term_skips_labels() {
        let d = movies();
        let t = Term {
            text: "director".into(),
            quoted: true,
        };
        // no content contains the word "director"
        assert!(match_nodes(&d, &t).is_empty());
    }

    #[test]
    fn substring_content_match() {
        let d = movies();
        let t = Term {
            text: "grinch".into(),
            quoted: false,
        };
        let m = match_nodes(&d, &t);
        assert_eq!(m.len(), 1);
        assert_eq!(d.label(m[0]), "title");
    }
}
