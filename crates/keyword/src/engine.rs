//! The Meet engine: minimal-window sweep + deepest-LCA ranking.

use crate::matching::{match_nodes, parse_query, Term};
use xmldb::{Document, NodeId, NodeKind};

/// One ranked answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The answer subtree root (the "nearest concept").
    pub root: NodeId,
    /// Depth of the root — the ranking key (deeper is better).
    pub depth: u32,
}

/// Default result-page size: like any ranked-retrieval interface, the
/// engine returns the best `limit` answers, not every match in the
/// corpus. (This is also what makes the baseline's recall honest on
/// broad queries — a user cannot consume thousands of subtrees.)
pub const DEFAULT_LIMIT: usize = 50;

/// The keyword-search interface over one document.
pub struct KeywordEngine<'d> {
    doc: &'d Document,
    limit: usize,
}

impl<'d> KeywordEngine<'d> {
    /// Create an engine over a finalized document with the default
    /// result limit.
    pub fn new(doc: &'d Document) -> Self {
        Self::with_limit(doc, DEFAULT_LIMIT)
    }

    /// Create an engine with a custom result limit (0 = unlimited).
    pub fn with_limit(doc: &'d Document, limit: usize) -> Self {
        assert!(doc.is_finalized());
        KeywordEngine {
            doc,
            limit: if limit == 0 { usize::MAX } else { limit },
        }
    }

    /// Search with a raw query string.
    pub fn search(&self, query: &str) -> Vec<SearchHit> {
        self.search_terms(&parse_query(query))
    }

    /// Search with pre-parsed terms.
    ///
    /// Returns the hits at the best (deepest) Meet depth, in document
    /// order. An empty term list, or any term with no matches, yields no
    /// hits.
    pub fn search_terms(&self, terms: &[Term]) -> Vec<SearchHit> {
        if terms.is_empty() {
            return Vec::new();
        }
        let doc = self.doc;
        // Per-term match lists.
        let matches: Vec<Vec<NodeId>> = terms.iter().map(|t| match_nodes(doc, t)).collect();
        if matches.iter().any(Vec::is_empty) {
            return Vec::new();
        }
        if terms.len() == 1 {
            // Single keyword: every match is its own nearest concept.
            return matches[0]
                .iter()
                .take(self.limit)
                .map(|&n| SearchHit {
                    root: n,
                    depth: doc.node(n).depth,
                })
                .collect();
        }

        // Merge all matches into one document-ordered list tagged by
        // term, then sweep minimal windows covering all terms.
        let mut merged: Vec<(u32, usize, NodeId)> = Vec::new(); // (pre, term, node)
        for (ti, ms) in matches.iter().enumerate() {
            for &m in ms {
                merged.push((doc.node(m).pre, ti, m));
            }
        }
        merged.sort();

        let k = terms.len();
        let mut counts = vec![0usize; k];
        let mut covered = 0usize;
        let mut lo = 0usize;
        let mut candidates: Vec<NodeId> = Vec::new();
        for hi in 0..merged.len() {
            let (_, t, _) = merged[hi];
            if counts[t] == 0 {
                covered += 1;
            }
            counts[t] += 1;
            // Shrink from the left while still covering everything
            // (`covered` cannot change here: we only drop surplus
            // occurrences).
            if covered == k {
                while counts[merged[lo].1] > 1 {
                    counts[merged[lo].1] -= 1;
                    lo += 1;
                }
                let window: Vec<NodeId> = merged[lo..=hi].iter().map(|&(_, _, n)| n).collect();
                candidates.push(doc.lca_all(&window));
            }
        }

        if candidates.is_empty() {
            return Vec::new();
        }
        // Meet semantics: answers are the *deepest* (nearest-concept)
        // meets, in document order, capped at the result-page limit.
        let best_depth = candidates
            .iter()
            .map(|&c| doc.node(c).depth)
            .max()
            .expect("non-empty candidates");
        let mut best: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&c| doc.node(c).depth == best_depth)
            .collect();
        best.sort_by_key(|&c| doc.node(c).pre);
        best.dedup();
        best.into_iter()
            .take(self.limit)
            .map(|root| SearchHit {
                root,
                depth: best_depth,
            })
            .collect()
    }

    /// The flat element/attribute values of the answer subtrees — the
    /// unit the user-study precision/recall metric counts.
    pub fn answer_values(&self, hits: &[SearchHit]) -> Vec<String> {
        let mut out = Vec::new();
        for h in hits {
            self.collect_leaf_values(h.root, &mut out);
        }
        out
    }

    fn collect_leaf_values(&self, id: NodeId, out: &mut Vec<String>) {
        let doc = self.doc;
        let mut has_inner = false;
        for c in doc.children(id) {
            match doc.node(c).kind {
                NodeKind::Element | NodeKind::Attribute => {
                    has_inner = true;
                    self.collect_leaf_values(c, out);
                }
                NodeKind::Text => {}
            }
        }
        if !has_inner {
            out.push(doc.string_value(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb::datasets::bib::bib;
    use xmldb::datasets::movies::movies;

    #[test]
    fn two_keywords_meet_at_movie() {
        let d = movies();
        let e = KeywordEngine::new(&d);
        let hits = e.search("director \"Traffic\"");
        assert_eq!(hits.len(), 1);
        assert_eq!(d.label(hits[0].root), "movie");
        let values = e.answer_values(&hits);
        assert!(values.contains(&"Steven Soderbergh".to_owned()));
    }

    #[test]
    fn label_pair_meets_at_each_movie() {
        let d = movies();
        let e = KeywordEngine::new(&d);
        let hits = e.search("title director");
        // deepest meets: each movie pairs its own title+director
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| d.label(h.root) == "movie"));
    }

    #[test]
    fn single_keyword_returns_all_matches() {
        let d = movies();
        let e = KeywordEngine::new(&d);
        let hits = e.search("director");
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn value_keyword_finds_value_context() {
        let d = movies();
        let e = KeywordEngine::new(&d);
        let hits = e.search("\"Ron Howard\" title");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| d.label(h.root) == "movie"));
    }

    #[test]
    fn no_match_means_no_hits() {
        let d = movies();
        let e = KeywordEngine::new(&d);
        assert!(e.search("zeppelin").is_empty());
        assert!(e.search("").is_empty());
        assert!(e.search("director zeppelin").is_empty());
    }

    #[test]
    fn answer_values_flatten_subtree() {
        let d = bib();
        let e = KeywordEngine::new(&d);
        let hits = e.search("\"Suciu\" title");
        assert_eq!(hits.len(), 1);
        let values = e.answer_values(&hits);
        // whole book subtree values: title + 3 authors (last/first) +
        // publisher + price + year attribute
        assert!(values.contains(&"Data on the Web".to_owned()));
        assert!(values.len() > 5, "{values:?}");
    }

    #[test]
    fn keyword_search_cannot_aggregate() {
        // There is no way to express "the lowest price" — searching the
        // words returns nothing or shallow meets; this is the baseline's
        // inherent weakness on XMP Q10 (paper Fig. 12).
        let d = bib();
        let e = KeywordEngine::new(&d);
        let hits = e.search("lowest price");
        assert!(e.answer_values(&hits).is_empty());
    }

    #[test]
    fn deeper_meet_beats_shallower() {
        let d =
            xmldb::Document::parse_str("<r><a><x>k1</x></a><b><x>k1</x><y>k2</y></b><y>k2</y></r>")
                .unwrap();
        let e = KeywordEngine::new(&d);
        let hits = e.search("k1 k2");
        assert_eq!(hits.len(), 1);
        assert_eq!(d.label(hits[0].root), "b");
    }
}
