#![warn(missing_docs)]

//! # keyword — a Meet-based keyword-search baseline over XML
//!
//! The comparison interface of the paper's user study: "we
//! experimentally compared it with a keyword search interface that
//! supports search over XML documents based on Meet \[26\]" (Schmidt,
//! Kersten & Windhouwer, *Querying XML documents made easy: Nearest
//! concept queries*, ICDE 2001).
//!
//! The Meet idea: the answer to a set of keywords is the **deepest
//! lowest common ancestor** over nodes matching the keywords — the
//! "nearest concept" containing all of them. A keyword matches a node
//! by *label* ("title", "director") or by *content* ("Ron Howard",
//! "1991").
//!
//! Implementation: all matches are merged in document order and scanned
//! with a minimal-window sweep (every window that covers all keywords
//! yields a candidate LCA); candidates are ranked by LCA depth, deepest
//! first, and the answer is every subtree at the best depth. Returning
//! whole subtrees is what makes the baseline blunt — exactly the paper's
//! point: it cannot project ("only the title"), aggregate, or sort,
//! which is why its precision/recall collapses on tasks like XMP Q7 and
//! Q10 (Fig. 12).

pub mod engine;
pub mod matching;

pub use engine::{KeywordEngine, SearchHit};
pub use matching::{match_nodes, parse_query, Term};
